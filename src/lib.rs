//! # moara
//!
//! Umbrella crate for the Moara reproduction (Ko et al., *Moara: Flexible
//! and Scalable Group-Based Querying System*, Middleware 2008).
//!
//! Re-exports the full stack so applications can depend on one crate:
//!
//! * [`core`](moara_core) — the Moara protocol engine and [`Cluster`]
//!   harness;
//! * [`query`](moara_query) — the query language and planner;
//! * [`aggregation`](moara_aggregation) — aggregation functions;
//! * [`attributes`](moara_attributes) — the per-node data model;
//! * [`dht`](moara_dht) — the Pastry-style overlay substrate;
//! * [`membership`](moara_membership) — the SWIM-style failure detector
//!   behind live membership (see `docs/membership.md`);
//! * [`subscribe`](moara_subscribe) — the continuous-query subscription
//!   plane: leased standing queries with incremental in-network
//!   re-aggregation (see `docs/continuous-queries.md`);
//! * [`transport`](moara_transport) — the pluggable transport subsystem;
//! * [`simnet`](moara_simnet) — the discrete-event simulator;
//! * [`wire`](moara_wire) — the binary wire codec;
//! * [`baselines`](moara_baselines) — the paper's comparison systems.
//!
//! # Transports
//!
//! The protocol engine is written against `moara_transport`'s I/O seam —
//! [`NetCtx`](moara_transport::NetCtx) (send / timers / clock) and
//! [`NetProtocol`](moara_transport::NetProtocol) (the node state machine)
//! — and deployments drive it through the
//! [`Transport`](moara_transport::Transport) host trait. Two backends
//! ship:
//!
//! * [`SimTransport`](moara_transport::SimTransport) wraps the
//!   deterministic `moara-simnet` simulator; `Cluster::builder().build()`
//!   uses it, and every experiment/figure harness runs on it.
//! * [`TcpTransport`](moara_transport::TcpTransport) moves the same
//!   messages over real sockets as length-prefixed `moara-wire` frames
//!   with per-peer pooled connections and reconnect;
//!   `Cluster::builder().build_tcp(...)` hosts an in-process cluster on
//!   loopback sockets, and the `moarad` daemon (`moara-daemon` crate)
//!   hosts one node per process. See `docs/transport.md` for the
//!   architecture and the 3-process quickstart.
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/tcp_cluster.rs` for the TCP path, and the `moara-bench`
//! crate for the harnesses that regenerate every figure of the paper's
//! evaluation.

pub use moara_aggregation as aggregation;
pub use moara_attributes as attributes;
pub use moara_baselines as baselines;
pub use moara_core as core;
pub use moara_dht as dht;
pub use moara_membership as membership;
pub use moara_query as query;
pub use moara_simnet as simnet;
pub use moara_subscribe as subscribe;
pub use moara_trace as trace;
pub use moara_transport as transport;
pub use moara_wire as wire;

pub use moara_aggregation::{AggKind, AggResult};
pub use moara_attributes::{AttrStore, Value};
pub use moara_core::{Cluster, MoaraConfig, Mode, ProbeCachePolicy, QueryOutcome};
pub use moara_query::{parse_predicate, parse_query, Predicate, Query, SimplePredicate};
pub use moara_simnet::NodeId;
pub use moara_subscribe::{DeliveryPolicy, SubUpdate};
pub use moara_transport::{NetCtx, NetProtocol, SimTransport, TcpTransport, Transport};

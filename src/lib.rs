//! # moara
//!
//! Umbrella crate for the Moara reproduction (Ko et al., *Moara: Flexible
//! and Scalable Group-Based Querying System*, Middleware 2008).
//!
//! Re-exports the full stack so applications can depend on one crate:
//!
//! * [`core`](moara_core) — the Moara protocol engine and [`Cluster`]
//!   harness;
//! * [`query`](moara_query) — the query language and planner;
//! * [`aggregation`](moara_aggregation) — aggregation functions;
//! * [`attributes`](moara_attributes) — the per-node data model;
//! * [`dht`](moara_dht) — the Pastry-style overlay substrate;
//! * [`simnet`](moara_simnet) — the discrete-event simulator;
//! * [`baselines`](moara_baselines) — the paper's comparison systems.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `moara-bench` crate for the harnesses that regenerate every figure of
//! the paper's evaluation.

pub use moara_aggregation as aggregation;
pub use moara_attributes as attributes;
pub use moara_baselines as baselines;
pub use moara_core as core;
pub use moara_dht as dht;
pub use moara_query as query;
pub use moara_simnet as simnet;

pub use moara_aggregation::{AggKind, AggResult};
pub use moara_attributes::{AttrStore, Value};
pub use moara_core::{Cluster, Mode, MoaraConfig, QueryOutcome};
pub use moara_query::{parse_predicate, parse_query, Predicate, Query, SimplePredicate};
pub use moara_simnet::NodeId;

//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact surface the workspace uses: a deterministic
//! seedable generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! The streams differ from upstream `rand` (a different core generator),
//! but every consumer in this workspace only relies on determinism and
//! rough uniformity, never on upstream's exact bit streams.

use std::ops::{Range, RangeInclusive};

/// Core interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rng.gen::<T>()`); the stand-in for `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics if the range is empty, matching `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = <$t as Standard>::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let f = <$t as Standard>::sample(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (state seeded via SplitMix64).
    ///
    /// Named `StdRng` for drop-in compatibility with `rand::rngs::StdRng`;
    /// the stream differs from upstream, which this workspace never
    /// depends on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers, mirroring `rand::seq`.

    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them if
        /// `amount >= len`). Returns an iterator of references, like
        /// upstream `rand`.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index vector.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_multiple_is_distinct() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");

        let picked: Vec<u32> = v.choose_multiple(&mut r, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);

        let all: Vec<u32> = v.choose_multiple(&mut r, 500).copied().collect();
        assert_eq!(all.len(), 50);
        assert!(v.choose(&mut r).is_some());
    }
}

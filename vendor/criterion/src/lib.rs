//! Offline stand-in for the `criterion` crate.
//!
//! Provides [`Criterion::bench_function`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of criterion's
//! full statistical machinery it times a small, fixed number of batches and
//! prints `name ... mean/min per iter` — enough to eyeball regressions and
//! to keep `cargo test`/CI fast. Set `MOARA_BENCH_SAMPLES` to raise the
//! sample count for more stable numbers.

use std::time::Instant;

/// Opaque value laundering to defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Handle passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, recording nanoseconds per iteration over several batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let samples = self.samples.capacity();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / self.iters_per_sample as f64);
        }
    }
}

/// Mirror of `criterion::Criterion` (the configuration we use).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let samples = std::env::var("MOARA_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| self.sample_size.min(5));
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::with_capacity(samples),
        };
        // Calibrate: aim for ~2ms per batch so short ops aren't pure noise.
        let start = Instant::now();
        f(&mut Bencher {
            iters_per_sample: 1,
            samples: Vec::with_capacity(1),
        });
        let once = start.elapsed().as_nanos().max(1) as u64;
        b.iters_per_sample = (2_000_000 / once).clamp(1, 10_000);
        b.samples.clear();
        f(&mut b);
        if b.samples.is_empty() {
            println!("bench {name:<40} (no samples)");
            return;
        }
        let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "bench {name:<40} mean {:>12.1} ns/iter   min {min:>12.1} ns/iter",
            mean
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = cheap
    }

    #[test]
    fn group_runs() {
        benches();
    }
}

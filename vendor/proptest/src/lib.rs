//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, strategies for
//! integer ranges, tuples, [`collection::vec`], [`strategy::Just`],
//! [`arbitrary::any`], `prop_oneof!`, `prop_map`, `prop_recursive`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: inputs are generated from a fixed seed (so
//! runs are reproducible byte-for-byte), and failing cases are reported
//! with their case number but **not shrunk**. That trade keeps the
//! vendored crate small while preserving the tests' power to explore
//! random inputs.

// Re-export for `proptest!`'s expansion, so consuming crates don't need
// their own `rand` dependency.
#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    //! Runner configuration.

    /// Mirror of `proptest::test_runner::Config` (the fields we use).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; 64 keeps `cargo test` quick while
            // still exploring a meaningful slice of the input space.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Clone + std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `branch` wraps an inner strategy into a composite, applied up
        /// to `depth` times. `_desired_size` and `_expected_branch_size`
        /// are accepted for upstream signature compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branched = branch(cur).boxed();
                let leaf = leaf.clone();
                cur = from_fn(move |rng| {
                    // Half the draws recurse, half stop at a leaf, so depth
                    // is geometrically distributed up to the cap.
                    if rng.gen_bool(0.5) {
                        branched.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                });
            }
            cur
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut StdRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V: Clone + std::fmt::Debug + 'static> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (self.gen)(rng)
        }
        fn boxed(self) -> BoxedStrategy<V> {
            self
        }
    }

    /// Builds a strategy from a generation closure.
    pub fn from_fn<V, F: Fn(&mut StdRng) -> V + 'static>(f: F) -> BoxedStrategy<V> {
        BoxedStrategy { gen: Rc::new(f) }
    }

    /// Uniform choice among type-erased alternatives (see `prop_oneof!`).
    pub fn one_of<V: Clone + std::fmt::Debug + 'static>(
        arms: Vec<BoxedStrategy<V>>,
    ) -> BoxedStrategy<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        from_fn(move |rng| {
            let i = rng.gen_range(0..arms.len());
            arms[i].generate(rng)
        })
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone + std::fmt::Debug> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Clone + std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_strategy_for_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_for_tuples {
        ($(($($s:ident / $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_for_tuples! {
        (S0/0)
        (S0/0, S1/1)
        (S0/0, S1/1, S2/2)
        (S0/0, S1/1, S2/2, S3/3)
        (S0/0, S1/1, S2/2, S3/3, S4/4)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Clone + std::fmt::Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rand::Standard::sample(rng)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The canonical strategy for `T` (mirror of `proptest::arbitrary::any`).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform sample over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts inside a property (plain `assert!` here: no shrink phase).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    }};
}

/// Declares property tests: each `fn` runs `cases` times with inputs
/// drawn from the strategies after `in`. Deterministic across runs (the
/// per-test RNG is seeded from the test name), no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                // Seed from the test name: deterministic, but distinct
                // streams per property.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    __seed = (__seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let mut __rng = <$crate::__rand::rngs::StdRng
                    as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                for __case in 0..cfg.cases {
                    $(let $arg = ($strat).generate(&mut __rng);)*
                    let __inputs = format!(
                        concat!("case {}" $(, ", ", stringify!($arg), " = {:?}")*),
                        __case $(, &$arg)*
                    );
                    let __result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| $body)
                    );
                    if let Err(e) = __result {
                        eprintln!("proptest failure in {} [{}]", stringify!($name), __inputs);
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..10, pair in (0u8..2, any::<u16>())) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments and config headers parse.
        #[test]
        fn vec_strategy_respects_bounds(
            v in crate::collection::vec((0u64..50, -10i64..10), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 50);
                prop_assert!((-10..10).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_map_recursive_compose() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)] // fields exist to exercise generation, not reads
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..4).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                crate::collection::vec(inner.clone(), 1..4).prop_map(Tree::Node),
                Just(Tree::Leaf(9)),
            ]
        });
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let mut saw_node = false;
        for _ in 0..200 {
            if matches!(strat.generate(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion never branched");
    }
}

//! The issue's acceptance scenario: a 3-node cluster over **real TCP
//! sockets** (loopback) answers `SELECT count(*) WHERE ServiceX = true`
//! correctly — every protocol message (status updates, routed sub-queries,
//! aggregating replies) crosses the kernel as a length-prefixed
//! `moara-wire` frame between per-node listeners.

use moara::aggregation::AggResult;
use moara::attributes::Value;
use moara::core::Cluster;
use moara::simnet::NodeId;
use moara_transport::TcpConfig;

#[test]
fn three_node_cluster_over_real_sockets_answers_the_quickstart_query() {
    let mut c = Cluster::builder()
        .nodes(3)
        .seed(42)
        .build_tcp(TcpConfig::seeded(42));

    // Every node really listens on its own loopback socket.
    let addrs: Vec<_> = (0..3u32)
        .map(|i| c.transport().local_addr(NodeId(i)).expect("has a listener"))
        .collect();
    assert_eq!(addrs.len(), 3);
    assert!(addrs.windows(2).all(|w| w[0] != w[1]));

    c.set_attr(NodeId(0), "ServiceX", true);
    c.set_attr(NodeId(1), "ServiceX", false);
    c.set_attr(NodeId(2), "ServiceX", true);
    c.run_to_quiescence();
    c.stats_mut().reset();

    let out = c
        .query(NodeId(1), "SELECT count(*) WHERE ServiceX = true")
        .unwrap();
    assert!(out.complete, "query must complete over TCP");
    assert_eq!(out.result, AggResult::Value(Value::Int(2)));
    assert!(out.messages > 0, "the answer crossed real sockets");

    // Group churn propagates over the sockets too.
    c.set_attr(NodeId(1), "ServiceX", true);
    c.set_attr(NodeId(0), "ServiceX", false);
    c.run_to_quiescence();
    let out = c
        .query(NodeId(2), "SELECT count(*) WHERE ServiceX = true")
        .unwrap();
    assert_eq!(out.result, AggResult::Value(Value::Int(2)));
}

/// Probe-cache invalidation over the TCP loopback transport: two
/// identical composite queries share cached probe costs; a group
/// membership change at the front-end between queries bumps the churn
/// epoch, so the next query re-probes and returns the updated count.
#[test]
fn tcp_loopback_probe_cache_invalidation_reprobes_after_churn() {
    // Deterministic loopback mode: same codec and framing as sockets,
    // virtual clock, no real I/O — so probe counters are exact.
    let mut c = Cluster::builder()
        .nodes(16)
        .seed(31)
        .build_tcp(TcpConfig::loopback(31));
    for i in 0..16u32 {
        c.set_attr(NodeId(i), "a", i % 2 == 0); // 8 nodes, includes 0
        c.set_attr(NodeId(i), "c", i % 4 == 0); // 4 nodes, includes 0
    }
    c.run_to_quiescence();
    c.stats_mut().reset();

    let q = "SELECT count(*) WHERE a = true AND c = true";
    let first = c.query(NodeId(0), q).unwrap();
    assert!(first.complete);
    assert_eq!(first.result, AggResult::Value(Value::Int(4)));
    assert!(c.stats().counter("size_probes") > 0, "cold query probes");

    // Identical repeat: costs come from the probe cache.
    let probes_after_first = c.stats().counter("size_probes");
    let second = c.query(NodeId(0), q).unwrap();
    assert_eq!(second.result, AggResult::Value(Value::Int(4)));
    assert_eq!(
        c.stats().counter("size_probes"),
        probes_after_first,
        "warm repeat must not re-probe"
    );
    assert!(c.stats().counter("probe_cache_hits") > 0);

    // Group churn at the front-end: node 0 leaves `a` (and thus the
    // intersection). The epoch bump evicts the stale costs.
    let epoch_before = c.node(NodeId(0)).probe_cache_epoch();
    c.set_attr(NodeId(0), "a", false);
    c.run_to_quiescence();
    assert!(c.node(NodeId(0)).probe_cache_epoch() > epoch_before);

    let third = c.query(NodeId(0), q).unwrap();
    assert!(
        c.stats().counter("size_probes") > probes_after_first,
        "the query after churn must re-probe"
    );
    assert_eq!(
        third.result,
        AggResult::Value(Value::Int(3)),
        "the updated membership must be reflected"
    );
}

#[test]
fn tcp_cluster_handles_other_aggregates_and_composites() {
    let mut c = Cluster::builder()
        .nodes(4)
        .seed(7)
        .build_tcp(TcpConfig::seeded(7));
    for i in 0..4u32 {
        c.set_attr(NodeId(i), "CPU-Util", (i as i64) * 20); // 0,20,40,60
        c.set_attr(NodeId(i), "ServiceX", i != 3);
    }
    c.run_to_quiescence();

    let out = c
        .query(NodeId(0), "SELECT avg(CPU-Util) WHERE ServiceX = true")
        .unwrap();
    assert!(out.complete);
    assert_eq!(out.result, AggResult::Value(Value::Float(20.0)));

    let out = c
        .query(
            NodeId(3),
            "SELECT count(*) WHERE ServiceX = true AND CPU-Util < 30",
        )
        .unwrap();
    assert!(out.complete);
    assert_eq!(out.result, AggResult::Value(Value::Int(2)));
}

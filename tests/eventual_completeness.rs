//! The paper's correctness guarantee (Section 4): **eventual
//! completeness** — once the set of predicate-satisfying nodes and the
//! overlay stop changing, a query returns answers from exactly the
//! satisfying nodes.
//!
//! Property-tested over random churn histories, thresholds, adaptation
//! windows, and query interleavings.

use moara::{AggResult, Cluster, MoaraConfig, NodeId, Value};
use moara_query::{CmpOp, SimplePredicate};
use proptest::prelude::*;

fn count_of(out: &moara::QueryOutcome) -> i64 {
    match &out.result {
        AggResult::Value(Value::Int(x)) => *x,
        AggResult::Empty => 0,
        other => panic!("unexpected result {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of attribute churn and queries, then
    /// quiescence: the final query must count exactly the satisfying set.
    #[test]
    fn query_after_quiescence_is_exact(
        seed in 0u64..1000,
        n in 8usize..48,
        threshold in 1usize..4,
        events in proptest::collection::vec((0u8..2, any::<u16>()), 1..40),
    ) {
        let cfg = MoaraConfig::default().with_threshold(threshold);
        let mut c = Cluster::builder().nodes(n).seed(seed).config(cfg).build();
        for i in 0..n as u32 {
            c.set_attr(NodeId(i), "A", i64::from(i % 3 == 0));
        }
        let origin = NodeId((seed % n as u64) as u32);
        for (kind, x) in events {
            match kind {
                0 => {
                    // toggle a random node's membership
                    let node = NodeId((x as usize % n) as u32);
                    let cur = c.node(node).store.get("A") == Some(&Value::Int(1));
                    c.set_attr(node, "A", i64::from(!cur));
                }
                _ => {
                    let _ = c.query(origin, "SELECT count(*) WHERE A = 1").unwrap();
                }
            }
        }
        c.run_to_quiescence();
        let truth = c
            .group_members(&SimplePredicate::new("A", CmpOp::Eq, 1i64))
            .len() as i64;
        // Two queries: the first may trigger re-adaptation messages, the
        // second must also be exact (completeness is stable, not one-off).
        let out1 = c.query(origin, "SELECT count(*) WHERE A = 1").unwrap();
        prop_assert_eq!(count_of(&out1), truth);
        let out2 = c.query(origin, "SELECT count(*) WHERE A = 1").unwrap();
        prop_assert_eq!(count_of(&out2), truth);
        prop_assert!(out2.complete);
    }

    /// Same guarantee under adversarial adaptation windows.
    #[test]
    fn completeness_for_any_adaptation_windows(
        k_up in 1usize..5,
        k_no in 1usize..5,
        seed in 0u64..200,
    ) {
        let cfg = MoaraConfig::default().with_adaptation_windows(k_up, k_no);
        let n = 24usize;
        let mut c = Cluster::builder().nodes(n).seed(seed).config(cfg).build();
        for i in 0..n as u32 {
            c.set_attr(NodeId(i), "A", i64::from(i < 6));
        }
        // Churn-heavy phase to push nodes into NO-UPDATE.
        for round in 0..6u32 {
            for i in 0..n as u32 {
                if (i + round) % 5 == 0 {
                    let cur = c.node(NodeId(i)).store.get("A") == Some(&Value::Int(1));
                    c.set_attr(NodeId(i), "A", i64::from(!cur));
                }
            }
            let _ = c.query(NodeId(0), "SELECT count(*) WHERE A = 1").unwrap();
        }
        c.run_to_quiescence();
        let truth = c
            .group_members(&SimplePredicate::new("A", CmpOp::Eq, 1i64))
            .len() as i64;
        let out = c.query(NodeId(1), "SELECT count(*) WHERE A = 1").unwrap();
        prop_assert_eq!(count_of(&out), truth);
    }
}

#[test]
fn completeness_after_group_empties_and_refills() {
    let n = 30;
    let mut c = Cluster::builder().nodes(n).seed(3).build();
    for i in 0..n as u32 {
        c.set_attr(NodeId(i), "A", i64::from(i < 10));
    }
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(0), q).unwrap()), 10);
    // Empty the group entirely; trees prune to nothing.
    for i in 0..10u32 {
        c.set_attr(NodeId(i), "A", 0i64);
    }
    for _ in 0..3 {
        assert_eq!(count_of(&c.query(NodeId(0), q).unwrap()), 0);
    }
    // Refill with a different membership; pruned branches must re-open.
    for i in 15..25u32 {
        c.set_attr(NodeId(i), "A", 1i64);
    }
    assert_eq!(count_of(&c.query(NodeId(0), q).unwrap()), 10);
}

#[test]
fn state_machine_invariants_hold_cluster_wide() {
    let n = 40;
    let mut c = Cluster::builder().nodes(n).seed(5).build();
    for i in 0..n as u32 {
        c.set_attr(NodeId(i), "A", i64::from(i % 4 == 0));
    }
    for round in 0..5u32 {
        let _ = c
            .query(NodeId(round), "SELECT count(*) WHERE A = 1")
            .unwrap();
        for i in 0..n as u32 {
            if (i + round) % 7 == 0 {
                let cur = c.node(NodeId(i)).store.get("A") == Some(&Value::Int(1));
                c.set_attr(NodeId(i), "A", i64::from(!cur));
            }
        }
        c.run_to_quiescence();
        for node in c.node_ids() {
            if let Some(st) = c.node(node).pred_state("A=1") {
                st.check_invariants();
            }
        }
    }
}

//! Adversarial decoding: frames arrive from untrusted peer sockets, so
//! every [`MoaraMsg`] decoder must reject — never panic, hang, or
//! over-allocate on — truncated or corrupted input.
//!
//! Two systematic sweeps over every message variant (including `Route`
//! nesting and `Batch` coalescing):
//!
//! * **truncation** — every strict prefix of a valid encoding must return
//!   `Err` (a prefix can never be a complete message, because decoding is
//!   deterministic and `from_bytes` rejects trailing bytes);
//! * **bit flips** — flipping any single bit must either decode to some
//!   valid message (whose canonical re-encoding round-trips) or return
//!   `Err`; it must never panic or loop.

use moara::aggregation::{AggKind, AggState};
use moara::core::{MoaraMsg, QueryId};
use moara::dht::Id;
use moara::query::{CmpOp, Predicate, Query, SimplePredicate};
use moara::simnet::NodeId;
use moara_wire::Wire;

fn qid(origin: u32, n: u64) -> QueryId {
    QueryId {
        origin: NodeId(origin),
        n,
    }
}

/// One exemplar per variant, plus nesting/coalescing shapes.
fn samples() -> Vec<MoaraMsg> {
    let query = Query::new(
        Some("CPU-Util".into()),
        AggKind::Avg,
        Predicate::And(vec![
            Predicate::atom("ServiceX", CmpOp::Eq, true),
            Predicate::Or(vec![
                Predicate::atom("CPU-Util", CmpOp::Lt, 50i64),
                Predicate::atom("OS", CmpOp::Ne, "Linux"),
            ]),
        ]),
    );
    let down = MoaraMsg::QueryDown {
        qid: qid(3, 17),
        seq: 9,
        pred_key: "ServiceX=true".into(),
        tree: Id::of_attribute("ServiceX"),
        query,
        reply_to: NodeId(12),
        trace: None,
    };
    let probe = MoaraMsg::SizeProbe {
        qid: qid(1, 2),
        pred_key: "CPU-Util<50".into(),
        reply_to: NodeId(1),
        trace: None,
    };
    let routed_probe = MoaraMsg::Route {
        key: Id::of_attribute("CPU-Util"),
        inner: Box::new(probe.clone()),
    };
    let sub_id = moara::subscribe::SubId {
        origin: NodeId(2),
        n: 5,
    };
    vec![
        down.clone(),
        MoaraMsg::QueryReply {
            qid: qid(3, 17),
            pred_key: "ServiceX=true".into(),
            state: AggState::Avg {
                sum: 12.5,
                count: 4,
            },
            np: 7,
            complete: true,
            trace: None,
        },
        MoaraMsg::Status {
            pred_key: "ServiceX=true".into(),
            pred: SimplePredicate::new("ServiceX", CmpOp::Eq, true),
            prune: false,
            update_set: (0..5).map(NodeId).collect(),
            np: 5,
            last_seq: 3,
        },
        probe,
        MoaraMsg::SizeReply {
            qid: qid(1, 2),
            pred_key: "CPU-Util<50".into(),
            cost: 64,
            trace: None,
        },
        routed_probe.clone(),
        // Route-in-route: a probe relayed across two overlay hops.
        MoaraMsg::Route {
            key: Id(42),
            inner: Box::new(routed_probe.clone()),
        },
        // A coalesced fan-out frame wrapping routed messages.
        MoaraMsg::Batch {
            items: vec![
                routed_probe,
                MoaraMsg::Route {
                    key: Id(9),
                    inner: Box::new(down),
                },
            ],
        },
        // The subscription plane's four frames.
        MoaraMsg::Subscribe {
            spec: moara::subscribe::SubSpec {
                id: sub_id,
                query: Query::new(None, AggKind::Count, Predicate::atom("A", CmpOp::Eq, 1i64)),
                policy: moara::subscribe::DeliveryPolicy::Threshold { value: 3.5 },
                lease: moara::simnet::SimDuration::from_secs(30),
                owner: NodeId(2),
                cover: vec!["A=1".into()],
            },
            pred_key: "A=1".into(),
            tree: Id::of_attribute("A"),
            seq: 1,
        },
        MoaraMsg::SubDelta {
            sid: sub_id,
            pred_key: "A=1".into(),
            seq: 4,
            state: AggState::Std {
                sum: 6.0,
                sum_sq: 14.0,
                count: 3,
            },
            trace: None,
        },
        MoaraMsg::SubRenew {
            sid: sub_id,
            pred_key: "A=1".into(),
            lease_us: 30_000_000,
            last_seen_seq: 4,
        },
        MoaraMsg::SubCancel {
            sid: sub_id,
            pred_key: "A=1".into(),
        },
    ]
}

#[test]
fn every_truncation_of_every_variant_errors() {
    for msg in samples() {
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                MoaraMsg::from_bytes(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix of {msg:?} should fail"
            );
        }
    }
}

#[test]
fn every_single_bit_flip_decodes_cleanly_or_errors() {
    for msg in samples() {
        let bytes = msg.to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                // Must not panic, recurse unboundedly, or over-allocate.
                if let Ok(decoded) = MoaraMsg::from_bytes(&corrupt) {
                    // If corruption happens to decode, it must be a valid
                    // message in its own right: canonical round-trip.
                    let re = decoded.to_bytes();
                    assert_eq!(
                        MoaraMsg::from_bytes(&re).as_ref(),
                        Ok(&decoded),
                        "re-encoding of bit-flipped decode must round-trip"
                    );
                }
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic LCG byte soup, various lengths.
    let mut x: u64 = 0x2545_f491_4f6c_dd1d;
    for len in [0usize, 1, 2, 7, 16, 64, 257, 1024] {
        for _ in 0..64 {
            let mut buf = Vec::with_capacity(len);
            for _ in 0..len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                buf.push((x >> 33) as u8);
            }
            let _ = MoaraMsg::from_bytes(&buf); // must simply not panic
        }
    }
}

#[test]
fn huge_claimed_collection_lengths_error_without_allocating() {
    // A Status frame whose update_set claims u32::MAX entries: decode
    // must fail on exhaustion, not try to reserve gigabytes up front.
    let valid = MoaraMsg::Status {
        pred_key: "A=1".into(),
        pred: SimplePredicate::new("A", CmpOp::Eq, 1i64),
        prune: false,
        update_set: vec![NodeId(1)],
        np: 1,
        last_seq: 0,
    };
    let bytes = valid.to_bytes();
    // The update_set length prefix sits right after tag + pred_key +
    // pred + prune; inflate it.
    let pred_key: String = "A=1".into();
    let pred = SimplePredicate::new("A", CmpOp::Eq, 1i64);
    let pos = 1 + pred_key.encoded_len() + pred.encoded_len() + 1;
    assert_eq!(bytes[pos..pos + 4], 1u32.to_le_bytes(), "prefix located");
    let mut evil = bytes.clone();
    evil[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(MoaraMsg::from_bytes(&evil).is_err());

    // Same for a Batch frame claiming u32::MAX items.
    let mut evil = vec![6u8];
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(MoaraMsg::from_bytes(&evil).is_err());
}

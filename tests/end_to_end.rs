//! End-to-end query flows across the public API: every aggregation kind,
//! both query syntaxes, group scoping, and cost behaviour.

use moara::{AggResult, Cluster, NodeId, Value};

fn cluster_with_metrics(n: u32) -> Cluster {
    let mut c = Cluster::builder().nodes(n as usize).seed(99).build();
    for i in 0..n {
        let node = NodeId(i);
        c.set_attr(node, "cpu", i64::from(i % 100));
        c.set_attr(node, "mem", f64::from(i) * 0.5);
        c.set_attr(node, "svc", i % 5 == 0);
        c.set_attr(node, "os", if i % 2 == 0 { "linux" } else { "bsd" });
    }
    c.run_to_quiescence();
    c.stats_mut().reset();
    c
}

#[test]
fn count_sum_avg_min_max() {
    let mut c = cluster_with_metrics(40);
    let count = c
        .query(NodeId(0), "SELECT count(*) WHERE svc = true")
        .unwrap();
    assert_eq!(count.result, AggResult::Value(Value::Int(8)));

    let sum = c
        .query(NodeId(1), "SELECT sum(cpu) WHERE svc = true")
        .unwrap();
    // svc nodes: 0,5,...,35 → cpu = i → 0+5+...+35 = 140.
    assert_eq!(sum.result, AggResult::Value(Value::Int(140)));

    let avg = c
        .query(NodeId(2), "SELECT avg(cpu) WHERE svc = true")
        .unwrap();
    assert_eq!(avg.result.as_f64(), Some(17.5));

    let min = c
        .query(NodeId(3), "SELECT min(cpu) WHERE svc = true")
        .unwrap();
    match min.result {
        AggResult::Attributed(Value::Int(0), _) => {}
        other => panic!("unexpected min {other:?}"),
    }

    let max = c
        .query(NodeId(4), "SELECT max(cpu) WHERE svc = true")
        .unwrap();
    match max.result {
        AggResult::Attributed(Value::Int(35), _) => {}
        other => panic!("unexpected max {other:?}"),
    }
}

#[test]
fn top_k_and_enumeration() {
    let mut c = cluster_with_metrics(30);
    let top = c
        .query(NodeId(0), "SELECT top(cpu, 3) WHERE svc = true")
        .unwrap();
    match &top.result {
        AggResult::Ranked(items) => {
            assert_eq!(items.len(), 3);
            let vals: Vec<i64> = items
                .iter()
                .map(|(v, _)| match v {
                    Value::Int(i) => *i,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(vals, vec![25, 20, 15]);
        }
        other => panic!("unexpected top-k {other:?}"),
    }

    let all = c
        .query(NodeId(5), "SELECT enumerate(*) WHERE svc = true")
        .unwrap();
    match &all.result {
        AggResult::Nodes(nodes) => assert_eq!(nodes.len(), 6),
        other => panic!("unexpected enumeration {other:?}"),
    }
}

#[test]
fn triple_syntax_equals_sql_syntax() {
    let mut c = cluster_with_metrics(25);
    let sql = c
        .query(NodeId(0), "SELECT avg(mem) WHERE os = 'linux'")
        .unwrap();
    let triple = c.query(NodeId(0), "(mem, AVG, os = linux)").unwrap();
    assert_eq!(sql.result, triple.result);
}

#[test]
fn no_predicate_covers_whole_system() {
    let mut c = cluster_with_metrics(20);
    let out = c.query(NodeId(0), "SELECT count(*)").unwrap();
    assert_eq!(out.result, AggResult::Value(Value::Int(20)));
    // Everyone answers: 2 messages per node, roughly.
    assert!(out.messages >= 38);
}

#[test]
fn empty_group_returns_empty() {
    let mut c = cluster_with_metrics(20);
    let out = c
        .query(NodeId(0), "SELECT count(*) WHERE cpu > 5000")
        .unwrap();
    assert!(out.complete);
    assert_eq!(out.result, AggResult::Value(Value::Int(0)));
    // Repeating prunes the whole tree away.
    for _ in 0..3 {
        c.query(NodeId(0), "SELECT count(*) WHERE cpu > 5000")
            .unwrap();
    }
    let quiet = c
        .query(NodeId(0), "SELECT count(*) WHERE cpu > 5000")
        .unwrap();
    assert!(
        quiet.messages < out.messages,
        "empty group should cost almost nothing after pruning: {} vs {}",
        quiet.messages,
        out.messages
    );
}

#[test]
fn unsatisfiable_predicate_answers_locally() {
    let mut c = cluster_with_metrics(20);
    let out = c
        .query(NodeId(0), "SELECT count(*) WHERE cpu < 10 AND cpu > 90")
        .unwrap();
    assert!(out.complete);
    assert!(out.result.is_empty() || out.result == AggResult::Value(Value::Int(0)));
    assert_eq!(
        out.messages, 0,
        "planner should answer Empty with no traffic"
    );
}

#[test]
fn query_cost_independent_of_origin() {
    let mut c = cluster_with_metrics(40);
    let a = c
        .query(NodeId(0), "SELECT count(*) WHERE svc = true")
        .unwrap();
    let b = c
        .query(NodeId(17), "SELECT count(*) WHERE svc = true")
        .unwrap();
    assert_eq!(a.result, b.result);
}

#[test]
fn dynamic_group_reflects_changes_immediately() {
    let mut c = cluster_with_metrics(20);
    let before = c
        .query(NodeId(0), "SELECT count(*) WHERE cpu < 10")
        .unwrap();
    // Push five nodes under the threshold.
    for i in 10..15u32 {
        c.set_attr(NodeId(i), "cpu", 1i64);
    }
    let after = c
        .query(NodeId(0), "SELECT count(*) WHERE cpu < 10")
        .unwrap();
    let b = match before.result {
        AggResult::Value(Value::Int(x)) => x,
        ref other => panic!("unexpected {other:?}"),
    };
    let a = match after.result {
        AggResult::Value(Value::Int(x)) => x,
        ref other => panic!("unexpected {other:?}"),
    };
    assert_eq!(a, b + 5);
}

#[test]
fn parse_errors_surface() {
    let mut c = cluster_with_metrics(5);
    assert!(c.query(NodeId(0), "SELECT nonsense(*)").is_err());
    assert!(c.query(NodeId(0), "garbage !!").is_err());
}

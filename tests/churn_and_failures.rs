//! Robustness: node failures mid-query, overlay repair, joins, and heavy
//! attribute churn (paper Section 7's reconfiguration handling).

use moara::{AggResult, Cluster, NodeId, Value};
use moara_query::{CmpOp, SimplePredicate};

fn count_of(out: &moara::QueryOutcome) -> i64 {
    match &out.result {
        AggResult::Value(Value::Int(x)) => *x,
        AggResult::Empty => 0,
        other => panic!("unexpected result {other:?}"),
    }
}

fn flagged_cluster(n: usize, group: usize, seed: u64) -> Cluster {
    let mut c = Cluster::builder().nodes(n).seed(seed).build();
    for i in 0..n as u32 {
        c.set_attr(NodeId(i), "A", i64::from((i as usize) < group));
    }
    c.run_to_quiescence();
    c
}

#[test]
fn failed_members_disappear_from_answers() {
    let mut c = flagged_cluster(40, 12, 1);
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(20), q).unwrap()), 12);
    // Kill three group members.
    for i in 0..3u32 {
        c.fail_node(NodeId(i));
    }
    let out = c.query(NodeId(20), q).unwrap();
    assert_eq!(count_of(&out), 9);
}

#[test]
fn failed_interior_nodes_do_not_lose_members() {
    let mut c = flagged_cluster(60, 10, 2);
    let q = "SELECT count(*) WHERE A = 1";
    // Warm the tree so interior state exists, then kill non-members (which
    // may be interior tree nodes holding prune state for the group).
    for _ in 0..3 {
        c.query(NodeId(30), q).unwrap();
    }
    for i in 40..48u32 {
        c.fail_node(NodeId(i));
    }
    let out = c.query(NodeId(30), q).unwrap();
    assert_eq!(
        count_of(&out),
        10,
        "all members still reachable after repair"
    );
}

#[test]
fn root_failure_rehomes_the_tree() {
    let mut c = flagged_cluster(50, 8, 3);
    let q = "SELECT count(*) WHERE A = 1";
    c.query(NodeId(9), q).unwrap();
    // Find and kill the tree root for attribute A.
    let key = moara_dht::Id::of_attribute("A");
    let root = c.directory().owner_node(key);
    c.fail_node(root);
    let expected = c
        .group_members(&SimplePredicate::new("A", CmpOp::Eq, 1i64))
        .len() as i64;
    let origin = if root == NodeId(9) {
        NodeId(10)
    } else {
        NodeId(9)
    };
    let out = c.query(origin, q).unwrap();
    assert_eq!(count_of(&out), expected);
    // A new root owns the key now.
    assert_ne!(c.directory().owner_node(key), root);
}

#[test]
fn querying_node_can_be_any_survivor() {
    let mut c = flagged_cluster(30, 6, 4);
    for i in 10..20u32 {
        c.fail_node(NodeId(i));
    }
    let q = "SELECT count(*) WHERE A = 1";
    for origin in [0u32, 5, 25, 29] {
        let out = c.query(NodeId(origin), q).unwrap();
        assert_eq!(count_of(&out), 6, "origin {origin}");
    }
}

#[test]
fn join_extends_the_group() {
    let mut c = flagged_cluster(20, 5, 5);
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(7), q).unwrap()), 5);
    let newbie = c.add_node([("A".to_string(), Value::Int(1))]);
    c.run_to_quiescence();
    assert_eq!(count_of(&c.query(NodeId(7), q).unwrap()), 6);
    assert!(c.is_alive(newbie));
}

#[test]
fn sequential_failures_during_query_stream() {
    let mut c = flagged_cluster(48, 16, 6);
    let q = "SELECT count(*) WHERE A = 1";
    let mut expected = 16i64;
    for round in 0..6u32 {
        let victim = NodeId(round * 7 % 48);
        if c.is_alive(victim) {
            let was_member = c.node(victim).store.get("A") == Some(&Value::Int(1));
            c.fail_node(victim);
            if was_member {
                expected -= 1;
            }
        }
        let out = c.query(NodeId(47), q).unwrap();
        assert_eq!(count_of(&out), expected, "round {round}");
    }
}

#[test]
fn massive_churn_then_stability() {
    let mut c = flagged_cluster(64, 0, 7);
    let q = "SELECT count(*) WHERE A = 1";
    // Rapidly oscillate the whole system's membership.
    for round in 0..10u32 {
        for i in 0..64u32 {
            c.set_attr(NodeId(i), "A", i64::from((i + round) % 2 == 0));
        }
    }
    c.run_to_quiescence();
    let truth = c
        .group_members(&SimplePredicate::new("A", CmpOp::Eq, 1i64))
        .len() as i64;
    assert_eq!(count_of(&c.query(NodeId(0), q).unwrap()), truth);
    assert_eq!(truth, 32);
}

#[test]
fn partition_hides_members_heal_restores_them() {
    // A netsplit is injected at the *network* level: the overlay still
    // believes in the full membership, so queries from the majority side
    // time out on the cut branches (incomplete, fewer members) — and
    // after heal() the very next query is whole again, with no repair
    // step in between. Eventual completeness after heal.
    let mut c = flagged_cluster(24, 8, 21);
    let q = "SELECT count(*) WHERE A = 1";
    let before = c.query(NodeId(12), q).unwrap();
    assert!(before.complete);
    assert_eq!(count_of(&before), 8);

    // Cut off a side holding three of the group members.
    let side: Vec<NodeId> = [0u32, 1, 2].map(NodeId).to_vec();
    c.partition(&side);
    let during = c.query(NodeId(12), q).unwrap();
    assert!(
        !during.complete,
        "severed branches must surface as incompleteness, not hang"
    );
    assert!(
        count_of(&during) < 8,
        "cut members cannot answer: got {}",
        count_of(&during)
    );
    // The minority side is worse off: the group's tree root lives on the
    // other side, so it cannot even reach the tree — it gets a (clearly
    // marked incomplete) partial answer of at most its own members.
    let minority = c.query(NodeId(0), q).unwrap();
    assert!(!minority.complete);
    assert!(count_of(&minority) <= 3);

    c.heal();
    let after = c.query(NodeId(12), q).unwrap();
    assert!(after.complete, "healed network must complete again");
    assert_eq!(
        count_of(&after),
        8,
        "answers return to the pre-partition count"
    );
}

#[test]
fn crash_then_rejoin_restores_the_pre_crash_count() {
    let mut c = flagged_cluster(30, 9, 22);
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(20), q).unwrap()), 9);

    // Crash two group members (overlay repairs around them).
    c.fail_node(NodeId(1));
    c.fail_node(NodeId(4));
    let during = c.query(NodeId(20), q).unwrap();
    assert!(during.complete);
    assert_eq!(count_of(&during), 7);

    // Restart them: same identity, attribute stores preserved, stale
    // tree state discarded — they re-enter the group's tree.
    c.restart_node(NodeId(1));
    c.restart_node(NodeId(4));
    c.run_to_quiescence();
    assert!(c.is_alive(NodeId(1)) && c.is_alive(NodeId(4)));
    let after = c.query(NodeId(20), q).unwrap();
    assert!(after.complete);
    assert_eq!(count_of(&after), 9, "returnees reappear in query results");

    // And the ground truth agrees.
    let truth = c
        .group_members(&SimplePredicate::new("A", CmpOp::Eq, 1i64))
        .len() as i64;
    assert_eq!(truth, 9);
}

#[test]
fn rejoined_root_serves_its_tree_again() {
    // Harder variant: the crashed node is the *root* of the group's tree;
    // the tree re-homes while it is gone and must re-form around it when
    // it returns.
    let mut c = flagged_cluster(40, 6, 23);
    let q = "SELECT count(*) WHERE A = 1";
    c.query(NodeId(30), q).unwrap();
    let key = moara_dht::Id::of_attribute("A");
    let root = c.directory().owner_node(key);
    let was_member = c.node(root).store.get("A") == Some(&Value::Int(1));
    c.fail_node(root);
    let expected = 6 - i64::from(was_member);
    assert_eq!(count_of(&c.query(NodeId(30), q).unwrap()), expected);

    c.restart_node(root);
    c.run_to_quiescence();
    assert_eq!(
        c.directory().owner_node(key),
        root,
        "the returnee owns its key again"
    );
    let out = c.query(NodeId(30), q).unwrap();
    assert!(out.complete);
    assert_eq!(count_of(&out), 6);
}

#[test]
fn lossy_network_queries_stay_bounded_and_eventually_complete() {
    // Per-link loss: individual queries may come back incomplete (their
    // branch timeouts fire) but never hang, and a retry loop converges to
    // the full answer once a loss-free round happens.
    let mut c = flagged_cluster(16, 5, 24);
    let q = "SELECT count(*) WHERE A = 1";
    c.set_default_drop(0.05);
    let mut complete_with_truth = false;
    for _ in 0..12 {
        let out = c.query(NodeId(10), q).unwrap();
        assert!(count_of(&out) <= 5, "loss can only lose answers, not add");
        if out.complete && count_of(&out) == 5 {
            complete_with_truth = true;
            break;
        }
    }
    assert!(
        complete_with_truth,
        "repeated queries over a 5%-lossy network must eventually complete"
    );
}

#[test]
fn attribute_removal_is_group_departure() {
    let mut c = flagged_cluster(20, 8, 8);
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(0), q).unwrap()), 8);
    c.remove_attr(NodeId(0), "A");
    c.remove_attr(NodeId(1), "A");
    assert_eq!(count_of(&c.query(NodeId(5), q).unwrap()), 6);
}

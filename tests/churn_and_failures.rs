//! Robustness: node failures mid-query, overlay repair, joins, and heavy
//! attribute churn (paper Section 7's reconfiguration handling).

use moara::{AggResult, Cluster, NodeId, Value};
use moara_query::{CmpOp, SimplePredicate};

fn count_of(out: &moara::QueryOutcome) -> i64 {
    match &out.result {
        AggResult::Value(Value::Int(x)) => *x,
        AggResult::Empty => 0,
        other => panic!("unexpected result {other:?}"),
    }
}

fn flagged_cluster(n: usize, group: usize, seed: u64) -> Cluster {
    let mut c = Cluster::builder().nodes(n).seed(seed).build();
    for i in 0..n as u32 {
        c.set_attr(NodeId(i), "A", i64::from((i as usize) < group));
    }
    c.run_to_quiescence();
    c
}

#[test]
fn failed_members_disappear_from_answers() {
    let mut c = flagged_cluster(40, 12, 1);
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(20), q).unwrap()), 12);
    // Kill three group members.
    for i in 0..3u32 {
        c.fail_node(NodeId(i));
    }
    let out = c.query(NodeId(20), q).unwrap();
    assert_eq!(count_of(&out), 9);
}

#[test]
fn failed_interior_nodes_do_not_lose_members() {
    let mut c = flagged_cluster(60, 10, 2);
    let q = "SELECT count(*) WHERE A = 1";
    // Warm the tree so interior state exists, then kill non-members (which
    // may be interior tree nodes holding prune state for the group).
    for _ in 0..3 {
        c.query(NodeId(30), q).unwrap();
    }
    for i in 40..48u32 {
        c.fail_node(NodeId(i));
    }
    let out = c.query(NodeId(30), q).unwrap();
    assert_eq!(
        count_of(&out),
        10,
        "all members still reachable after repair"
    );
}

#[test]
fn root_failure_rehomes_the_tree() {
    let mut c = flagged_cluster(50, 8, 3);
    let q = "SELECT count(*) WHERE A = 1";
    c.query(NodeId(9), q).unwrap();
    // Find and kill the tree root for attribute A.
    let key = moara_dht::Id::of_attribute("A");
    let root = c.directory().owner_node(key);
    c.fail_node(root);
    let expected = c
        .group_members(&SimplePredicate::new("A", CmpOp::Eq, 1i64))
        .len() as i64;
    let origin = if root == NodeId(9) {
        NodeId(10)
    } else {
        NodeId(9)
    };
    let out = c.query(origin, q).unwrap();
    assert_eq!(count_of(&out), expected);
    // A new root owns the key now.
    assert_ne!(c.directory().owner_node(key), root);
}

#[test]
fn querying_node_can_be_any_survivor() {
    let mut c = flagged_cluster(30, 6, 4);
    for i in 10..20u32 {
        c.fail_node(NodeId(i));
    }
    let q = "SELECT count(*) WHERE A = 1";
    for origin in [0u32, 5, 25, 29] {
        let out = c.query(NodeId(origin), q).unwrap();
        assert_eq!(count_of(&out), 6, "origin {origin}");
    }
}

#[test]
fn join_extends_the_group() {
    let mut c = flagged_cluster(20, 5, 5);
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(7), q).unwrap()), 5);
    let newbie = c.add_node([("A".to_string(), Value::Int(1))]);
    c.run_to_quiescence();
    assert_eq!(count_of(&c.query(NodeId(7), q).unwrap()), 6);
    assert!(c.is_alive(newbie));
}

#[test]
fn sequential_failures_during_query_stream() {
    let mut c = flagged_cluster(48, 16, 6);
    let q = "SELECT count(*) WHERE A = 1";
    let mut expected = 16i64;
    for round in 0..6u32 {
        let victim = NodeId(round * 7 % 48);
        if c.is_alive(victim) {
            let was_member = c.node(victim).store.get("A") == Some(&Value::Int(1));
            c.fail_node(victim);
            if was_member {
                expected -= 1;
            }
        }
        let out = c.query(NodeId(47), q).unwrap();
        assert_eq!(count_of(&out), expected, "round {round}");
    }
}

#[test]
fn massive_churn_then_stability() {
    let mut c = flagged_cluster(64, 0, 7);
    let q = "SELECT count(*) WHERE A = 1";
    // Rapidly oscillate the whole system's membership.
    for round in 0..10u32 {
        for i in 0..64u32 {
            c.set_attr(NodeId(i), "A", i64::from((i + round) % 2 == 0));
        }
    }
    c.run_to_quiescence();
    let truth = c
        .group_members(&SimplePredicate::new("A", CmpOp::Eq, 1i64))
        .len() as i64;
    assert_eq!(count_of(&c.query(NodeId(0), q).unwrap()), truth);
    assert_eq!(truth, 32);
}

#[test]
fn attribute_removal_is_group_departure() {
    let mut c = flagged_cluster(20, 8, 8);
    let q = "SELECT count(*) WHERE A = 1";
    assert_eq!(count_of(&c.query(NodeId(0), q).unwrap()), 8);
    c.remove_attr(NodeId(0), "A");
    c.remove_attr(NodeId(1), "A");
    assert_eq!(count_of(&c.query(NodeId(5), q).unwrap()), 6);
}

//! Serde-style round-trip coverage for every [`MoaraMsg`] variant:
//! encode → decode → equality, including `Route` nesting, plus the
//! bandwidth-accounting contract — `size_bytes()` must stay within 2× of
//! the real encoded size so the simulator's byte figures remain honest.
//! (Since the `moara-wire` refactor `size_bytes` *is* the exact framed
//! size; the 2× bound is kept as the regression tripwire the issue asked
//! for, and would catch any future drift between estimate and codec.)

use moara::aggregation::{AggKind, AggState, NodeRef};
use moara::attributes::Value;
use moara::core::{MoaraMsg, QueryId};
use moara::dht::Id;
use moara::query::{CmpOp, Predicate, Query, SimplePredicate};
use moara::simnet::{Message, NodeId, SimDuration};
use moara::subscribe::{DeliveryPolicy, SubId, SubSpec};
use moara_wire::{Wire, FRAME_HDR, SENDER_HDR};

fn roundtrip(msg: &MoaraMsg) {
    let bytes = msg.to_bytes();
    assert_eq!(
        bytes.len(),
        msg.encoded_len(),
        "encoded_len out of sync for {msg:?}"
    );
    let back = MoaraMsg::from_bytes(&bytes).unwrap_or_else(|e| panic!("decode {msg:?}: {e}"));
    assert_eq!(&back, msg);

    // Honest bandwidth accounting: at least the payload, at most 2× the
    // framed payload.
    let wire = bytes.len() + FRAME_HDR;
    assert!(
        msg.size_bytes() >= bytes.len() && msg.size_bytes() <= 2 * wire,
        "size_bytes {} vs wire {} for {msg:?}",
        msg.size_bytes(),
        wire
    );
}

fn qid(origin: u32, n: u64) -> QueryId {
    QueryId {
        origin: NodeId(origin),
        n,
    }
}

fn composite_query() -> Query {
    Query::new(
        Some("CPU-Util".into()),
        AggKind::Avg,
        Predicate::And(vec![
            Predicate::Or(vec![
                Predicate::atom("ServiceX", CmpOp::Eq, true),
                Predicate::atom("OS", CmpOp::Ne, "Linux"),
            ]),
            Predicate::atom("CPU-Util", CmpOp::Lt, 50i64),
            Predicate::All,
        ]),
    )
}

#[test]
fn query_down_roundtrips() {
    roundtrip(&MoaraMsg::QueryDown {
        qid: qid(3, 17),
        seq: 9,
        pred_key: "ServiceX=true".into(),
        tree: Id::of_attribute("ServiceX"),
        query: composite_query(),
        reply_to: NodeId(12),
        trace: None,
    });
    // Node-oriented query, no attribute.
    roundtrip(&MoaraMsg::QueryDown {
        qid: qid(0, 0),
        seq: 0,
        pred_key: "*".into(),
        tree: Id(u64::MAX),
        query: Query::new(None, AggKind::Count, Predicate::All),
        reply_to: NodeId(0),
        trace: None,
    });
}

#[test]
fn query_reply_roundtrips_for_every_agg_state() {
    let states = vec![
        AggState::Null,
        AggState::Count(42),
        AggState::SumInt(-7),
        AggState::SumFloat(2.25),
        AggState::Avg {
            sum: 10.5,
            count: 3,
        },
        AggState::Min((Value::Int(-3), NodeRef(4))),
        AggState::Max((Value::str("zed"), NodeRef(9))),
        AggState::Ranked {
            k: 3,
            descending: true,
            items: vec![(Value::Float(9.5), NodeRef(1)), (Value::Int(7), NodeRef(2))],
        },
        AggState::Nodes(vec![NodeRef(1), NodeRef(5), NodeRef(8)]),
        AggState::Hist {
            lo: 0,
            hi: 100,
            counts: vec![0, 3, 1, 0, 2],
        },
    ];
    for state in states {
        roundtrip(&MoaraMsg::QueryReply {
            qid: qid(1, 2),
            pred_key: "CPU-Util<50".into(),
            state,
            np: 11,
            complete: false,
            trace: None,
        });
    }
}

#[test]
fn status_roundtrips() {
    roundtrip(&MoaraMsg::Status {
        pred_key: "A=1".into(),
        pred: SimplePredicate::new("A", CmpOp::Eq, 1i64),
        prune: true,
        update_set: vec![],
        np: 0,
        last_seq: 0,
    });
    roundtrip(&MoaraMsg::Status {
        pred_key: "Mem-Free>=1024".into(),
        pred: SimplePredicate::new("Mem-Free", CmpOp::Ge, 1024i64),
        prune: false,
        update_set: (0..25).map(NodeId).collect(),
        np: 25,
        last_seq: 7,
    });
}

#[test]
fn size_probe_and_reply_roundtrip() {
    roundtrip(&MoaraMsg::SizeProbe {
        qid: qid(2, 7),
        pred_key: "ServiceX=true".into(),
        reply_to: NodeId(2),
        trace: None,
    });
    roundtrip(&MoaraMsg::SizeReply {
        qid: qid(2, 7),
        pred_key: "ServiceX=true".into(),
        cost: 64,
        trace: None,
    });
}

#[test]
fn batch_roundtrips() {
    let route_probe = |key: &str| MoaraMsg::Route {
        key: Id::of_attribute(key),
        inner: Box::new(MoaraMsg::SizeProbe {
            qid: qid(4, 2),
            pred_key: format!("{key}=true"),
            reply_to: NodeId(4),
            trace: None,
        }),
    };
    roundtrip(&MoaraMsg::Batch { items: vec![] });
    let batch = MoaraMsg::Batch {
        items: vec![
            route_probe("ServiceX"),
            route_probe("Apache"),
            MoaraMsg::Route {
                key: Id(3),
                inner: Box::new(MoaraMsg::QueryDown {
                    qid: qid(4, 2),
                    seq: 0,
                    pred_key: "ServiceX=true".into(),
                    tree: Id::of_attribute("ServiceX"),
                    query: composite_query(),
                    reply_to: NodeId(4),
                    trace: None,
                }),
            },
        ],
    };
    roundtrip(&batch);
    // One coalesced frame is attributed to its (single) query.
    assert_eq!(batch.query_tag(), Some(qid(4, 2).tag()));
}

#[test]
fn route_nesting_roundtrips() {
    let inner = MoaraMsg::SizeProbe {
        qid: qid(5, 0),
        pred_key: "ServiceX=true".into(),
        reply_to: NodeId(5),
        trace: None,
    };
    let one = MoaraMsg::Route {
        key: Id::of_attribute("ServiceX"),
        inner: Box::new(inner.clone()),
    };
    roundtrip(&one);
    // Route-in-route (a probe relayed across two overlay hops).
    let two = MoaraMsg::Route {
        key: Id(123),
        inner: Box::new(one.clone()),
    };
    roundtrip(&two);
    // Route wrapping a full QueryDown.
    roundtrip(&MoaraMsg::Route {
        key: Id(9),
        inner: Box::new(MoaraMsg::QueryDown {
            qid: qid(8, 1),
            seq: 0,
            pred_key: "OS='Linux'".into(),
            tree: Id::of_attribute("OS"),
            query: composite_query(),
            reply_to: NodeId(8),
            trace: None,
        }),
    });

    // Route's accounting now includes the framing constant: each level of
    // nesting adds exactly tag + key bytes on top of the inner payload.
    assert_eq!(one.encoded_len(), 1 + 8 + inner.encoded_len());
    assert_eq!(one.size_bytes(), FRAME_HDR + SENDER_HDR + one.encoded_len());
    assert_eq!(two.size_bytes(), one.size_bytes() + 9);
}

fn sub_spec(policy: DeliveryPolicy) -> SubSpec {
    SubSpec {
        id: SubId {
            origin: NodeId(2),
            n: 7,
        },
        query: composite_query(),
        policy,
        lease: SimDuration::from_secs(30),
        owner: NodeId(2),
        cover: vec!["CPU-Util<50".into(), "ServiceX=true".into()],
    }
}

#[test]
fn subscribe_roundtrips_for_every_policy() {
    for policy in [
        DeliveryPolicy::OnChange,
        DeliveryPolicy::Periodic(SimDuration::from_secs(5)),
        DeliveryPolicy::Threshold { value: -1.25 },
    ] {
        roundtrip(&MoaraMsg::Subscribe {
            spec: sub_spec(policy),
            pred_key: "ServiceX=true".into(),
            tree: Id::of_attribute("ServiceX"),
            seq: 3,
        });
        // Installs travel Route'd to the tree root like queries.
        roundtrip(&MoaraMsg::Route {
            key: Id::of_attribute("ServiceX"),
            inner: Box::new(MoaraMsg::Subscribe {
                spec: sub_spec(policy),
                pred_key: "ServiceX=true".into(),
                tree: Id::of_attribute("ServiceX"),
                seq: 3,
            }),
        });
    }
}

#[test]
fn sub_delta_roundtrips_for_every_agg_state() {
    let states = vec![
        AggState::Null,
        AggState::Count(42),
        AggState::SumInt(-7),
        AggState::Avg {
            sum: 10.5,
            count: 3,
        },
        AggState::Std {
            sum: 9.0,
            sum_sq: 29.0,
            count: 3,
        },
        AggState::Min((Value::Int(-3), NodeRef(4))),
        AggState::Ranked {
            k: 2,
            descending: true,
            items: vec![(Value::Float(9.5), NodeRef(1))],
        },
    ];
    for state in states {
        roundtrip(&MoaraMsg::SubDelta {
            sid: SubId {
                origin: NodeId(1),
                n: 3,
            },
            pred_key: "ServiceX=true".into(),
            seq: 12,
            state,
            trace: None,
        });
    }
}

#[test]
fn sub_renew_and_cancel_roundtrip() {
    let sid = SubId {
        origin: NodeId(9),
        n: 1,
    };
    roundtrip(&MoaraMsg::SubRenew {
        sid,
        pred_key: "A=1".into(),
        lease_us: 30_000_000,
        last_seen_seq: 8,
    });
    roundtrip(&MoaraMsg::SubCancel {
        sid,
        pred_key: "A=1".into(),
    });
    // Subscription traffic is maintenance for per-query accounting.
    assert_eq!(
        MoaraMsg::SubCancel {
            sid,
            pred_key: "A=1".into()
        }
        .query_tag(),
        None
    );
}

#[test]
fn decoding_rejects_corruption() {
    let msg = MoaraMsg::SizeReply {
        qid: qid(0, 0),
        pred_key: "A=1".into(),
        cost: 1,
        trace: None,
    };
    let mut bytes = msg.to_bytes();
    bytes[0] = 0xEE; // bogus variant tag
    assert!(MoaraMsg::from_bytes(&bytes).is_err());
    let bytes = msg.to_bytes();
    assert!(MoaraMsg::from_bytes(&bytes[..bytes.len() - 1]).is_err());
}

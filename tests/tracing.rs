//! Distributed-tracing behaviour on the simulator backend: span trees
//! cover every query phase, causal links are intact, sampling thins
//! roots, and — because the simulator is deterministic — two identical
//! runs record byte-identical span sets.

use moara::trace::{Phase, SpanRecord};
use moara::{Cluster, NodeId};

/// A traced testbed: 40 nodes, two overlapping groups, tracing every
/// query.
fn testbed(seed: u64, sample_every: u64) -> Cluster {
    let mut c = Cluster::builder()
        .nodes(40)
        .seed(seed)
        .tracing(sample_every)
        .build();
    for i in 0..40u32 {
        let node = NodeId(i);
        c.set_attr(node, "a", i % 2 == 0);
        c.set_attr(node, "b", i % 3 == 0);
    }
    c.run_to_quiescence();
    c
}

/// Runs the canonical composite query and returns the recorded spans for
/// it, sorted into a canonical order.
fn traced_query(c: &mut Cluster) -> (u64, Vec<SpanRecord>) {
    let out = c
        .query(NodeId(7), "SELECT count(*) WHERE a = true AND b = true")
        .unwrap();
    assert!(out.complete);
    let trace_id = out.qid.tag();
    let mut spans = c.tracer().expect("tracing enabled").spans_for(trace_id);
    spans.sort_by_key(|s| (s.span_id, s.start_us, s.node));
    (trace_id, spans)
}

#[test]
fn span_tree_covers_all_phases_and_is_causally_linked() {
    let mut c = testbed(11, 1);
    let (trace_id, spans) = traced_query(&mut c);
    assert!(!spans.is_empty(), "a traced query must record spans");

    // Every phase of a composite query shows up.
    for phase in [Phase::Parse, Phase::Plan, Phase::FanOut, Phase::Fold] {
        assert!(
            spans.iter().any(|s| s.phase == phase),
            "missing {phase:?} span in {spans:#?}"
        );
    }

    // Exactly one root (the front-end's parse span), and every other
    // span's parent is present: the store is shared in-process, so the
    // merged tree must be orphan-free.
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent_span_id == 0).collect();
    assert_eq!(roots.len(), 1, "one root span, got {roots:#?}");
    assert_eq!(roots[0].phase, Phase::Parse);
    assert_eq!(roots[0].node, 7, "root belongs to the origin front-end");
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    for s in &spans {
        assert_eq!(s.trace_id, trace_id);
        assert!(
            s.parent_span_id == 0 || ids.contains(&s.parent_span_id),
            "orphan span {s:?}"
        );
    }

    // More than one node took part: the fan-out crossed the overlay.
    let nodes: std::collections::HashSet<u32> = spans.iter().map(|s| s.node).collect();
    assert!(
        nodes.len() > 1,
        "expected a multi-node trace, got {nodes:?}"
    );
}

#[test]
fn identical_runs_record_identical_spans() {
    // The simulator is deterministic, and the tracer must not break
    // that: same seed, same workload, same spans — ids, phases, nodes,
    // timings, byte counts, everything.
    let (id_a, spans_a) = traced_query(&mut testbed(23, 1));
    let (id_b, spans_b) = traced_query(&mut testbed(23, 1));
    assert_eq!(id_a, id_b);
    assert_eq!(spans_a, spans_b);
    // And a different seed genuinely changes the trace.
    let (_, spans_c) = traced_query(&mut testbed(24, 1));
    assert_ne!(spans_a, spans_c);
}

#[test]
fn sampling_thins_roots_and_zero_disables() {
    // sample_every = 2: every other root query is traced.
    let mut c = testbed(5, 2);
    let mut traced = 0;
    for _ in 0..6 {
        let out = c
            .query(NodeId(3), "SELECT count(*) WHERE a = true")
            .unwrap();
        if !c.tracer().unwrap().spans_for(out.qid.tag()).is_empty() {
            traced += 1;
        }
    }
    assert_eq!(traced, 3, "1-in-2 sampling should trace half the queries");

    // sample_every = 0: no tracer is attached at all.
    let c = Cluster::builder().nodes(4).seed(5).tracing(0).build();
    assert!(c.tracer().is_none());
}

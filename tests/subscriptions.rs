//! Cluster-level tests of the continuous-query subscription plane:
//! initial sync, delta propagation, suppression (a quiescent subtree
//! sends zero frames), lease-expiry GC, explicit cancel, partition/heal
//! convergence, and crash/restart churn — on the deterministic simulator
//! plus one TCP-loopback twin of the basic lifecycle.

use moara::core::Cluster;
use moara::simnet::{NodeId, SimDuration};
use moara::transport::TcpConfig;
use moara::{AggResult, DeliveryPolicy, Value};

fn count_result(n: i64) -> AggResult {
    AggResult::Value(Value::Int(n))
}

/// A 24-node cluster where nodes 0..group have `A = true`.
fn flagged_cluster(n: usize, group: u32, seed: u64) -> Cluster {
    let mut c = Cluster::builder().nodes(n).seed(seed).build();
    for i in 0..n as u32 {
        c.set_attr(NodeId(i), "A", i < group);
        c.set_attr(NodeId(i), "V", i as i64);
    }
    c.run_to_quiescence();
    c.stats_mut().reset();
    c
}

#[test]
fn subscribe_delivers_initial_result_then_deltas() {
    let mut c = flagged_cluster(24, 6, 11);
    let wid = c
        .subscribe(
            NodeId(3),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(3), wid);
    assert_eq!(ups.len(), 1, "exactly one initial update");
    assert!(ups[0].initial && ups[0].complete);
    assert_eq!(ups[0].result, count_result(6));

    // A member leaves the group: exactly one on-change update, correct.
    c.set_attr(NodeId(2), "A", false);
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(3), wid);
    assert_eq!(ups.len(), 1);
    assert!(!ups[0].initial);
    assert_eq!(ups[0].result, count_result(5));

    // A non-member joins.
    c.set_attr(NodeId(20), "A", true);
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(3), wid);
    assert_eq!(ups.len(), 1);
    assert_eq!(ups[0].result, count_result(6));

    // An unrelated attribute change emits nothing.
    c.set_attr(NodeId(5), "Other", 42i64);
    c.run_to_quiescence();
    assert!(c.take_sub_updates(NodeId(3), wid).is_empty());
}

#[test]
fn value_aggregates_track_attribute_changes() {
    let mut c = flagged_cluster(20, 4, 13);
    // sum(V) over members 0..4 = 0+1+2+3 = 6.
    let wid = c
        .subscribe(
            NodeId(7),
            "SELECT sum(V) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(7), wid);
    assert_eq!(ups[0].result, count_result(6));

    // A member's value moves: the delta carries the new sum.
    c.set_attr(NodeId(2), "V", 100i64);
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(7), wid);
    assert_eq!(ups.last().unwrap().result, count_result(104));

    // min over the group retracts when the minimum's holder leaves.
    let wid2 = c
        .subscribe(
            NodeId(7),
            "SELECT min(V) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(7), wid2);
    assert_eq!(ups[0].result.as_f64(), Some(0.0));
    c.set_attr(NodeId(0), "A", false); // held the min (V = 0)
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(7), wid2);
    assert_eq!(ups.last().unwrap().result.as_f64(), Some(1.0));
}

#[test]
fn quiescent_subtrees_send_zero_frames() {
    let mut c = flagged_cluster(32, 8, 17);
    let wid = c
        .subscribe(
            NodeId(1),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(3600), // renewal far beyond the window
        )
        .unwrap();
    c.run_to_quiescence();
    assert_eq!(
        c.take_sub_updates(NodeId(1), wid)[0].result,
        count_result(8)
    );
    // Nothing changes for a minute of virtual time: the standing query
    // must cost zero frames (the whole point vs per-period polling).
    c.stats_mut().reset();
    c.run_for(SimDuration::from_secs(60));
    assert_eq!(
        c.stats().total_messages(),
        0,
        "quiescent subscription must be silent"
    );

    // One change costs only the changed root-ward path, not a re-query.
    let polled = {
        // Reference: what one poll of the same query costs.
        let mut poll = flagged_cluster(32, 8, 17);
        poll.query(NodeId(1), "SELECT count(*) WHERE A = true")
            .unwrap()
            .messages
    };
    c.stats_mut().reset();
    c.set_attr(NodeId(2), "A", false);
    c.run_to_quiescence();
    let delta_cost = c.stats().total_messages();
    assert!(
        c.stats().counter("sub_deltas") > 0,
        "change flowed as delta"
    );
    assert!(
        delta_cost < polled,
        "one delta ({delta_cost} msgs) must undercut one poll ({polled} msgs)"
    );
    assert_eq!(
        c.take_sub_updates(NodeId(1), wid).last().unwrap().result,
        count_result(7)
    );
}

#[test]
fn periodic_policy_emits_snapshots_at_poll_equivalent_freshness() {
    let mut c = flagged_cluster(16, 5, 19);
    let wid = c
        .subscribe(
            NodeId(0),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::Periodic(SimDuration::from_secs(5)),
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    assert_eq!(c.take_sub_updates(NodeId(0), wid).len(), 1, "initial");
    // Three periods pass, one change in the middle: three snapshots.
    c.run_for(SimDuration::from_secs(4));
    c.set_attr(NodeId(10), "A", true);
    c.run_for(SimDuration::from_secs(11));
    let ups = c.take_sub_updates(NodeId(0), wid);
    assert_eq!(ups.len(), 3, "one snapshot per period");
    assert_eq!(ups.last().unwrap().result, count_result(6));
}

#[test]
fn threshold_policy_emits_on_crossings_only() {
    let mut c = flagged_cluster(16, 3, 23);
    let wid = c
        .subscribe(
            NodeId(2),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::Threshold { value: 5.0 },
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    assert_eq!(c.take_sub_updates(NodeId(2), wid).len(), 1, "initial");
    // 3 → 4: still below 5, silent.
    c.set_attr(NodeId(10), "A", true);
    c.run_to_quiescence();
    assert!(c.take_sub_updates(NodeId(2), wid).is_empty());
    // 4 → 5: crosses.
    c.set_attr(NodeId(11), "A", true);
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(2), wid);
    assert_eq!(ups.len(), 1);
    assert_eq!(ups[0].result, count_result(5));
    // 5 → 4: crosses back.
    c.set_attr(NodeId(11), "A", false);
    c.run_to_quiescence();
    assert_eq!(c.take_sub_updates(NodeId(2), wid).len(), 1);
}

#[test]
fn explicit_unsubscribe_tears_state_down_everywhere() {
    let mut c = flagged_cluster(24, 6, 29);
    let wid = c
        .subscribe(
            NodeId(4),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    assert!(c.sub_entries_total() > 0, "entries pinned along the tree");
    c.unsubscribe(NodeId(4), wid);
    c.run_to_quiescence();
    assert_eq!(c.sub_entries_total(), 0, "cancel reaped every entry");
    // Later changes reach nobody.
    c.set_attr(NodeId(1), "A", false);
    c.run_to_quiescence();
    assert!(c.take_sub_updates(NodeId(4), wid).is_empty());
}

#[test]
fn lease_expiry_garbage_collects_when_the_subscriber_dies() {
    let mut c = flagged_cluster(24, 6, 31);
    let origin = NodeId(4);
    c.subscribe(
        origin,
        "SELECT count(*) WHERE A = true",
        DeliveryPolicy::OnChange,
        SimDuration::from_secs(20),
    )
    .unwrap();
    c.run_to_quiescence();
    assert!(c.sub_entries_total() > 0);
    // The subscriber crashes: renewals stop. (fail_node triggers
    // reconcile everywhere, which must not resurrect the watch.)
    c.fail_node(origin);
    c.run_for(SimDuration::from_secs(21));
    assert_eq!(
        c.sub_entries_total(),
        0,
        "every per-node entry must lapse within one lease"
    );
}

#[test]
fn renewals_keep_state_alive_past_many_leases() {
    let mut c = flagged_cluster(24, 6, 37);
    let wid = c
        .subscribe(
            NodeId(4),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(10),
        )
        .unwrap();
    c.run_to_quiescence();
    c.take_sub_updates(NodeId(4), wid);
    // Five lease durations pass; the half-lease renewals keep every
    // entry alive and the result still tracks changes.
    c.run_for(SimDuration::from_secs(50));
    assert!(c.sub_entries_total() > 0, "renewals kept the plane alive");
    c.set_attr(NodeId(1), "A", false);
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(4), wid);
    assert_eq!(ups.last().unwrap().result, count_result(5));
}

#[test]
fn partition_heal_reconverges_via_renewal_anti_entropy() {
    let mut c = flagged_cluster(20, 6, 41);
    let wid = c
        .subscribe(
            NodeId(0),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(8),
        )
        .unwrap();
    c.run_to_quiescence();
    assert_eq!(
        c.take_sub_updates(NodeId(0), wid)[0].result,
        count_result(6)
    );
    // Cut a chunk of the cluster off; group churn happens on BOTH sides
    // while deltas are being lost.
    let side: Vec<NodeId> = (10..20).map(NodeId).collect();
    c.partition(&side);
    c.set_attr(NodeId(1), "A", false); // member leaves (origin side)
    c.set_attr(NodeId(12), "A", true); // joins on the far side (lost)
    c.run_for(SimDuration::from_secs(4));
    c.heal();
    // After heal, the half-lease renewal sweep carries last-seen delta
    // sequences; mismatches re-push lost replacement states and bounced
    // cancels re-install lapsed entries. Give it a few cycles.
    c.run_for(SimDuration::from_secs(20));
    let truth = c
        .group_members(&moara::SimplePredicate::new(
            "A",
            moara::query::CmpOp::Eq,
            true,
        ))
        .len() as i64;
    let got = c
        .take_sub_updates(NodeId(0), wid)
        .last()
        .map(|u| u.result.clone());
    assert_eq!(got, Some(count_result(truth)), "standing result converged");
}

#[test]
fn isolation_outliving_the_lease_repairs_via_cancel_bounce() {
    // The subscriber is cut off for longer than the lease: every remote
    // entry expires. After heal, the next renewal reaches a root that no
    // longer knows the subscription; the root bounces a SubCancel to the
    // origin, whose watch treats it as a repair signal and re-pins the
    // trees with a full install.
    let mut c = flagged_cluster(16, 5, 61);
    let origin = NodeId(0);
    let wid = c
        .subscribe(
            origin,
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(8),
        )
        .unwrap();
    c.run_to_quiescence();
    assert_eq!(c.take_sub_updates(origin, wid)[0].result, count_result(5));
    c.partition(&[origin]);
    c.run_for(SimDuration::from_secs(20)); // > lease: all entries lapse
    assert_eq!(c.sub_entries_total(), 0, "remote state expired");
    c.heal();
    c.run_for(SimDuration::from_secs(10)); // renewal → bounce → re-pin
    assert!(c.sub_entries_total() > 0, "watch re-pinned its trees");
    c.set_attr(NodeId(1), "A", false);
    c.run_to_quiescence();
    assert_eq!(
        c.take_sub_updates(origin, wid)
            .last()
            .map(|u| u.result.clone()),
        Some(count_result(4)),
        "standing result tracks changes again after the repair"
    );
}

#[test]
fn crash_and_restart_repair_the_standing_result() {
    let mut c = flagged_cluster(20, 6, 43);
    let wid = c
        .subscribe(
            NodeId(0),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    assert_eq!(
        c.take_sub_updates(NodeId(0), wid)[0].result,
        count_result(6)
    );
    // A group member crashes: the failure hooks retract its summary and
    // the reconciled tree re-installs around it.
    c.fail_node(NodeId(2));
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(0), wid);
    assert_eq!(
        ups.last().map(|u| u.result.clone()),
        Some(count_result(5)),
        "confirmed failure shrank the standing result"
    );
    // It restarts with its attributes intact: the repair wave re-pins it
    // and the result recovers.
    c.restart_node(NodeId(2));
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(0), wid);
    assert_eq!(
        ups.last().map(|u| u.result.clone()),
        Some(count_result(6)),
        "rejoin restored the standing result"
    );
}

#[test]
fn composite_covers_do_not_double_count_overlapping_groups() {
    let mut c = Cluster::builder().nodes(24).seed(47).build();
    for i in 0..24u32 {
        // Groups overlap: nodes 0..6 are in X, 4..10 in Y.
        c.set_attr(NodeId(i), "X", i < 6);
        c.set_attr(NodeId(i), "Y", (4..10).contains(&i));
    }
    c.run_to_quiescence();
    let wid = c
        .subscribe(
            NodeId(3),
            "SELECT count(*) WHERE X = true OR Y = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(3), wid);
    assert_eq!(
        ups[0].result,
        count_result(10),
        "union of overlapping groups counts each node once"
    );
    // A node in BOTH groups leaves one of them: still a member via the
    // other; the standing count must not move.
    c.set_attr(NodeId(5), "X", false);
    c.run_to_quiescence();
    let after: Vec<_> = c.take_sub_updates(NodeId(3), wid);
    assert!(
        after.is_empty() || after.last().unwrap().result == count_result(10),
        "membership unchanged ⇒ count unchanged, got {after:?}"
    );
    // Leaving both groups does move it.
    c.set_attr(NodeId(5), "Y", false);
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(3), wid);
    assert_eq!(ups.last().unwrap().result, count_result(9));
}

#[test]
fn unsatisfiable_subscription_answers_locally() {
    let mut c = flagged_cluster(8, 2, 53);
    c.stats_mut().reset();
    let wid = c
        .subscribe(
            NodeId(0),
            "SELECT count(*) WHERE A = true AND A = false",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    let ups = c.take_sub_updates(NodeId(0), wid);
    assert_eq!(ups.len(), 1);
    assert_eq!(ups[0].result, count_result(0));
    assert_eq!(c.stats().total_messages(), 0, "no communication at all");
}

#[test]
fn tcp_loopback_twin_runs_the_basic_lifecycle() {
    // Same protocol over the TCP-path code (deterministic loopback
    // mode): subscribe → initial → delta → crash shrink → restart
    // restore. Real-socket coverage lives in the daemon crate.
    let mut c = Cluster::builder()
        .nodes(12)
        .seed(59)
        .build_tcp(TcpConfig::loopback(59));
    for i in 0..12u32 {
        c.set_attr(NodeId(i), "A", i < 4);
    }
    c.run_to_quiescence();
    let wid = c
        .subscribe(
            NodeId(1),
            "SELECT count(*) WHERE A = true",
            DeliveryPolicy::OnChange,
            SimDuration::from_secs(600),
        )
        .unwrap();
    c.run_to_quiescence();
    let ups = c.take_sub_updates(NodeId(1), wid);
    assert_eq!(ups.len(), 1);
    assert_eq!(ups[0].result, count_result(4));

    c.set_attr(NodeId(7), "A", true);
    c.run_to_quiescence();
    assert_eq!(
        c.take_sub_updates(NodeId(1), wid).last().unwrap().result,
        count_result(5)
    );

    c.fail_node(NodeId(0));
    c.run_to_quiescence();
    assert_eq!(
        c.take_sub_updates(NodeId(1), wid).last().unwrap().result,
        count_result(4)
    );
    c.restart_node(NodeId(0));
    c.run_to_quiescence();
    assert_eq!(
        c.take_sub_updates(NodeId(1), wid).last().unwrap().result,
        count_result(5)
    );
}

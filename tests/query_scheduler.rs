//! The adaptive query-plane scheduler end to end: per-query message
//! accounting under overlapping queries, probe-cost caching with
//! churn-driven invalidation, probe coalescing across concurrent
//! queries, and batched fan-out.

use moara::{AggResult, Cluster, MoaraConfig, NodeId, ProbeCachePolicy, Value};

fn count_of(out: &moara::QueryOutcome) -> i64 {
    match &out.result {
        AggResult::Value(Value::Int(x)) => *x,
        AggResult::Empty => 0,
        other => panic!("unexpected result {other:?}"),
    }
}

/// 60 nodes with three overlapping boolean groups.
fn testbed(cfg: MoaraConfig, seed: u64) -> Cluster {
    let mut c = Cluster::builder().nodes(60).seed(seed).config(cfg).build();
    for i in 0..60u32 {
        let node = NodeId(i);
        c.set_attr(node, "a", i % 2 == 0); // 30 nodes
        c.set_attr(node, "b", i % 3 == 0); // 20 nodes
        c.set_attr(node, "c", i % 5 == 0); // 12 nodes
    }
    c.run_to_quiescence();
    c.stats_mut().reset();
    c
}

/// Regression for the old harness accounting: `QueryOutcome::messages`
/// came from a global before/after snapshot, so overlapping queries read
/// 0 (async path) or each other's traffic (sync path). Messages are now
/// tagged with their `QueryId` at the transport, so every outcome reports
/// its own traffic even when queries run concurrently.
#[test]
fn overlapping_queries_account_messages_separately() {
    let mut c = testbed(MoaraConfig::default(), 21);
    // Three queries in flight at once, from three different front-ends.
    let fa = c.submit(
        NodeId(0),
        moara::parse_query("SELECT count(*) WHERE a = true").unwrap(),
    );
    let fb = c.submit(
        NodeId(1),
        moara::parse_query("SELECT count(*) WHERE b = true").unwrap(),
    );
    let fc = c.submit(
        NodeId(2),
        moara::parse_query("SELECT count(*) WHERE c = true").unwrap(),
    );
    c.run_to_quiescence();

    let a = c.take_outcome(NodeId(0), fa).expect("a finished");
    let b = c.take_outcome(NodeId(1), fb).expect("b finished");
    let cc = c.take_outcome(NodeId(2), fc).expect("c finished");
    assert!(a.complete && b.complete && cc.complete);
    assert_eq!(count_of(&a), 30);
    assert_eq!(count_of(&b), 20);
    assert_eq!(count_of(&cc), 12);

    // Every overlapping query reports its own (non-zero) traffic…
    for (name, out) in [("a", &a), ("b", &b), ("c", &cc)] {
        assert!(out.messages > 0, "query {name} reported 0 messages");
    }
    // …and the per-query figures are a decomposition of (a subset of)
    // the system total, not copies of it.
    let tagged = a.messages + b.messages + cc.messages;
    let total = c.stats().total_messages();
    assert!(
        tagged <= total,
        "tagged {tagged} must not exceed total {total}"
    );
    for out in [&a, &b, &cc] {
        assert!(out.messages < total, "one query charged the whole system");
    }
}

#[test]
fn repeated_composite_query_skips_probe_phase() {
    let mut c = testbed(MoaraConfig::default(), 22);
    let q = "SELECT count(*) WHERE a = true AND c = true";
    // First query must probe (two candidate covers, no cache).
    let first = c.query(NodeId(0), q).unwrap();
    assert_eq!(count_of(&first), 6); // multiples of 10
    assert!(c.stats().counter("size_probes") > 0);
    // Let pruning/statuses settle, then measure a steady-state repeat.
    let _ = c.query(NodeId(0), q).unwrap();
    let probes_before = c.stats().counter("size_probes");
    let repeat = c.query(NodeId(0), q).unwrap();
    assert_eq!(count_of(&repeat), 6);
    assert_eq!(
        c.stats().counter("size_probes"),
        probes_before,
        "a warm repeat must not send probes"
    );
    assert!(c.stats().counter("probe_cache_hits") > 0);
    assert!(
        repeat.messages < first.messages,
        "cached repeat ({}) should cost less than the cold query ({})",
        repeat.messages,
        first.messages
    );
}

#[test]
fn probe_cache_off_reprobes_every_query() {
    let cfg = MoaraConfig::default().with_probe_cache(ProbeCachePolicy::Off);
    let mut c = testbed(cfg, 23);
    let q = "SELECT count(*) WHERE a = true AND c = true";
    let _ = c.query(NodeId(0), q).unwrap();
    let probes_before = c.stats().counter("size_probes");
    let _ = c.query(NodeId(0), q).unwrap();
    assert!(
        c.stats().counter("size_probes") > probes_before,
        "with the cache off every composite query re-probes"
    );
    assert_eq!(c.stats().counter("probe_cache_hits"), 0);
}

#[test]
fn local_churn_invalidates_the_probe_cache() {
    let mut c = testbed(MoaraConfig::default(), 24);
    let q = "SELECT count(*) WHERE a = true AND c = true";
    let _ = c.query(NodeId(0), q).unwrap();
    let _ = c.query(NodeId(0), q).unwrap();
    let probes_before = c.stats().counter("size_probes");
    let epoch_before = c.node(NodeId(0)).probe_cache_epoch();
    // Node 0 (the front-end) leaves group `a`: direct churn evidence.
    c.set_attr(NodeId(0), "a", false);
    c.run_to_quiescence();
    assert!(
        c.node(NodeId(0)).probe_cache_epoch() > epoch_before,
        "local churn must bump the cache epoch"
    );
    let out = c.query(NodeId(0), q).unwrap();
    assert!(
        c.stats().counter("size_probes") > probes_before,
        "the query after churn must re-probe"
    );
    assert_eq!(count_of(&out), 5, "node 0 left the intersection");
}

#[test]
fn concurrent_identical_queries_share_one_probe() {
    let mut c = testbed(MoaraConfig::default(), 25);
    let parse = |t: &str| moara::parse_query(t).unwrap();
    let q = "SELECT count(*) WHERE a = true AND c = true";
    // Submit twice back-to-back from one front-end: the second query's
    // probes coalesce onto the first's in-flight ones.
    let f1 = c.submit(NodeId(3), parse(q));
    let f2 = c.submit(NodeId(3), parse(q));
    c.run_to_quiescence();
    let o1 = c.take_outcome(NodeId(3), f1).expect("first finished");
    let o2 = c.take_outcome(NodeId(3), f2).expect("second finished");
    assert_eq!(count_of(&o1), 6);
    assert_eq!(count_of(&o2), 6);
    assert!(
        c.stats().counter("probes_coalesced") > 0,
        "the second query should piggyback on in-flight probes"
    );
}

#[test]
fn union_fanout_batches_and_stays_exact() {
    // Unions have a single forced cover (no probes — the plan has one
    // candidate), so the fan-out to all group trees leaves immediately
    // and same-next-hop sub-queries share frames. Eight group trees from
    // one front-end guarantee shared first hops on a 60-node overlay.
    let mut c = Cluster::builder().nodes(60).seed(26).build();
    for i in 0..60u32 {
        for g in 0..8u32 {
            c.set_attr(NodeId(i), &format!("g{g}"), i % 8 == g);
        }
    }
    c.run_to_quiescence();
    c.stats_mut().reset();
    let union: Vec<String> = (0..8).map(|g| format!("g{g} = true")).collect();
    let out = c
        .query(
            NodeId(0),
            &format!("SELECT count(*) WHERE {}", union.join(" OR ")),
        )
        .unwrap();
    assert_eq!(count_of(&out), 60, "the eight groups partition all nodes");
    assert_eq!(
        c.stats().counter("size_probes"),
        0,
        "a pure union has one candidate cover; probing it is waste"
    );
    assert!(
        c.stats().counter("batched_fanout") > 0,
        "eight sub-queries from one front should share at least one hop"
    );
}

/// Regression: a probe whose reply never comes must not absorb all later
/// traffic. Once the in-flight probe is older than the probe timeout,
/// the next query re-sends it instead of coalescing forever.
#[test]
fn aged_probe_is_resent_instead_of_coalesced_forever() {
    use moara::simnet::{latency::Constant, SimDuration};
    // One-way latency far above the 3s probe timeout stands in for a
    // lost reply: no probe can be answered before the waiters time out.
    let mut c = Cluster::builder()
        .nodes(16)
        .seed(28)
        .latency(Constant::from_millis(10_000))
        .build();
    for i in 0..16u32 {
        c.set_attr(NodeId(i), "a", i % 2 == 0);
        c.set_attr(NodeId(i), "c", i % 4 == 0);
    }
    c.run_to_quiescence();
    c.stats_mut().reset();

    let parse = |t: &str| moara::parse_query(t).unwrap();
    let q = "SELECT count(*) WHERE a = true AND c = true";
    let _f1 = c.submit(NodeId(0), parse(q));
    let probes_first = c.stats().counter("size_probes");
    assert!(probes_first > 0);

    // One second in: the probe is still believed in flight → coalesce.
    c.run_for(SimDuration::from_secs(1));
    let _f2 = c.submit(NodeId(0), parse(q));
    assert_eq!(c.stats().counter("size_probes"), probes_first);
    assert!(c.stats().counter("probes_coalesced") > 0);

    // 3.5 seconds in: the first front has timed out, the second still
    // waits, and the probe has aged past the probe timeout — the next
    // query must re-send rather than piggyback on a dead probe.
    c.run_for(SimDuration::from_millis(2_500));
    let _f3 = c.submit(NodeId(0), parse(q));
    assert!(
        c.stats().counter("size_probes") > probes_first,
        "an aged in-flight probe must be re-sent"
    );
    c.run_to_quiescence();
}

#[test]
fn global_and_single_group_queries_bypass_the_scheduler() {
    let mut c = testbed(MoaraConfig::default(), 27);
    let g = c.query(NodeId(0), "SELECT count(*)").unwrap();
    assert_eq!(count_of(&g), 60);
    let s = c
        .query(NodeId(0), "SELECT count(*) WHERE b = true")
        .unwrap();
    assert_eq!(count_of(&s), 20);
    assert_eq!(c.stats().counter("size_probes"), 0);
    assert_eq!(c.stats().counter("probe_cache_hits"), 0);
}

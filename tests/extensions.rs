//! End-to-end coverage of the features this reproduction adds beyond the
//! paper's evaluated configuration: explicit `NOT` in the query language
//! and the histogram aggregate (see DESIGN.md §5).

use moara::aggregation::AggKind;
use moara::{AggResult, Cluster, NodeId, Query, SimplePredicate, Value};
use moara_query::{parse_predicate, CmpOp, Predicate};

fn testbed(seed: u64) -> Cluster {
    let mut c = Cluster::builder().nodes(50).seed(seed).build();
    for i in 0..50u32 {
        c.set_attr(NodeId(i), "x", i64::from(i)); // 0..49
        c.set_attr(NodeId(i), "svc", i % 5 == 0); // 10 nodes
    }
    c.run_to_quiescence();
    c
}

#[test]
fn not_queries_resolve_end_to_end() {
    let mut c = testbed(1);
    // NOT (x < 40) ≡ x >= 40 → 10 nodes.
    let out = c
        .query(NodeId(0), "SELECT count(*) WHERE NOT x < 40")
        .unwrap();
    assert_eq!(out.result, AggResult::Value(Value::Int(10)));
    // De Morgan through the planner: NOT (svc = true OR x >= 10)
    // ≡ svc != true AND x < 10 → nodes 1..9 except node 5 → 8.
    let out = c
        .query(
            NodeId(3),
            "SELECT count(*) WHERE NOT (svc = true OR x >= 10)",
        )
        .unwrap();
    assert_eq!(out.result, AggResult::Value(Value::Int(8)));
}

#[test]
fn not_agrees_with_manual_rewrite() {
    let mut c = testbed(2);
    let sugar = c
        .query(
            NodeId(0),
            "SELECT count(*) WHERE NOT (x < 20 AND svc = false)",
        )
        .unwrap();
    let manual = c
        .query(NodeId(0), "SELECT count(*) WHERE x >= 20 OR svc != false")
        .unwrap();
    assert_eq!(sugar.result, manual.result);
    // And the parsed predicates are literally identical.
    assert_eq!(
        parse_predicate("NOT (x < 20 AND svc = false)").unwrap(),
        parse_predicate("x >= 20 OR svc != false").unwrap(),
    );
}

#[test]
fn histogram_aggregates_over_a_group() {
    let mut c = testbed(3);
    // Histogram of x over [0, 50) in 5 buckets, across the whole system.
    let q = Query::new(
        Some("x".into()),
        AggKind::Histogram {
            lo: 0,
            hi: 50,
            buckets: 5,
        },
        Predicate::All,
    );
    let out = c.query_parsed(NodeId(0), q);
    match out.result {
        AggResult::Histogram { lo, hi, counts } => {
            assert_eq!((lo, hi), (0, 50));
            // 0 underflow, 10 per decade bucket, 0 overflow.
            assert_eq!(counts, vec![0, 10, 10, 10, 10, 10, 0]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn histogram_respects_group_predicates() {
    let mut c = testbed(4);
    // Only svc nodes (x ∈ {0,5,...,45}) in 2 buckets over [0,50).
    let q = Query::new(
        Some("x".into()),
        AggKind::Histogram {
            lo: 0,
            hi: 50,
            buckets: 2,
        },
        Predicate::Atom(SimplePredicate::new("svc", CmpOp::Eq, true)),
    );
    let out = c.query_parsed(NodeId(7), q);
    match out.result {
        AggResult::Histogram { counts, .. } => {
            assert_eq!(counts, vec![0, 5, 5, 0]); // 0,5,10,15,20 | 25..45
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn histogram_over_empty_group_is_all_zero() {
    let mut c = testbed(5);
    let q = Query::new(
        Some("x".into()),
        AggKind::Histogram {
            lo: 0,
            hi: 10,
            buckets: 2,
        },
        Predicate::Atom(SimplePredicate::new("x", CmpOp::Gt, 10_000i64)),
    );
    let out = c.query_parsed(NodeId(0), q);
    match out.result {
        AggResult::Histogram { counts, .. } => assert_eq!(counts, vec![0; 4]),
        other => panic!("unexpected {other:?}"),
    }
}

//! End-to-end behaviour of the separate query plane (paper Section 5):
//! with threshold > 1, steady-state query cost is O(group size) and
//! independent of system size; with threshold = 1 interior nodes on the
//! path to members keep relaying queries.

use moara::{AggResult, Cluster, MoaraConfig, NodeId, Value};

fn converged_cost(n: usize, group: usize, threshold: usize, seed: u64) -> (u64, i64) {
    let cfg = MoaraConfig::default().with_threshold(threshold);
    let mut c = Cluster::builder().nodes(n).seed(seed).config(cfg).build();
    for i in 0..n as u32 {
        c.set_attr(NodeId(i), "A", i64::from((i as usize) < group));
    }
    c.run_to_quiescence();
    let q = "SELECT count(*) WHERE A = 1";
    // Converge pruning + query plane.
    for _ in 0..6 {
        c.query(NodeId((n - 1) as u32), q).unwrap();
    }
    let out = c.query(NodeId((n - 1) as u32), q).unwrap();
    let count = match out.result {
        AggResult::Value(Value::Int(x)) => x,
        ref other => panic!("unexpected {other:?}"),
    };
    (out.messages, count)
}

#[test]
fn sqp_beats_plain_pruned_tree_for_small_groups() {
    let (t1, c1) = converged_cost(512, 8, 1, 9);
    let (t2, c2) = converged_cost(512, 8, 2, 9);
    assert_eq!(c1, 8);
    assert_eq!(c2, 8);
    assert!(
        t2 < t1,
        "threshold 2 ({t2} msgs) must beat threshold 1 ({t1} msgs)"
    );
}

#[test]
fn sqp_cost_is_independent_of_system_size() {
    // Same group size in systems 4x apart: with the query plane the
    // steady-state cost should stay within a small factor.
    let (small, _) = converged_cost(256, 8, 2, 10);
    let (large, _) = converged_cost(1024, 8, 2, 10);
    assert!(
        (large as f64) < (small as f64) * 1.8,
        "query plane cost should not scale with N: {small} -> {large}"
    );
}

#[test]
fn plain_tree_cost_grows_with_system_size() {
    let (small, _) = converged_cost(256, 8, 1, 11);
    let (large, _) = converged_cost(4096, 8, 1, 11);
    assert!(
        large > small,
        "without the query plane interior relays grow with N: {small} -> {large}"
    );
}

#[test]
fn sqp_cost_tracks_group_size() {
    let (g8, _) = converged_cost(512, 8, 2, 12);
    let (g64, _) = converged_cost(512, 64, 2, 12);
    assert!(g64 > g8 * 3, "cost should grow ~linearly with group size");
    assert!(g64 < g8 * 20, "…but not explode: {g8} -> {g64}");
}

#[test]
fn high_threshold_matches_group_lower_bound() {
    // threshold 8 with group 8: everyone satisfying is reachable in one
    // hop from the root region; cost approaches 2m + routing.
    let (msgs, count) = converged_cost(512, 8, 8, 13);
    assert_eq!(count, 8);
    assert!(
        msgs <= 2 * 8 + 12,
        "near-optimal query plane cost expected, got {msgs}"
    );
}

//! All four systems — Moara, Global, Always-Update, and the centralized
//! aggregator — must return identical answers on identical data; they only
//! differ in cost. This pins the baselines used by the figure harnesses to
//! the same semantics.

use moara::baselines::{always_update_cluster, global_cluster, CentralCluster};
use moara::{AggResult, Cluster, NodeId, Value};
use moara_query::{CmpOp, SimplePredicate};
use moara_simnet::latency::Constant;

const N: usize = 36;

fn populate_moara(c: &mut Cluster) {
    for i in 0..N as u32 {
        c.set_attr(NodeId(i), "A", i64::from(i % 3 == 0));
        c.set_attr(NodeId(i), "load", f64::from(i % 10));
    }
    c.run_to_quiescence();
}

fn populate_central(c: &mut CentralCluster) {
    for i in 0..N as u32 {
        c.set_attr(NodeId(i), "A", i64::from(i % 3 == 0));
        c.set_attr(NodeId(i), "load", f64::from(i % 10));
    }
}

#[test]
fn all_systems_agree_on_all_aggregates() {
    let queries = [
        "SELECT count(*) WHERE A = 1",
        "SELECT sum(load) WHERE A = 1",
        "SELECT avg(load) WHERE A = 1",
        "SELECT max(load) WHERE A = 1",
        "SELECT min(load) WHERE A = 1",
        "SELECT count(*)",
    ];
    let mut moara = Cluster::builder().nodes(N).seed(11).build();
    let mut global = global_cluster(N, 11, Constant::from_millis(1));
    let mut always = always_update_cluster(N, 11, Constant::from_millis(1));
    let mut central = CentralCluster::new(N, 11, Constant::from_millis(1));
    populate_moara(&mut moara);
    populate_moara(&mut global);
    populate_moara(&mut always);
    populate_central(&mut central);
    always.register_predicate(&SimplePredicate::new("A", CmpOp::Eq, 1i64));

    for q in queries {
        let m = moara.query(NodeId(0), q).unwrap();
        let g = global.query(NodeId(0), q).unwrap();
        let a = always.query(NodeId(0), q).unwrap();
        let c = central.query(q).unwrap();
        // min/max carry node attribution which differs across systems
        // (NodeRef spaces differ); compare the values.
        let val = |r: &AggResult| match r {
            AggResult::Value(v) | AggResult::Attributed(v, _) => Some(v.clone()),
            AggResult::Empty => None,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(val(&m.result), val(&g.result), "moara vs global on {q}");
        assert_eq!(
            val(&m.result),
            val(&a.result),
            "moara vs always-update on {q}"
        );
        assert_eq!(val(&m.result), val(&c.result), "moara vs central on {q}");
    }
}

#[test]
fn costs_differ_as_designed() {
    let mut moara = Cluster::builder().nodes(N).seed(12).build();
    let mut global = global_cluster(N, 12, Constant::from_millis(1));
    populate_moara(&mut moara);
    populate_moara(&mut global);
    let q = "SELECT count(*) WHERE A = 1";
    // Converge Moara's tree.
    for _ in 0..4 {
        moara.query(NodeId(0), q).unwrap();
        global.query(NodeId(0), q).unwrap();
    }
    let m = moara.query(NodeId(0), q).unwrap();
    let g = global.query(NodeId(0), q).unwrap();
    assert_eq!(m.result, g.result);
    assert!(
        m.messages < g.messages,
        "group tree ({}) must beat global broadcast ({})",
        m.messages,
        g.messages
    );
}

#[test]
fn always_update_tracks_churn_without_queries() {
    let mut always = always_update_cluster(N, 13, Constant::from_millis(1));
    populate_moara(&mut always);
    let pred = SimplePredicate::new("A", CmpOp::Eq, 1i64);
    always.register_predicate(&pred);
    // Without any queries, flip members; the maintained tree follows.
    for i in 0..6u32 {
        always.set_attr(NodeId(i * 3), "A", 0i64);
    }
    always.run_to_quiescence();
    let out = always
        .query(NodeId(1), "SELECT count(*) WHERE A = 1")
        .unwrap();
    let truth = always.group_members(&pred).len() as i64;
    assert_eq!(out.result, AggResult::Value(Value::Int(truth)));
}

#[test]
fn central_message_cost_is_always_two_n() {
    let mut central = CentralCluster::new(N, 14, Constant::from_millis(1));
    populate_central(&mut central);
    for q in ["SELECT count(*) WHERE A = 1", "SELECT count(*) WHERE A = 0"] {
        central.stats_mut().reset();
        central.query(q).unwrap();
        assert_eq!(
            central.stats().total_messages(),
            2 * N as u64,
            "central always asks everyone"
        );
    }
}

//! Garbage collection of per-predicate tree state (paper Section 4's
//! sketched policies): eviction must reduce tracked state without ever
//! affecting answer correctness.

use moara::core::GcPolicy;
use moara::simnet::SimDuration;
use moara::{AggResult, Cluster, MoaraConfig, NodeId, Value};

fn populated(cfg: MoaraConfig, seed: u64) -> Cluster {
    let n = 30;
    let mut c = Cluster::builder().nodes(n).seed(seed).config(cfg).build();
    for i in 0..n as u32 {
        c.set_attr(NodeId(i), "a", i % 2 == 0);
        c.set_attr(NodeId(i), "b", i % 3 == 0);
        c.set_attr(NodeId(i), "c", i % 5 == 0);
        c.set_attr(NodeId(i), "d", i % 7 == 0);
    }
    c.run_to_quiescence();
    c
}

fn total_tracked(c: &Cluster) -> usize {
    c.node_ids()
        .iter()
        .map(|&n| c.node(n).tracked_predicates())
        .sum()
}

#[test]
fn keep_most_recent_bounds_state() {
    let cfg = MoaraConfig::default().with_gc(GcPolicy::KeepMostRecent(2));
    let mut c = populated(cfg, 1);
    // Query four different predicates repeatedly.
    for _ in 0..3 {
        for attr in ["a", "b", "c", "d"] {
            let out = c
                .query(NodeId(0), &format!("SELECT count(*) WHERE {attr} = true"))
                .unwrap();
            assert!(matches!(out.result, AggResult::Value(Value::Int(_))));
        }
    }
    // Let adaptation settle, then confirm state is bounded: without GC the
    // hot path would track 4 predicates per node.
    let never = {
        let cfg = MoaraConfig::default();
        let mut c2 = populated(cfg, 1);
        for _ in 0..3 {
            for attr in ["a", "b", "c", "d"] {
                c2.query(NodeId(0), &format!("SELECT count(*) WHERE {attr} = true"))
                    .unwrap();
            }
        }
        total_tracked(&c2)
    };
    let bounded = total_tracked(&c);
    assert!(
        bounded < never,
        "GC should keep fewer states ({bounded}) than Never ({never})"
    );
}

#[test]
fn idle_timeout_clears_cold_predicates_and_answers_stay_exact() {
    let cfg = MoaraConfig::default().with_gc(GcPolicy::IdleTimeout(SimDuration::from_secs(30)));
    let mut c = populated(cfg, 2);
    let q_a = "SELECT count(*) WHERE a = true";
    let q_b = "SELECT count(*) WHERE b = true";
    assert_eq!(c.query(NodeId(0), q_a).unwrap().result.to_string(), "15");
    assert_eq!(c.query(NodeId(0), q_b).unwrap().result.to_string(), "10");
    // Keep predicate `a` hot while `b` goes cold past the idle timeout.
    for _ in 0..12 {
        c.run_for(SimDuration::from_secs(10));
        c.query(NodeId(0), q_a).unwrap();
    }
    // Correctness after GC: the cold tree re-forms transparently.
    assert_eq!(c.query(NodeId(0), q_b).unwrap().result.to_string(), "10");
    assert_eq!(c.query(NodeId(0), q_a).unwrap().result.to_string(), "15");
}

#[test]
fn gc_under_churn_preserves_completeness() {
    let cfg = MoaraConfig::default().with_gc(GcPolicy::KeepMostRecent(1));
    let mut c = populated(cfg, 3);
    for round in 0..6u32 {
        // Alternate predicates so GC keeps evicting, while churning `a`.
        for i in 0..30u32 {
            if (i + round) % 6 == 0 {
                let cur = c.node(NodeId(i)).store.get("a") == Some(&Value::Bool(true));
                c.set_attr(NodeId(i), "a", !cur);
            }
        }
        let truth_a = c
            .group_members(&moara::SimplePredicate::new(
                "a",
                moara_query::CmpOp::Eq,
                true,
            ))
            .len() as i64;
        let out = c
            .query(NodeId(1), "SELECT count(*) WHERE a = true")
            .unwrap();
        assert_eq!(
            out.result,
            AggResult::Value(Value::Int(truth_a)),
            "round {round}"
        );
        let out = c
            .query(NodeId(1), "SELECT count(*) WHERE b = true")
            .unwrap();
        assert_eq!(
            out.result,
            AggResult::Value(Value::Int(10)),
            "round {round}"
        );
    }
}

//! Composite-query behaviour across crates: planning, cover selection,
//! duplicate suppression, and correctness of nested union/intersection
//! predicates (paper Section 6).

use moara::{AggResult, Cluster, MoaraConfig, NodeId, Value};

fn count_of(out: &moara::QueryOutcome) -> i64 {
    match &out.result {
        AggResult::Value(Value::Int(x)) => *x,
        AggResult::Empty => 0,
        other => panic!("unexpected result {other:?}"),
    }
}

/// 60 nodes with three overlapping boolean groups and a numeric attribute.
fn testbed(seed: u64) -> Cluster {
    let mut c = Cluster::builder().nodes(60).seed(seed).build();
    for i in 0..60u32 {
        let node = NodeId(i);
        c.set_attr(node, "a", i % 2 == 0); // 30 nodes
        c.set_attr(node, "b", i % 3 == 0); // 20 nodes
        c.set_attr(node, "c", i % 5 == 0); // 12 nodes
        c.set_attr(node, "x", i64::from(i)); // 0..59
    }
    c.run_to_quiescence();
    c.stats_mut().reset();
    c
}

#[test]
fn intersection_counts_exactly() {
    let mut c = testbed(1);
    // a ∧ b: multiples of 6 → 10 nodes.
    let out = c
        .query(NodeId(0), "SELECT count(*) WHERE a = true AND b = true")
        .unwrap();
    assert_eq!(count_of(&out), 10);
}

#[test]
fn union_counts_exactly_with_dedup() {
    let mut c = testbed(2);
    // a ∨ b: |a| + |b| - |a∧b| = 30 + 20 - 10 = 40. Nodes in both groups
    // must contribute once (Section 6.2 duplicate suppression).
    let out = c
        .query(NodeId(3), "SELECT count(*) WHERE a = true OR b = true")
        .unwrap();
    assert_eq!(count_of(&out), 40);
}

#[test]
fn paper_figure6_nested_expression() {
    let mut c = testbed(3);
    // ((a or b) and (a or c)) or x < 5  ≡  (a ∨ (b ∧ c)) ∨ x<5.
    #[allow(clippy::nonminimal_bool)] // mirrors the query predicate's shape
    let truth = (0..60u32)
        .filter(|i| {
            let (a, b, cc) = (i % 2 == 0, i % 3 == 0, i % 5 == 0);
            ((a || b) && (a || cc)) || *i < 5
        })
        .count() as i64;
    let out = c
        .query(
            NodeId(0),
            "SELECT count(*) WHERE ((a = true OR b = true) AND (a = true OR c = true)) OR x < 5",
        )
        .unwrap();
    assert_eq!(count_of(&out), truth);
}

#[test]
fn intersection_contacts_single_group() {
    let mut c = testbed(4);
    // Warm both trees so size probes see real costs.
    c.query(NodeId(0), "SELECT count(*) WHERE a = true")
        .unwrap();
    c.query(NodeId(0), "SELECT count(*) WHERE c = true")
        .unwrap();
    c.query(NodeId(0), "SELECT count(*) WHERE a = true AND c = true")
        .unwrap();
    let out = c
        .query(NodeId(0), "SELECT count(*) WHERE a = true AND c = true")
        .unwrap();
    assert_eq!(count_of(&out), 6); // multiples of 10
                                   // The intersection should cost roughly one (small) group's tree, not
                                   // both: well under the a-tree cost of ~2×30.
    let union = c
        .query(NodeId(0), "SELECT count(*) WHERE a = true OR c = true")
        .unwrap();
    assert!(
        out.messages < union.messages,
        "intersection ({}) should be cheaper than union ({})",
        out.messages,
        union.messages
    );
}

#[test]
fn semantic_inclusion_collapses_union() {
    let mut c = testbed(5);
    // x<10 ∪ x<30 ≡ x<30: planner queries one group; result exact.
    let out = c
        .query(NodeId(2), "SELECT count(*) WHERE x < 10 OR x < 30")
        .unwrap();
    assert_eq!(count_of(&out), 30);
}

#[test]
fn semantic_disjoint_intersection_is_free() {
    let mut c = testbed(6);
    let out = c
        .query(NodeId(2), "SELECT count(*) WHERE x < 10 AND x > 50")
        .unwrap();
    assert_eq!(count_of(&out), 0);
    assert_eq!(out.messages, 0, "unsatisfiable: answered locally");
}

#[test]
fn complement_not_rule() {
    let mut c = testbed(7);
    // (a or x<30) and (x>=30) — x<30 is not(x>=30), so this is a ∧ x≥30.
    let truth = (0..60).filter(|i| i % 2 == 0 && *i >= 30).count() as i64;
    let out = c
        .query(
            NodeId(1),
            "SELECT count(*) WHERE (a = true OR x < 30) AND x >= 30",
        )
        .unwrap();
    assert_eq!(count_of(&out), truth);
}

#[test]
fn aggregates_over_composite_groups() {
    let mut c = testbed(8);
    // avg(x) over a ∧ b = multiples of 6: (0+6+...+54)/10 = 27.
    let out = c
        .query(NodeId(0), "SELECT avg(x) WHERE a = true AND b = true")
        .unwrap();
    assert_eq!(out.result.as_f64(), Some(27.0));
    // max(x) over b ∨ c.
    let out = c
        .query(NodeId(0), "SELECT max(x) WHERE b = true OR c = true")
        .unwrap();
    assert_eq!(out.result.as_f64(), Some(57.0)); // 57 = largest mult of 3
}

#[test]
fn probes_vs_structural_planning_agree_on_results() {
    let mut with_probes = testbed(9);
    let cfg = MoaraConfig {
        use_size_probes: false,
        ..MoaraConfig::default()
    };
    let mut structural = Cluster::builder().nodes(60).seed(9).config(cfg).build();
    for i in 0..60u32 {
        let node = NodeId(i);
        structural.set_attr(node, "a", i % 2 == 0);
        structural.set_attr(node, "b", i % 3 == 0);
        structural.set_attr(node, "c", i % 5 == 0);
        structural.set_attr(node, "x", i64::from(i));
    }
    structural.run_to_quiescence();
    for q in [
        "SELECT count(*) WHERE a = true AND b = true",
        "SELECT count(*) WHERE a = true OR (b = true AND c = true)",
        "SELECT count(*) WHERE (a = true OR b = true) AND x < 40",
    ] {
        let p = with_probes.query(NodeId(0), q).unwrap();
        let s = structural.query(NodeId(0), q).unwrap();
        assert_eq!(p.result, s.result, "query {q}");
    }
}

#[test]
fn repeated_composite_queries_remain_consistent_under_churn() {
    let mut c = testbed(10);
    for round in 0..8u32 {
        // churn group b
        for i in 0..60u32 {
            if (i + round) % 9 == 0 {
                let cur = c.node(NodeId(i)).store.get("b") == Some(&Value::Bool(true));
                c.set_attr(NodeId(i), "b", !cur);
            }
        }
        c.run_to_quiescence();
        let truth = (0..60u32)
            .filter(|&i| {
                let b = c.node(NodeId(i)).store.get("b") == Some(&Value::Bool(true));
                let a = i % 2 == 0;
                a || b
            })
            .count() as i64;
        let out = c
            .query(NodeId(0), "SELECT count(*) WHERE a = true OR b = true")
            .unwrap();
        assert_eq!(count_of(&out), truth, "round {round}");
    }
}

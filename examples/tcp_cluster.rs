//! Three in-process Moara nodes over real TCP loopback sockets.
//!
//! Each node binds its own listener on `127.0.0.1`; every protocol
//! message — status updates, routed sub-queries, aggregate replies —
//! crosses the kernel as a length-prefixed `moara-wire` frame. The same
//! cluster API otherwise drives the deterministic simulator, so this is
//! the transport quickstart: swap `build()` for `build_tcp(...)` and the
//! protocol runs on a real network path. (For one-node-per-process
//! clusters, see the `moarad` daemon in `crates/daemon`.)
//!
//! Run with: `cargo run --example tcp_cluster`

use moara::core::Cluster;
use moara::simnet::NodeId;
use moara_transport::TcpConfig;

fn main() {
    let mut cluster = Cluster::builder()
        .nodes(3)
        .seed(42)
        .build_tcp(TcpConfig::seeded(42));

    println!("3-node Moara cluster over TCP loopback:");
    for i in 0..3u32 {
        let addr = cluster
            .transport()
            .local_addr(NodeId(i))
            .expect("every node has a listener");
        println!("  n{i} listening on {addr}");
    }

    // The quickstart group: ServiceX runs on nodes 0 and 2.
    cluster.set_attr(NodeId(0), "ServiceX", true);
    cluster.set_attr(NodeId(1), "ServiceX", false);
    cluster.set_attr(NodeId(2), "ServiceX", true);
    cluster.run_to_quiescence();
    cluster.stats_mut().reset();

    let query = "SELECT count(*) WHERE ServiceX = true";
    let out = cluster.query(NodeId(1), query).unwrap();
    println!("query:    {query}");
    println!(
        "answer:   {} (complete: {}, {} protocol messages over sockets, {:.1} ms)",
        out.result,
        out.complete,
        out.messages,
        out.latency().as_secs_f64() * 1e3,
    );
    assert_eq!(out.result.to_string(), "2");

    let bytes: u64 = (0..3u32)
        .map(|i| cluster.stats().bytes_sent_by(NodeId(i)))
        .sum();
    println!("bytes on the wire: {bytes}");
}

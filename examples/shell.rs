//! The Moara front-end's interactive shell (paper Section 7:
//! "Through the interactive shell, a user can submit SQL-like aggregation
//! queries to Moara").
//!
//! Spins up a simulated 200-node deployment with a mix of attributes and
//! reads queries from stdin. Type `help` for the cheat sheet, `quit` to
//! exit.
//!
//! ```sh
//! cargo run --release --example shell
//! ```

use std::io::{self, BufRead, Write};

use moara::{Cluster, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 200usize;
    let mut rng = StdRng::seed_from_u64(1);
    let mut cluster = Cluster::builder()
        .nodes(n)
        .seed(1)
        .latency(moara::simnet::latency::Lan::emulab())
        .build();
    for i in 0..n as u32 {
        let node = NodeId(i);
        cluster.set_attr(node, "CPU-Util", Value::Float(rng.gen_range(0.0..100.0)));
        cluster.set_attr(node, "Mem-Free", Value::Float(rng.gen_range(0.5..64.0)));
        cluster.set_attr(node, "ServiceX", rng.gen_bool(0.3));
        cluster.set_attr(node, "Apache", rng.gen_bool(0.5));
        cluster.set_attr(
            node,
            "OS",
            Value::str(if rng.gen_bool(0.8) { "linux" } else { "bsd" }),
        );
    }
    println!("moara shell — {n} simulated nodes. `help` for examples, `quit` to exit.");
    let stdin = io::stdin();
    loop {
        print!("moara> ");
        io::stdout().flush().expect("flush stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        match line {
            "" => continue,
            "quit" | "exit" | "q" => break,
            "help" => {
                println!("attributes: CPU-Util, Mem-Free, ServiceX, Apache, OS");
                println!("examples:");
                println!("  SELECT count(*) WHERE ServiceX = true");
                println!("  SELECT avg(CPU-Util) WHERE Apache = true AND OS = 'linux'");
                println!("  SELECT top(Mem-Free, 3) WHERE CPU-Util < 50");
                println!("  (CPU-Util, MAX, ServiceX = true)");
                continue;
            }
            _ => {}
        }
        match cluster.query(NodeId(0), line) {
            Ok(out) => println!(
                "{}   [{} msgs, {}, complete: {}]",
                out.result,
                out.messages,
                out.latency(),
                out.complete
            ),
            Err(e) => println!("error: {e}"),
        }
    }
}

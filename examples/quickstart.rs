//! Quickstart: stand up a simulated Moara deployment, populate attributes,
//! and run the kinds of queries the paper opens with.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use moara::{Cluster, NodeId, Value};

fn main() {
    // A 64-node deployment on an Emulab-like LAN.
    let mut cluster = Cluster::builder()
        .nodes(64)
        .seed(2008)
        .latency(moara::simnet::latency::Lan::emulab())
        .build();

    // Each machine's Moara agent populates (attribute, value) tuples.
    for i in 0..64u32 {
        let node = NodeId(i);
        cluster.set_attr(node, "CPU-Util", Value::Float(f64::from(i % 100)));
        cluster.set_attr(node, "Load", Value::Float(f64::from((i * 7) % 50)));
        cluster.set_attr(node, "ServiceX", i % 4 == 0);
        cluster.set_attr(node, "Apache", i % 2 == 0);
    }

    // --- Simple group query -------------------------------------------
    let out = cluster
        .query(NodeId(0), "SELECT count(*) WHERE ServiceX = true")
        .expect("valid query");
    println!(
        "machines running ServiceX: {}  ({} messages, {} latency)",
        out.result,
        out.messages,
        out.latency()
    );

    // --- The paper's running example -----------------------------------
    // "find top-3 loaded hosts where (ServiceX = true) and (Apache = true)"
    let out = cluster
        .query(
            NodeId(0),
            "SELECT top(Load, 3) WHERE ServiceX = true AND Apache = true",
        )
        .expect("valid query");
    println!("top-3 loaded ServiceX+Apache hosts: {}", out.result);

    // --- Triple-form syntax, aggregate over a dynamic group -------------
    let out = cluster
        .query(NodeId(5), "(CPU-Util, AVG, CPU-Util < 50)")
        .expect("valid query");
    println!("avg CPU-Util among nodes under 50%: {}", out.result);

    // --- Repeat a query: the group tree prunes and cost drops -----------
    let again = cluster
        .query(NodeId(0), "SELECT count(*) WHERE ServiceX = true")
        .expect("valid query");
    println!(
        "same group query after tree pruning: {} messages (was {})",
        again.messages, out.messages
    );
}

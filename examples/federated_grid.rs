//! Utility-computing / grid scenario with node failures (paper Sections 2
//! and 7): batch jobs churn machines in and out of groups, and machines
//! fail outright while queries run.
//!
//! Mirrors the HP rendering-farm trace of Figure 2(b): jobs acquire and
//! release machines in bursts; operators ask one-shot questions
//! throughout, and the overlay repairs itself around failures.
//!
//! ```sh
//! cargo run --release --example federated_grid
//! ```

use moara::simnet::SimDuration;
use moara::{Cluster, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 300usize;
    let mut rng = StdRng::seed_from_u64(77);
    let mut grid = Cluster::builder()
        .nodes(n)
        .seed(77)
        .latency(moara::simnet::latency::Lan::emulab())
        .build();

    for i in 0..n as u32 {
        let node = NodeId(i);
        grid.set_attr(node, "job", Value::str("idle"));
        grid.set_attr(node, "frames-done", Value::Int(0));
        grid.set_attr(node, "mem-free-gb", Value::Float(rng.gen_range(2.0..64.0)));
    }
    let front = NodeId(2);

    // Job 0 ramps up: grabs 120 machines in bursts of 30.
    println!("== job-0 ramp-up ==");
    for burst in 0..4 {
        for i in 0..30u32 {
            let node = NodeId(burst * 30 + i);
            grid.set_attr(node, "job", Value::str("render-0"));
        }
        grid.run_for(SimDuration::from_secs(1));
        let out = grid
            .query(front, "SELECT count(*) WHERE job = 'render-0'")
            .expect("valid query");
        println!("after burst {burst}: {} machines on job-0", out.result);
    }

    // Job 1 arrives and steals some machines; progress accumulates.
    for i in 90..150u32 {
        grid.set_attr(NodeId(i), "job", Value::str("render-1"));
    }
    for i in 0..150u32 {
        grid.set_attr(NodeId(i), "frames-done", Value::Int(i64::from(i % 40)));
    }
    let out = grid
        .query(
            front,
            "SELECT sum(frames-done) WHERE job = 'render-0' OR job = 'render-1'",
        )
        .expect("valid query");
    println!("frames done across both jobs: {}", out.result);

    // Machines fail mid-run: the DHT repairs, trees re-form, and queries
    // keep answering with the surviving members.
    println!("\n== failing 10 job-0 machines ==");
    for i in 0..10u32 {
        grid.fail_node(NodeId(i * 3));
    }
    let out = grid
        .query(front, "SELECT count(*) WHERE job = 'render-0'")
        .expect("valid query");
    println!(
        "job-0 members visible after failures: {} (complete: {})",
        out.result, out.complete
    );

    // Capacity planning: find memory for a new job among idle machines.
    let out = grid
        .query(
            front,
            "SELECT top(mem-free-gb, 3) WHERE job = 'idle' AND mem-free-gb >= 32",
        )
        .expect("valid query");
    println!("best idle machines for the next job: {}", out.result);

    // Job 0 finishes: all members released at once (the Figure 2(b)
    // cliff); the one-shot query sees the empty group immediately.
    for i in 0..150u32 {
        let node = NodeId(i);
        if grid.is_alive(node) {
            grid.set_attr(node, "job", Value::str("idle"));
        }
    }
    let out = grid
        .query(front, "SELECT count(*) WHERE job = 'render-0'")
        .expect("valid query");
    println!("job-0 members after release: {}", out.result);
}

//! Consolidated-datacenter scenario (paper Section 2, Figure 1).
//!
//! Models a virtualized enterprise: racks and clusters of servers running
//! heterogeneous applications and VMs. Runs the illustrative management
//! queries from the paper's Figure 1 — resource allocation, VM migration,
//! auditing, dashboard, and patch management — against a 500-node
//! deployment.
//!
//! ```sh
//! cargo run --release --example datacenter
//! ```

use moara::{Cluster, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 500u32;
    let mut rng = StdRng::seed_from_u64(11);
    let mut dc = Cluster::builder()
        .nodes(n as usize)
        .seed(11)
        .latency(moara::simnet::latency::Lan::emulab())
        .build();

    // Populate the datacenter: 5 floors × 5 clusters × 4 racks.
    for i in 0..n {
        let node = NodeId(i);
        let floor = format!("F{}", i % 5);
        let cluster_name = format!("C{}", (i / 5) % 5);
        let rack = format!("R{}", (i / 25) % 4);
        dc.set_attr(node, "floor", Value::str(floor));
        dc.set_attr(node, "cluster", Value::str(cluster_name));
        dc.set_attr(node, "rack", Value::str(rack));
        dc.set_attr(node, "utilization", Value::Float(rng.gen_range(0.0..100.0)));
        dc.set_attr(node, "app-X-version", Value::Int(rng.gen_range(1..=3)));
        dc.set_attr(node, "vmware", rng.gen_bool(0.4));
        dc.set_attr(node, "firewall", rng.gen_bool(0.8));
        dc.set_attr(node, "esx", rng.gen_bool(0.3));
        dc.set_attr(node, "sygate", rng.gen_bool(0.5));
        dc.set_attr(node, "service-X", rng.gen_bool(0.25));
        dc.set_attr(
            node,
            "service-X-resptime",
            Value::Float(rng.gen_range(1.0..250.0)),
        );
        dc.set_attr(node, "up", true);
    }

    let front = NodeId(0);
    let queries: &[(&str, &str)] = &[
        // Resource allocation
        (
            "avg utilization for servers on floor F1",
            "SELECT avg(utilization) WHERE floor = 'F1'",
        ),
        (
            "machines in cluster C2",
            "SELECT count(*) WHERE cluster = 'C2'",
        ),
        // VM migration
        (
            "avg utilization of app X v1 or v2",
            "SELECT avg(utilization) WHERE app-X-version = 1 OR app-X-version = 2",
        ),
        (
            "VMs running app X v2 that are VMware-based",
            "SELECT count(*) WHERE app-X-version = 2 AND vmware = true",
        ),
        // Auditing / security
        (
            "machines running a firewall",
            "SELECT count(*) WHERE firewall = true",
        ),
        (
            "VMs running ESX and Sygate firewall",
            "SELECT count(*) WHERE esx = true AND sygate = true",
        ),
        // Dashboard
        (
            "max response time for service X",
            "SELECT max(service-X-resptime) WHERE service-X = true",
        ),
        (
            "machines up and running service X",
            "SELECT count(*) WHERE up = true AND service-X = true",
        ),
        // Patch management
        (
            "version numbers in use for app X (top by version)",
            "SELECT max(app-X-version) WHERE service-X = true",
        ),
        (
            "machines in cluster C0 running app X v3",
            "SELECT count(*) WHERE cluster = 'C0' AND app-X-version = 3",
        ),
    ];

    println!("== Figure 1 management queries over a {n}-node virtualized enterprise ==");
    for (label, text) in queries {
        let out = dc.query(front, text).expect("valid query");
        println!(
            "{label:58} -> {:24} [{} msgs, {}]",
            out.result.to_string(),
            out.messages,
            out.latency()
        );
    }

    // Demonstrate the intersection optimization: floor F1 has ~100
    // machines, cluster C2 ∩ floor F1 is smaller; Moara queries only the
    // cheaper group either way.
    let out = dc
        .query(
            front,
            "SELECT count(*) WHERE floor = 'F1' AND cluster = 'C2'",
        )
        .expect("valid query");
    println!(
        "\nintersection (floor=F1 and cluster=C2): {} via {} messages — \
         Moara sends the query to one group's tree only",
        out.result, out.messages
    );
}

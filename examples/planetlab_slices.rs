//! Federated-infrastructure scenario: PlanetLab slices (paper Section 2).
//!
//! Builds a 200-node wide-area deployment (heavy-tailed latencies, a few
//! straggler hosts) with a realistic slice-size distribution — half of the
//! slices have fewer than 10 nodes, as the paper measured from CoMon data
//! — and runs the paper's example slice queries: a basic query, an
//! intersection query, and a union query.
//!
//! ```sh
//! cargo run --release --example planetlab_slices
//! ```

use moara::{Cluster, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 200usize;
    let seed = 31;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pl = Cluster::builder()
        .nodes(n)
        .seed(seed)
        .latency(moara::simnet::latency::Wan::planetlab(n, seed))
        .build();

    // Assign slices with a heavy-tailed size distribution: slice k gets
    // roughly n / (k+2) of the nodes, so early slices are big and the tail
    // is tiny (the shape of the paper's Figure 2(a)).
    let slices = [
        "cmu-iris",
        "mit-ping",
        "uiuc-moara",
        "hp-render",
        "ucb-pier",
    ];
    for i in 0..n as u32 {
        let node = NodeId(i);
        for (k, name) in slices.iter().enumerate() {
            let p = 1.0 / (k as f64 + 2.0);
            pl.set_attr(node, &format!("slice-{name}"), rng.gen_bool(p));
        }
        pl.set_attr(node, "CPU-Util", Value::Float(rng.gen_range(0.0..100.0)));
        pl.set_attr(
            node,
            "Disk-Free-GB",
            Value::Float(rng.gen_range(1.0..500.0)),
        );
        pl.set_attr(
            node,
            "org",
            Value::str(if i % 3 == 0 { "edu" } else { "lab" }),
        );
    }

    let front = NodeId(1);

    // Basic query: per-slice monitoring without contacting all nodes.
    for name in &slices {
        let out = pl
            .query(front, &format!("SELECT count(*) WHERE slice-{name} = true"))
            .expect("valid query");
        println!(
            "slice {name:12} size {:6}   ({} msgs, {})",
            out.result.to_string(),
            out.messages,
            out.latency()
        );
    }

    // The paper's example: CPU utilization of nodes common to two slices
    // (intersection query).
    let out = pl
        .query(
            front,
            "SELECT avg(CPU-Util) WHERE slice-uiuc-moara = true AND slice-mit-ping = true",
        )
        .expect("valid query");
    println!(
        "\navg CPU on uiuc-moara ∩ mit-ping: {} ({})",
        out.result,
        out.latency()
    );

    // Free disk across all slices of an organization (union query).
    let out = pl
        .query(
            front,
            "SELECT sum(Disk-Free-GB) WHERE slice-hp-render = true OR slice-ucb-pier = true",
        )
        .expect("valid query");
    println!(
        "free disk on hp-render ∪ ucb-pier: {} ({})",
        out.result,
        out.latency()
    );

    // Hot-spot hunting: overloaded nodes inside one slice.
    let out = pl
        .query(
            front,
            "SELECT top(CPU-Util, 5) WHERE slice-cmu-iris = true AND CPU-Util > 90",
        )
        .expect("valid query");
    println!("overloaded cmu-iris nodes: {}", out.result);

    // Group churn: an experiment winds down, nodes leave the slice, and
    // the next query sees the shrunken group without any reconfiguration.
    let members: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|&nd| {
            pl.node(nd)
                .store
                .get("slice-ucb-pier")
                .is_some_and(|v| *v == Value::Bool(true))
        })
        .collect();
    for nd in members.iter().take(members.len() / 2) {
        pl.set_attr(*nd, "slice-ucb-pier", false);
    }
    let out = pl
        .query(front, "SELECT count(*) WHERE slice-ucb-pier = true")
        .expect("valid query");
    println!(
        "ucb-pier after half the experiment exited: {} nodes",
        out.result
    );
}

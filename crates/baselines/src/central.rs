//! The centralized aggregator of the paper's Figure 15.
//!
//! A single front-end keeps the full node roster and, for every query,
//! directly messages **all** nodes in parallel — no overlay, no trees, no
//! group awareness. Each node answers with its own (attribute, value) if
//! it satisfies the predicate, or a NULL otherwise. The response is
//! complete only when *every* node has answered — which is exactly why the
//! paper's CDF shows the centralized line start fast ("the hare") and then
//! crawl as it waits for the slowest stragglers, while Moara ("the
//! tortoise") finishes sooner by never touching nodes outside the group.

use std::collections::{HashMap, HashSet};

use moara_aggregation::{AggKind, AggResult, AggState, NodeRef};
use moara_attributes::{AttrStore, Value};
use moara_query::{parse_query, ParseError, Query};
use moara_simnet::{
    Context, LatencyModel, Message, NodeId, Protocol, SimDuration, SimTime, Simulator, Stats,
    TimerTag,
};

/// Wire messages of the centralized aggregator.
#[derive(Clone, Debug)]
pub enum CentralMsg {
    /// Front-end → node: evaluate and answer.
    Ask {
        /// Query sequence number at the front-end.
        qn: u64,
        /// The query to evaluate.
        query: Query,
    },
    /// Node → front-end: the node's contribution (NULL if unsatisfied).
    Answer {
        /// Echoed sequence number.
        qn: u64,
        /// The node's partial aggregate.
        state: AggState,
    },
}

impl Message for CentralMsg {
    fn size_bytes(&self) -> usize {
        match self {
            CentralMsg::Ask { query, .. } => 36 + query.to_string().len(),
            CentralMsg::Answer { state, .. } => 36 + state.wire_size(),
        }
    }
}

/// Outcome of one centralized query, with reply-time detail for CDFs.
#[derive(Clone, Debug)]
pub struct CentralOutcome {
    /// Final merged result.
    pub result: AggResult,
    /// Virtual time the query was issued.
    pub issued_at: SimTime,
    /// Virtual time the final (slowest) answer arrived.
    pub completed_at: SimTime,
    /// Arrival time of every individual answer, in arrival order — the
    /// raw material of the paper's cumulative-fraction plots.
    pub reply_times: Vec<SimTime>,
}

impl CentralOutcome {
    /// End-to-end latency (bounded by the slowest node).
    pub fn latency(&self) -> SimDuration {
        self.completed_at.duration_since(self.issued_at)
    }
}

/// A participant in the centralized system: one aggregator (node 0 by
/// convention) and plain agents.
pub struct CentralNode {
    /// Local attribute store.
    pub store: AttrStore,
    pending: HashMap<u64, PendingCentral>,
    done: HashMap<u64, CentralOutcome>,
    roster: Vec<NodeId>,
    next_qn: u64,
}

struct PendingCentral {
    kind: AggKind,
    acc: AggState,
    waiting: HashSet<NodeId>,
    issued_at: SimTime,
    reply_times: Vec<SimTime>,
}

impl CentralNode {
    fn new() -> CentralNode {
        CentralNode {
            store: AttrStore::new(),
            pending: HashMap::new(),
            done: HashMap::new(),
            roster: Vec::new(),
            next_qn: 0,
        }
    }
}

impl Protocol for CentralNode {
    type Msg = CentralMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, CentralMsg>, from: NodeId, msg: CentralMsg) {
        match msg {
            CentralMsg::Ask { qn, query } => {
                let state = if query.predicate.eval(&self.store) {
                    let node = NodeRef(ctx.me().0 as u64);
                    match (&query.attr, query.agg) {
                        (_, AggKind::Count | AggKind::Enumerate) => query
                            .agg
                            .seed(node, &Value::Bool(true))
                            .unwrap_or(AggState::Null),
                        (Some(attr), _) => self
                            .store
                            .get(attr.as_str())
                            .and_then(|v| query.agg.seed(node, v).ok())
                            .unwrap_or(AggState::Null),
                        (None, _) => AggState::Null,
                    }
                } else {
                    AggState::Null
                };
                ctx.send(from, CentralMsg::Answer { qn, state });
            }
            CentralMsg::Answer { qn, state } => {
                let Some(p) = self.pending.get_mut(&qn) else {
                    return;
                };
                if !p.waiting.remove(&from) {
                    return;
                }
                p.reply_times.push(ctx.now());
                let prev = std::mem::replace(&mut p.acc, AggState::Null);
                p.acc = p.kind.merge(prev, state);
                if p.waiting.is_empty() {
                    let p = self.pending.remove(&qn).expect("just present");
                    self.done.insert(
                        qn,
                        CentralOutcome {
                            result: p.acc.finish(),
                            issued_at: p.issued_at,
                            completed_at: ctx.now(),
                            reply_times: p.reply_times,
                        },
                    );
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, CentralMsg>, _tag: TimerTag) {}
}

/// A centralized-aggregator deployment (Figure 15's "Central").
pub struct CentralCluster {
    sim: Simulator<CentralNode>,
    aggregator: NodeId,
}

impl CentralCluster {
    /// Builds `n` nodes; node 0 is the aggregating front-end.
    pub fn new(n: usize, seed: u64, latency: impl LatencyModel + 'static) -> CentralCluster {
        assert!(n > 0);
        let mut sim = Simulator::new(latency, seed);
        for _ in 0..n {
            sim.add_node(CentralNode::new());
        }
        let roster: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let aggregator = NodeId(0);
        sim.node_mut(aggregator).roster = roster;
        CentralCluster { sim, aggregator }
    }

    /// Sets an attribute at a node.
    pub fn set_attr(&mut self, node: NodeId, attr: &str, value: impl Into<Value>) {
        self.sim.node_mut(node).store.set(attr, value.into());
    }

    /// Runs a query text synchronously from the aggregator.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed query text.
    pub fn query(&mut self, text: &str) -> Result<CentralOutcome, ParseError> {
        Ok(self.query_parsed(parse_query(text)?))
    }

    /// Runs a parsed query synchronously from the aggregator.
    pub fn query_parsed(&mut self, query: Query) -> CentralOutcome {
        let agg = self.aggregator;
        let qn = {
            let node = self.sim.node_mut(agg);
            let qn = node.next_qn;
            node.next_qn += 1;
            qn
        };
        let roster = self.sim.node(agg).roster.clone();
        let kind = query.agg;
        self.sim.with_node(agg, |n, ctx| {
            n.pending.insert(
                qn,
                PendingCentral {
                    kind,
                    acc: kind.identity(),
                    waiting: roster.iter().copied().collect(),
                    issued_at: ctx.now(),
                    reply_times: Vec::new(),
                },
            );
            for &t in &roster {
                ctx.send(
                    t,
                    CentralMsg::Ask {
                        qn,
                        query: query.clone(),
                    },
                );
            }
        });
        self.sim.run_to_quiescence();
        self.sim
            .node_mut(agg)
            .done
            .remove(&qn)
            .expect("all nodes alive, so all answers arrive")
    }

    /// Message statistics.
    pub fn stats(&self) -> &Stats {
        self.sim.stats()
    }

    /// Mutable statistics access.
    pub fn stats_mut(&mut self) -> &mut Stats {
        self.sim.stats_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_simnet::latency::Constant;

    #[test]
    fn central_counts_group_but_contacts_everyone() {
        let mut c = CentralCluster::new(30, 9, Constant::from_millis(2));
        for i in 0..30u32 {
            c.set_attr(NodeId(i), "A", i % 3 == 0);
        }
        let out = c.query("SELECT count(*) WHERE A = true").unwrap();
        assert_eq!(out.result, AggResult::Value(Value::Int(10)));
        // 30 asks + 30 answers.
        assert_eq!(c.stats().total_messages(), 60);
        assert_eq!(out.reply_times.len(), 30);
        // Constant latency: round trip is exactly 4 ms.
        assert_eq!(out.latency(), SimDuration::from_millis(4));
    }

    #[test]
    fn central_completion_bounded_by_slowest_node() {
        use moara_simnet::latency::Wan;
        let n = 60;
        let wan = Wan::planetlab(n, 17);
        let mut c = CentralCluster::new(n, 17, wan.clone());
        for i in 0..n as u32 {
            c.set_attr(NodeId(i), "A", i < 5);
        }
        let out = c.query("SELECT count(*) WHERE A = true").unwrap();
        assert_eq!(out.result, AggResult::Value(Value::Int(5)));
        // The slowest reply dominates completion: last reply == completion.
        assert_eq!(*out.reply_times.last().unwrap(), out.completed_at);
        // Early replies arrive much sooner than completion (the "hare").
        assert!(out.reply_times[0] < out.completed_at);
    }

    #[test]
    fn aggregator_also_answers_itself() {
        let mut c = CentralCluster::new(1, 1, Constant::from_millis(1));
        c.set_attr(NodeId(0), "A", true);
        let out = c.query("SELECT count(*) WHERE A = true").unwrap();
        assert_eq!(out.result, AggResult::Value(Value::Int(1)));
    }
}

//! # moara-baselines
//!
//! The comparator systems from the paper's evaluation:
//!
//! * **Global** (Figure 9, and the "SDIMS" line of Figure 12(a)): no group
//!   trees — every query walks the entire global DHT tree. Provided as a
//!   mode of the core engine; [`global_cluster`] builds one.
//! * **Moara (Always-Update)** (Figure 9): group trees maintained
//!   aggressively — every attribute-churn event propagates a status
//!   update. Also a core-engine mode; [`always_update_cluster`] builds
//!   one, and [`register_on`] pre-builds the tree as the baseline assumes.
//! * **Centralized aggregator** (Figure 15): a front-end that directly
//!   messages every node in parallel, regardless of the predicate, and
//!   completes when all nodes answered. Implemented from scratch in
//!   [`central`] since it bypasses the overlay entirely.

pub mod central;

use moara_core::{Cluster, MoaraConfig};
use moara_query::SimplePredicate;
use moara_simnet::LatencyModel;

pub use central::{CentralCluster, CentralOutcome};

/// Builds a cluster running the *Global* baseline (no group trees).
pub fn global_cluster(n: usize, seed: u64, latency: impl LatencyModel + 'static) -> Cluster {
    Cluster::builder()
        .nodes(n)
        .seed(seed)
        .latency(latency)
        .config(MoaraConfig::global())
        .build()
}

/// Builds a cluster running the *Always-Update* baseline.
pub fn always_update_cluster(n: usize, seed: u64, latency: impl LatencyModel + 'static) -> Cluster {
    Cluster::builder()
        .nodes(n)
        .seed(seed)
        .latency(latency)
        .config(MoaraConfig::always_update())
        .build()
}

/// Pre-builds the group tree for `pred` on an Always-Update cluster (the
/// baseline maintains trees regardless of queries), resetting message
/// statistics afterwards so the measurement starts clean.
pub fn register_on(cluster: &mut Cluster, pred: &SimplePredicate) {
    cluster.register_predicate(pred);
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_aggregation::AggResult;
    use moara_attributes::Value;
    use moara_core::Mode;
    use moara_simnet::latency::Constant;
    use moara_simnet::NodeId;

    #[test]
    fn global_cluster_answers_and_contacts_everyone() {
        let mut c = global_cluster(20, 3, Constant::from_millis(1));
        for i in 0..20u32 {
            c.set_attr(NodeId(i), "A", i < 5);
        }
        c.run_to_quiescence();
        c.stats_mut().reset();
        let out = c
            .query(NodeId(0), "SELECT count(*) WHERE A = true")
            .unwrap();
        assert_eq!(out.result, AggResult::Value(Value::Int(5)));
        // Global mode: roughly two messages per node per query.
        assert!(
            out.messages as usize >= 2 * (20 - 1),
            "global broadcast should touch everyone: {} msgs",
            out.messages
        );
        assert_eq!(c.config().mode, Mode::Global);
    }

    #[test]
    fn always_update_answers_correctly() {
        let mut c = always_update_cluster(20, 4, Constant::from_millis(1));
        for i in 0..20u32 {
            c.set_attr(NodeId(i), "A", i % 2 == 0);
        }
        let pred = SimplePredicate::new("A", moara_query::CmpOp::Eq, true);
        register_on(&mut c, &pred);
        let out = c
            .query(NodeId(1), "SELECT count(*) WHERE A = true")
            .unwrap();
        assert_eq!(out.result, AggResult::Value(Value::Int(10)));
    }

    #[test]
    fn always_update_pays_for_churn_not_queries() {
        let mut c = always_update_cluster(32, 5, Constant::from_millis(1));
        for i in 0..32u32 {
            c.set_attr(NodeId(i), "A", false);
        }
        let pred = SimplePredicate::new("A", moara_query::CmpOp::Eq, true);
        register_on(&mut c, &pred);
        let before = c.stats().total_messages();
        // Churn: flipping attributes generates maintenance traffic even
        // with no queries at all.
        for i in 0..8u32 {
            c.set_attr(NodeId(i), "A", true);
        }
        c.run_to_quiescence();
        assert!(c.stats().total_messages() > before);
    }
}

//! # moara-aggregation
//!
//! Partially-aggregatable aggregation functions — the SDIMS-style substrate
//! Moara computes over (paper Section 3.1).
//!
//! A Moara query names an *aggregation function* that must be **partially
//! aggregatable**: given aggregates for disjoint node sets, the function
//! can produce the aggregate of their union. That property is what lets an
//! aggregation tree combine child replies pairwise on the way up. This
//! crate provides the functions the paper lists — enumeration, max, min,
//! sum, count, top-k (avg as sum + count) — as a [`AggKind`] descriptor, a
//! mergeable partial state [`AggState`], and a final [`AggResult`].
//!
//! Merging is associative and commutative with [`AggState::Null`] as the
//! identity; the property tests in this crate check merge-order
//! independence on random inputs, which is exactly the invariant the tree
//! protocol relies on.
//!
//! # Example
//!
//! ```
//! use moara_aggregation::{AggKind, AggState, NodeRef, Value};
//!
//! let kind = AggKind::Avg;
//! // Three nodes contribute; merge in an arbitrary tree shape.
//! let a = kind.seed(NodeRef(1), &Value::Int(10)).unwrap();
//! let b = kind.seed(NodeRef(2), &Value::Int(20)).unwrap();
//! let c = kind.seed(NodeRef(3), &Value::Int(60)).unwrap();
//! let left = kind.merge(a, AggState::Null);
//! let merged = kind.merge(kind.merge(left, b), c);
//! assert_eq!(merged.finish().as_f64(), Some(30.0));
//! ```

mod delta;
mod func;

pub use delta::{DeltaFold, LOCAL_SOURCE};
pub use func::{AggError, AggKind, AggResult, AggState, NodeRef};
pub use moara_attributes::Value;

//! Incremental re-aggregation: the delta-capable fold behind the
//! continuous-query subscription plane.
//!
//! A tree node standing in for a subtree keeps one partial aggregate per
//! *source* (its own local contribution plus one summary per reporting
//! child) and must answer, after every input change, "did my subtree's
//! merged aggregate change?" — pushing a delta upward only when it did.
//! [`DeltaFold`] is that bookkeeping, factored out of the protocol so the
//! update/retract rules are testable in isolation:
//!
//! * **Invertible kinds** (`count`, integer `sum`, `histogram`) maintain
//!   the merged state in O(1) per update by un-merging the source's old
//!   contribution and merging the new one ([`AggKind::unmerge`]).
//! * **Order statistics and float kinds** (`min`, `max`, `top-k`,
//!   `avg`, `std`, float `sum`, `enumerate`) re-fold from the per-source
//!   summaries instead. For `min`/`max` the summaries are exactly what
//!   makes *retraction* possible: when the child holding the minimum
//!   leaves (or raises its value), no arithmetic can recover the
//!   runner-up — but the sibling summaries still know it. Floats re-fold
//!   to keep merged state bit-identical to a fresh fold (subtraction
//!   would accumulate rounding drift that the suppression comparison
//!   `old == new` could never cancel).
//!
//! Either path yields the same state as folding all current sources from
//! scratch (property-tested below), so "changed" has one meaning: the
//! replacement partial aggregate this subtree would report is different.

use std::collections::BTreeMap;

use crate::func::{AggKind, AggState};

/// Source key for a node's own local contribution (children use their
/// transport id; `u64::MAX` can never collide with one).
pub const LOCAL_SOURCE: u64 = u64::MAX;

/// A set of per-source partial aggregates with an incrementally
/// maintained merge (see module docs).
#[derive(Clone, Debug)]
pub struct DeltaFold {
    kind: AggKind,
    parts: BTreeMap<u64, AggState>,
    merged: AggState,
}

impl DeltaFold {
    /// An empty fold for `kind` (merged state is the identity).
    pub fn new(kind: AggKind) -> DeltaFold {
        DeltaFold {
            kind,
            parts: BTreeMap::new(),
            merged: AggState::Null,
        }
    }

    /// The aggregation kind this fold merges.
    pub fn kind(&self) -> AggKind {
        self.kind
    }

    /// The current merged partial aggregate over all sources.
    pub fn merged(&self) -> &AggState {
        &self.merged
    }

    /// Number of sources currently contributing (null parts included —
    /// a source that reported "nothing" is still a known source).
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no source has reported.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Whether `source` has a recorded part.
    pub fn contains(&self, source: u64) -> bool {
        self.parts.contains_key(&source)
    }

    /// The recorded part of one source.
    pub fn part(&self, source: u64) -> Option<&AggState> {
        self.parts.get(&source)
    }

    /// Source keys in ascending order.
    pub fn sources(&self) -> impl Iterator<Item = u64> + '_ {
        self.parts.keys().copied()
    }

    /// Records (or replaces) `source`'s partial aggregate and returns
    /// whether the merged state changed — the delta trigger.
    pub fn set(&mut self, source: u64, state: AggState) -> bool {
        let old = self.parts.insert(source, state.clone());
        if old.as_ref() == Some(&state) {
            return false;
        }
        self.remerge(old, Some(state))
    }

    /// Forgets `source` (child failed or was re-homed) and returns
    /// whether the merged state changed.
    pub fn remove(&mut self, source: u64) -> bool {
        match self.parts.remove(&source) {
            None => false,
            Some(old) => self.remerge(Some(old), None),
        }
    }

    /// Applies one source transition `old → new` to the merged state,
    /// via O(1) un-merge when the kind is invertible, by re-folding the
    /// summaries otherwise. Returns whether the merge changed.
    fn remerge(&mut self, old: Option<AggState>, new: Option<AggState>) -> bool {
        let before = self.merged.clone();
        let fast = match old {
            Some(old_state) => {
                self.kind
                    .unmerge(before.clone(), old_state)
                    .map(|shrunk| match new {
                        Some(n) => self.kind.merge(shrunk, n),
                        None => shrunk,
                    })
            }
            // Pure addition never needs inversion.
            None => Some(
                self.kind
                    .merge(before.clone(), new.unwrap_or(AggState::Null)),
            ),
        };
        self.merged = fast.unwrap_or_else(|| self.refold());
        self.merged != before
    }

    /// Folds all current parts from scratch (the slow, always-correct
    /// path; also the reference the fast path is property-tested against).
    pub fn refold(&self) -> AggState {
        self.parts
            .values()
            .fold(AggState::Null, |acc, s| self.kind.merge(acc, s.clone()))
    }
}

impl AggKind {
    /// Removes `part` from the merged state `total`, for kinds whose
    /// merge is exactly invertible (integer arithmetic only: `count`,
    /// integer `sum`, `histogram`). Returns `None` for everything else —
    /// order statistics cannot retract without sibling summaries, and
    /// float accumulators would drift away from a fresh fold.
    pub fn unmerge(&self, total: AggState, part: AggState) -> Option<AggState> {
        use AggState::*;
        Some(match (total, part) {
            (t, Null) => t,
            (Count(t), Count(p)) => {
                let left = t.checked_sub(p)?;
                if left == 0 {
                    Null
                } else {
                    Count(left)
                }
            }
            (SumInt(t), SumInt(p)) => {
                let left = t.wrapping_sub(p);
                if left == 0 {
                    // Zero is ambiguous: the remaining parts may
                    // genuinely sum to zero (SumInt(0)) or may all be
                    // gone (Null) — only a refold can tell, and the
                    // fast path must never diverge from it.
                    return None;
                }
                SumInt(left)
            }
            (
                Hist {
                    lo,
                    hi,
                    counts: mut t,
                },
                Hist { counts: p, .. },
            ) => {
                if t.len() != p.len() {
                    return None;
                }
                for (a, b) in t.iter_mut().zip(&p) {
                    *a = a.checked_sub(*b)?;
                }
                if t.iter().all(|&c| c == 0) {
                    Null
                } else {
                    Hist { lo, hi, counts: t }
                }
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::NodeRef;
    use moara_attributes::Value;

    fn seed(kind: AggKind, node: u64, v: i64) -> AggState {
        kind.seed(NodeRef(node), &Value::Int(v)).unwrap()
    }

    #[test]
    fn count_updates_in_place_and_zero_returns_to_null() {
        let mut f = DeltaFold::new(AggKind::Count);
        assert!(f.set(1, AggState::Count(1)));
        assert!(f.set(2, AggState::Count(3)));
        assert_eq!(f.merged(), &AggState::Count(4));
        // Unchanged input is suppressed.
        assert!(!f.set(2, AggState::Count(3)));
        assert!(f.set(2, AggState::Count(1)));
        assert_eq!(f.merged(), &AggState::Count(2));
        assert!(f.remove(1));
        assert!(f.set(2, AggState::Null));
        assert_eq!(f.merged(), &AggState::Null);
        assert_eq!(f.len(), 1, "a null source is still a known source");
    }

    #[test]
    fn min_retracts_through_sibling_summaries() {
        let mut f = DeltaFold::new(AggKind::Min);
        f.set(1, seed(AggKind::Min, 1, 5));
        f.set(2, seed(AggKind::Min, 2, 2));
        f.set(3, seed(AggKind::Min, 3, 9));
        assert_eq!(f.merged(), &AggState::Min((Value::Int(2), NodeRef(2))));
        // The minimum's holder leaves: the fold must surface the runner-up
        // — impossible arithmetically, possible from the summaries.
        assert!(f.remove(2));
        assert_eq!(f.merged(), &AggState::Min((Value::Int(5), NodeRef(1))));
        // The new minimum's holder *raises* its value instead of leaving.
        assert!(f.set(1, seed(AggKind::Min, 1, 50)));
        assert_eq!(f.merged(), &AggState::Min((Value::Int(9), NodeRef(3))));
    }

    #[test]
    fn max_and_topk_retract_too() {
        let mut f = DeltaFold::new(AggKind::Max);
        f.set(1, seed(AggKind::Max, 1, 5));
        f.set(2, seed(AggKind::Max, 2, 8));
        assert!(f.remove(2));
        assert_eq!(f.merged(), &AggState::Max((Value::Int(5), NodeRef(1))));

        let kind = AggKind::TopK(2);
        let mut f = DeltaFold::new(kind);
        f.set(1, seed(kind, 1, 5));
        f.set(2, seed(kind, 2, 8));
        f.set(3, seed(kind, 3, 7));
        assert!(f.remove(2));
        assert_eq!(
            f.merged().clone().finish(),
            crate::func::AggResult::Ranked(vec![
                (Value::Int(7), NodeRef(3)),
                (Value::Int(5), NodeRef(1)),
            ])
        );
    }

    #[test]
    fn unmerge_is_exact_for_invertible_kinds_only() {
        let k = AggKind::Count;
        assert_eq!(
            k.unmerge(AggState::Count(5), AggState::Count(2)),
            Some(AggState::Count(3))
        );
        assert_eq!(
            k.unmerge(AggState::Count(2), AggState::Count(2)),
            Some(AggState::Null)
        );
        assert_eq!(k.unmerge(AggState::Count(1), AggState::Count(2)), None);
        assert_eq!(
            AggKind::Sum.unmerge(AggState::SumInt(5), AggState::SumInt(7)),
            Some(AggState::SumInt(-2))
        );
        // Floats and order statistics refuse.
        assert_eq!(
            AggKind::Sum.unmerge(AggState::SumFloat(5.0), AggState::SumFloat(2.0)),
            None
        );
        assert_eq!(
            AggKind::Min.unmerge(
                AggState::Min((Value::Int(1), NodeRef(1))),
                AggState::Min((Value::Int(1), NodeRef(1)))
            ),
            None
        );
        // Identity removal is free for every kind.
        assert_eq!(
            AggKind::Avg.unmerge(AggState::Avg { sum: 1.0, count: 1 }, AggState::Null),
            Some(AggState::Avg { sum: 1.0, count: 1 })
        );
        // A zero difference is ambiguous (all-gone vs genuinely zero):
        // the fast path must punt to a refold rather than guess.
        assert_eq!(
            AggKind::Sum.unmerge(AggState::SumInt(5), AggState::SumInt(5)),
            None
        );
    }

    /// Removing the last contributing `sum` source must return the fold
    /// to `Null` — exactly what `refold()` says — not leave a stranded
    /// `SumInt(0)` that would finalize as `0` instead of `Empty`.
    #[test]
    fn sum_returns_to_null_when_the_last_source_leaves() {
        let mut f = DeltaFold::new(AggKind::Sum);
        assert!(f.set(1, AggState::SumInt(5)));
        assert!(f.remove(1));
        assert_eq!(f.merged(), &AggState::Null);
        assert_eq!(f.merged(), &f.refold());
        // But parts that genuinely sum to zero stay a numeric zero.
        f.set(1, AggState::SumInt(2));
        f.set(2, AggState::SumInt(-2));
        assert_eq!(f.merged(), &AggState::SumInt(0));
        assert_eq!(f.merged(), &f.refold());
        f.remove(2);
        assert_eq!(f.merged(), &AggState::SumInt(2));
    }

    #[test]
    fn histogram_unmerges_bucketwise() {
        let kind = AggKind::Histogram {
            lo: 0,
            hi: 10,
            buckets: 2,
        };
        let mut f = DeltaFold::new(kind);
        f.set(1, seed(kind, 1, 1));
        f.set(2, seed(kind, 2, 7));
        assert!(f.remove(1));
        assert_eq!(f.merged(), &seed(kind, 2, 7));
        assert!(f.remove(2));
        assert_eq!(f.merged(), &AggState::Null);
    }

    #[test]
    fn fast_path_matches_refold_under_random_walks() {
        // Every kind, driven by a deterministic pseudo-random stream of
        // set/remove operations: the incrementally maintained merge must
        // equal a from-scratch fold at every step.
        let kinds = [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::Std,
            AggKind::TopK(3),
            AggKind::Enumerate,
            AggKind::Histogram {
                lo: 0,
                hi: 100,
                buckets: 4,
            },
        ];
        for kind in kinds {
            let mut f = DeltaFold::new(kind);
            let mut x: u64 = 0x5eed ^ 0x9e3779b97f4a7c15;
            for _ in 0..300 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let src = (x >> 8) % 6;
                if x.is_multiple_of(5) {
                    f.remove(src);
                } else {
                    let v = ((x >> 16) % 200) as i64 - 100;
                    f.set(src, seed(kind, src, v));
                }
                assert_eq!(f.merged(), &f.refold(), "kind {kind:?} diverged");
            }
        }
    }

    #[test]
    fn changed_flag_tracks_merge_not_input() {
        // Two sources with equal values: removing one changes the merged
        // count but not the merged min.
        let mut f = DeltaFold::new(AggKind::Min);
        f.set(1, seed(AggKind::Min, 1, 4));
        f.set(2, seed(AggKind::Min, 1, 4)); // same attributed value
        assert!(!f.remove(2), "identical min elsewhere: merge unchanged");
        let mut f = DeltaFold::new(AggKind::Count);
        f.set(1, AggState::Count(1));
        f.set(2, AggState::Count(1));
        assert!(f.remove(2), "count shrinks");
    }
}

//! Aggregation kinds, partial states, and merge rules.

use std::fmt;

use moara_attributes::Value;

/// Identifies the node a contribution came from, for aggregates that carry
/// attribution (enumeration, top-k). Core maps DHT ids onto this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef(pub u64);

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:x}", self.0)
    }
}

/// The aggregation functions Moara supports (all partially aggregatable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Number of contributing nodes.
    Count,
    /// Numeric sum (integer-preserving when all inputs are integers).
    Sum,
    /// Minimum value (with node attribution).
    Min,
    /// Maximum value (with node attribution).
    Max,
    /// Arithmetic mean, implemented as sum + count as in the paper.
    Avg,
    /// Population standard deviation, implemented as sum +
    /// sum-of-squares + count. An extension beyond the paper's function
    /// list: still partially aggregatable (all three moments add), and
    /// delta-friendly — a subtree's contribution can be replaced without
    /// touching its siblings', which is what threshold subscriptions
    /// watch.
    Std,
    /// The `k` largest values with their nodes ("top-3 loaded hosts").
    TopK(usize),
    /// The `k` smallest values with their nodes.
    BottomK(usize),
    /// Enumeration of all contributing nodes.
    Enumerate,
    /// Fixed-width histogram of a numeric attribute over `[lo, hi)`, with
    /// two extra buckets for underflow and overflow. An extension beyond
    /// the paper's function list — still partially aggregatable (bucket
    /// counts add), so it composes with the trees unchanged.
    Histogram {
        /// Inclusive lower bound of the bucketed range.
        lo: i64,
        /// Exclusive upper bound of the bucketed range.
        hi: i64,
        /// Number of equal-width buckets in `[lo, hi)`.
        buckets: u32,
    },
}

impl AggKind {
    /// Parses a function name as used in the query language (`count`,
    /// `sum`, `min`, `max`, `avg`, `enum`; `top`/`bottom` take `k` via the
    /// parser). Case-insensitive.
    pub fn from_name(name: &str) -> Option<AggKind> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggKind::Count),
            "sum" => Some(AggKind::Sum),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            "avg" | "average" | "mean" => Some(AggKind::Avg),
            "std" | "stddev" | "stdev" => Some(AggKind::Std),
            "enum" | "enumerate" | "list" => Some(AggKind::Enumerate),
            _ => None,
        }
    }

    /// The identity element for this function's merge.
    pub fn identity(&self) -> AggState {
        AggState::Null
    }

    /// Finalizes a partial state, mapping the empty aggregate to this
    /// function's natural zero: `count`/`sum` of nothing is 0, ranked and
    /// enumerated results are empty lists, and order statistics
    /// (`min`/`max`/`avg`) are [`AggResult::Empty`].
    pub fn finalize(&self, state: AggState) -> AggResult {
        if state.is_null() {
            return match self {
                AggKind::Count | AggKind::Sum => AggResult::Value(Value::Int(0)),
                AggKind::Enumerate => AggResult::Nodes(Vec::new()),
                AggKind::TopK(_) | AggKind::BottomK(_) => AggResult::Ranked(Vec::new()),
                AggKind::Histogram { lo, hi, buckets } => AggResult::Histogram {
                    lo: *lo,
                    hi: *hi,
                    counts: vec![0; *buckets as usize + 2],
                },
                _ => AggResult::Empty,
            };
        }
        state.finish()
    }

    /// Builds the partial state for a single node's contribution.
    ///
    /// # Errors
    ///
    /// [`AggError::NonNumeric`] if a numeric function (`sum`, `avg`) is
    /// applied to a non-numeric value, and [`AggError::Incomparable`] if an
    /// ordering function meets NaN.
    pub fn seed(&self, node: NodeRef, value: &Value) -> Result<AggState, AggError> {
        match self {
            AggKind::Count => Ok(AggState::Count(1)),
            AggKind::Sum => match value {
                Value::Int(i) => Ok(AggState::SumInt(*i)),
                Value::Float(f) if !f.is_nan() => Ok(AggState::SumFloat(*f)),
                _ => Err(AggError::NonNumeric(value.clone())),
            },
            AggKind::Avg => {
                let f = value
                    .as_f64()
                    .ok_or_else(|| AggError::NonNumeric(value.clone()))?;
                if f.is_nan() {
                    return Err(AggError::NonNumeric(value.clone()));
                }
                Ok(AggState::Avg { sum: f, count: 1 })
            }
            AggKind::Std => {
                let f = value
                    .as_f64()
                    .ok_or_else(|| AggError::NonNumeric(value.clone()))?;
                if f.is_nan() {
                    return Err(AggError::NonNumeric(value.clone()));
                }
                Ok(AggState::Std {
                    sum: f,
                    sum_sq: f * f,
                    count: 1,
                })
            }
            AggKind::Min | AggKind::Max => {
                if matches!(value, Value::Float(f) if f.is_nan()) {
                    return Err(AggError::Incomparable(value.clone()));
                }
                let item = (value.clone(), node);
                Ok(if *self == AggKind::Min {
                    AggState::Min(item)
                } else {
                    AggState::Max(item)
                })
            }
            AggKind::TopK(k) | AggKind::BottomK(k) => {
                if matches!(value, Value::Float(f) if f.is_nan()) {
                    return Err(AggError::Incomparable(value.clone()));
                }
                Ok(AggState::Ranked {
                    k: *k,
                    descending: matches!(self, AggKind::TopK(_)),
                    items: vec![(value.clone(), node)],
                })
            }
            AggKind::Enumerate => Ok(AggState::Nodes(vec![node])),
            AggKind::Histogram { lo, hi, buckets } => {
                assert!(hi > lo && *buckets > 0, "histogram needs a positive range");
                let v = value
                    .as_f64()
                    .ok_or_else(|| AggError::NonNumeric(value.clone()))?;
                if v.is_nan() {
                    return Err(AggError::NonNumeric(value.clone()));
                }
                // counts[0] = underflow, counts[1..=buckets] = range,
                // counts[buckets+1] = overflow.
                let mut counts = vec![0u64; *buckets as usize + 2];
                let idx = if v < *lo as f64 {
                    0
                } else if v >= *hi as f64 {
                    *buckets as usize + 1
                } else {
                    let width = (*hi - *lo) as f64 / *buckets as f64;
                    1 + (((v - *lo as f64) / width) as usize).min(*buckets as usize - 1)
                };
                counts[idx] = 1;
                Ok(AggState::Hist {
                    lo: *lo,
                    hi: *hi,
                    counts,
                })
            }
        }
    }

    /// Merges two partial states of this kind. [`AggState::Null`] is the
    /// identity; merge is associative and commutative (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if the two states belong to different aggregation kinds —
    /// a protocol bug, not an input error.
    pub fn merge(&self, a: AggState, b: AggState) -> AggState {
        use AggState::*;
        match (a, b) {
            (Null, x) | (x, Null) => x,
            (Count(x), Count(y)) => Count(x + y),
            (SumInt(x), SumInt(y)) => SumInt(x.wrapping_add(y)),
            (SumInt(x), SumFloat(y)) | (SumFloat(y), SumInt(x)) => SumFloat(x as f64 + y),
            (SumFloat(x), SumFloat(y)) => SumFloat(x + y),
            (Avg { sum: s1, count: c1 }, Avg { sum: s2, count: c2 }) => Avg {
                sum: s1 + s2,
                count: c1 + c2,
            },
            (
                Std {
                    sum: s1,
                    sum_sq: q1,
                    count: c1,
                },
                Std {
                    sum: s2,
                    sum_sq: q2,
                    count: c2,
                },
            ) => Std {
                sum: s1 + s2,
                sum_sq: q1 + q2,
                count: c1 + c2,
            },
            (Min(x), Min(y)) => Min(pick(x, y, false)),
            (Max(x), Max(y)) => Max(pick(x, y, true)),
            (
                Ranked {
                    k,
                    descending,
                    items: mut xs,
                },
                Ranked { items: ys, .. },
            ) => {
                xs.extend(ys);
                sort_ranked(&mut xs, descending);
                xs.truncate(k);
                Ranked {
                    k,
                    descending,
                    items: xs,
                }
            }
            (
                Hist {
                    lo,
                    hi,
                    counts: mut xs,
                },
                Hist { counts: ys, .. },
            ) => {
                assert_eq!(xs.len(), ys.len(), "histogram shape mismatch");
                for (a, b) in xs.iter_mut().zip(ys) {
                    *a += b;
                }
                Hist { lo, hi, counts: xs }
            }
            (Nodes(mut xs), Nodes(ys)) => {
                xs.extend(ys);
                xs.sort_unstable();
                xs.dedup();
                Nodes(xs)
            }
            (a, b) => panic!("cannot merge mismatched aggregate states {a:?} and {b:?}"),
        }
    }
}

/// Deterministically picks the min/max of two attributed values, breaking
/// value ties toward the smaller node id (merge-order independence).
fn pick(x: (Value, NodeRef), y: (Value, NodeRef), want_max: bool) -> (Value, NodeRef) {
    let ord = x.0.total_cmp(&y.0).then(x.1.cmp(&y.1).reverse());
    let x_wins = if want_max {
        ord.is_ge()
    } else {
        // min: smaller value wins; tie toward smaller node id.
        x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)).is_le()
    };
    if x_wins {
        x
    } else {
        y
    }
}

fn sort_ranked(items: &mut [(Value, NodeRef)], descending: bool) {
    items.sort_by(|a, b| {
        let v = if descending {
            b.0.total_cmp(&a.0)
        } else {
            a.0.total_cmp(&b.0)
        };
        v.then(a.1.cmp(&b.1))
    });
}

/// A mergeable partial aggregate.
#[derive(Clone, Debug, PartialEq)]
pub enum AggState {
    /// No contribution (the merge identity, and a node's "null reply").
    Null,
    /// Partial count.
    Count(u64),
    /// Integer-preserving partial sum.
    SumInt(i64),
    /// Floating partial sum.
    SumFloat(f64),
    /// Partial average.
    Avg {
        /// Sum of contributions so far.
        sum: f64,
        /// Number of contributions so far.
        count: u64,
    },
    /// Partial standard deviation (first two moments plus count).
    Std {
        /// Sum of contributions so far.
        sum: f64,
        /// Sum of squared contributions so far.
        sum_sq: f64,
        /// Number of contributions so far.
        count: u64,
    },
    /// Current minimum with its node.
    Min((Value, NodeRef)),
    /// Current maximum with its node.
    Max((Value, NodeRef)),
    /// Top-k / bottom-k ranked list.
    Ranked {
        /// Capacity.
        k: usize,
        /// True for top-k, false for bottom-k.
        descending: bool,
        /// Sorted, capped items.
        items: Vec<(Value, NodeRef)>,
    },
    /// Enumerated contributing nodes (sorted, deduplicated).
    Nodes(Vec<NodeRef>),
    /// Histogram bucket counts (underflow + buckets + overflow).
    Hist {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Bucket counts.
        counts: Vec<u64>,
    },
}

impl AggState {
    /// Whether this state carries no contribution.
    pub fn is_null(&self) -> bool {
        matches!(self, AggState::Null)
    }

    /// Finalizes the partial state into a queryable result.
    pub fn finish(self) -> AggResult {
        match self {
            AggState::Null => AggResult::Empty,
            AggState::Count(c) => AggResult::Value(Value::Int(c as i64)),
            AggState::SumInt(s) => AggResult::Value(Value::Int(s)),
            AggState::SumFloat(s) => AggResult::Value(Value::Float(s)),
            AggState::Avg { sum, count } => {
                if count == 0 {
                    AggResult::Empty
                } else {
                    AggResult::Value(Value::Float(sum / count as f64))
                }
            }
            AggState::Std { sum, sum_sq, count } => {
                if count == 0 {
                    AggResult::Empty
                } else {
                    let mean = sum / count as f64;
                    // Clamp the catastrophic-cancellation case to zero.
                    let var = (sum_sq / count as f64 - mean * mean).max(0.0);
                    AggResult::Value(Value::Float(var.sqrt()))
                }
            }
            AggState::Min((v, n)) | AggState::Max((v, n)) => AggResult::Attributed(v, n),
            AggState::Ranked { items, .. } => AggResult::Ranked(items),
            AggState::Nodes(ns) => AggResult::Nodes(ns),
            AggState::Hist { lo, hi, counts } => AggResult::Histogram { lo, hi, counts },
        }
    }

    /// Exact wire size of this state (delegates to the `moara-wire`
    /// codec, so there is a single size accounting in the tree).
    pub fn wire_size(&self) -> usize {
        moara_wire::Wire::encoded_len(self)
    }
}

/// A finalized aggregation result.
#[derive(Clone, Debug, PartialEq)]
pub enum AggResult {
    /// No node contributed.
    Empty,
    /// A plain value (count, sum, avg).
    Value(Value),
    /// A value attributed to the node holding it (min, max).
    Attributed(Value, NodeRef),
    /// Ranked values with nodes (top-k, bottom-k).
    Ranked(Vec<(Value, NodeRef)>),
    /// Enumerated nodes.
    Nodes(Vec<NodeRef>),
    /// Histogram of a numeric attribute.
    Histogram {
        /// Inclusive lower bound of the bucketed range.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Bucket counts: underflow, the buckets, overflow.
        counts: Vec<u64>,
    },
}

impl AggResult {
    /// The scalar value as `f64`, when the result has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AggResult::Value(v) | AggResult::Attributed(v, _) => v.as_f64(),
            _ => None,
        }
    }

    /// The count of entries for list-shaped results.
    pub fn len(&self) -> usize {
        match self {
            AggResult::Empty => 0,
            AggResult::Value(_) | AggResult::Attributed(..) => 1,
            AggResult::Ranked(v) => v.len(),
            AggResult::Nodes(v) => v.len(),
            AggResult::Histogram { counts, .. } => counts.iter().sum::<u64>() as usize,
        }
    }

    /// True for [`AggResult::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, AggResult::Empty)
    }
}

impl fmt::Display for AggResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggResult::Empty => write!(f, "(empty)"),
            AggResult::Value(v) => write!(f, "{v}"),
            AggResult::Attributed(v, n) => write!(f, "{v} at {n}"),
            AggResult::Ranked(items) => {
                write!(f, "[")?;
                for (i, (v, n)) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v} at {n}")?;
                }
                write!(f, "]")
            }
            AggResult::Nodes(ns) => write!(f, "{} nodes", ns.len()),
            AggResult::Histogram { lo, hi, counts } => {
                write!(f, "hist[{lo},{hi}) {counts:?}")
            }
        }
    }
}

/// Errors surfaced when seeding a partial aggregate from a local value.
#[derive(Clone, Debug, PartialEq)]
pub enum AggError {
    /// A numeric aggregate met a non-numeric (or NaN) value.
    NonNumeric(Value),
    /// An ordering aggregate met an incomparable value (NaN).
    Incomparable(Value),
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::NonNumeric(v) => write!(f, "non-numeric value {v} in numeric aggregate"),
            AggError::Incomparable(v) => write!(f, "incomparable value {v} in ordered aggregate"),
        }
    }
}

impl std::error::Error for AggError {}

mod wire {
    //! Wire-format impls, so aggregates can cross real sockets.

    use moara_wire::{Wire, WireError};

    use super::{AggKind, AggState, NodeRef};

    impl Wire for NodeRef {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            u64::decode(buf).map(NodeRef)
        }
        fn encoded_len(&self) -> usize {
            8
        }
    }

    impl Wire for AggKind {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                AggKind::Count => out.push(0),
                AggKind::Sum => out.push(1),
                AggKind::Min => out.push(2),
                AggKind::Max => out.push(3),
                AggKind::Avg => out.push(4),
                AggKind::TopK(k) => {
                    out.push(5);
                    k.encode(out);
                }
                AggKind::BottomK(k) => {
                    out.push(6);
                    k.encode(out);
                }
                AggKind::Enumerate => out.push(7),
                AggKind::Histogram { lo, hi, buckets } => {
                    out.push(8);
                    lo.encode(out);
                    hi.encode(out);
                    buckets.encode(out);
                }
                AggKind::Std => out.push(9),
            }
        }

        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            Ok(match u8::decode(buf)? {
                0 => AggKind::Count,
                1 => AggKind::Sum,
                2 => AggKind::Min,
                3 => AggKind::Max,
                4 => AggKind::Avg,
                5 => AggKind::TopK(usize::decode(buf)?),
                6 => AggKind::BottomK(usize::decode(buf)?),
                7 => AggKind::Enumerate,
                8 => AggKind::Histogram {
                    lo: i64::decode(buf)?,
                    hi: i64::decode(buf)?,
                    buckets: u32::decode(buf)?,
                },
                9 => AggKind::Std,
                _ => return Err(WireError::Invalid("AggKind tag")),
            })
        }

        fn encoded_len(&self) -> usize {
            1 + match self {
                AggKind::TopK(_) | AggKind::BottomK(_) => 8,
                AggKind::Histogram { .. } => 20,
                _ => 0,
            }
        }
    }

    impl Wire for AggState {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                AggState::Null => out.push(0),
                AggState::Count(c) => {
                    out.push(1);
                    c.encode(out);
                }
                AggState::SumInt(s) => {
                    out.push(2);
                    s.encode(out);
                }
                AggState::SumFloat(s) => {
                    out.push(3);
                    s.encode(out);
                }
                AggState::Avg { sum, count } => {
                    out.push(4);
                    sum.encode(out);
                    count.encode(out);
                }
                AggState::Min(item) => {
                    out.push(5);
                    item.encode(out);
                }
                AggState::Max(item) => {
                    out.push(6);
                    item.encode(out);
                }
                AggState::Ranked {
                    k,
                    descending,
                    items,
                } => {
                    out.push(7);
                    k.encode(out);
                    descending.encode(out);
                    items.encode(out);
                }
                AggState::Nodes(ns) => {
                    out.push(8);
                    ns.encode(out);
                }
                AggState::Hist { lo, hi, counts } => {
                    out.push(9);
                    lo.encode(out);
                    hi.encode(out);
                    counts.encode(out);
                }
                AggState::Std { sum, sum_sq, count } => {
                    out.push(10);
                    sum.encode(out);
                    sum_sq.encode(out);
                    count.encode(out);
                }
            }
        }

        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            Ok(match u8::decode(buf)? {
                0 => AggState::Null,
                1 => AggState::Count(u64::decode(buf)?),
                2 => AggState::SumInt(i64::decode(buf)?),
                3 => AggState::SumFloat(f64::decode(buf)?),
                4 => AggState::Avg {
                    sum: f64::decode(buf)?,
                    count: u64::decode(buf)?,
                },
                5 => AggState::Min(Wire::decode(buf)?),
                6 => AggState::Max(Wire::decode(buf)?),
                7 => AggState::Ranked {
                    k: usize::decode(buf)?,
                    descending: bool::decode(buf)?,
                    items: Wire::decode(buf)?,
                },
                8 => AggState::Nodes(Wire::decode(buf)?),
                9 => AggState::Hist {
                    lo: i64::decode(buf)?,
                    hi: i64::decode(buf)?,
                    counts: Wire::decode(buf)?,
                },
                10 => AggState::Std {
                    sum: f64::decode(buf)?,
                    sum_sq: f64::decode(buf)?,
                    count: u64::decode(buf)?,
                },
                _ => return Err(WireError::Invalid("AggState tag")),
            })
        }

        fn encoded_len(&self) -> usize {
            1 + match self {
                AggState::Null => 0,
                AggState::Count(_) | AggState::SumInt(_) | AggState::SumFloat(_) => 8,
                AggState::Avg { .. } => 16,
                AggState::Std { .. } => 24,
                AggState::Min(item) | AggState::Max(item) => item.encoded_len(),
                AggState::Ranked { items, .. } => 9 + items.encoded_len(),
                AggState::Nodes(ns) => ns.encoded_len(),
                AggState::Hist { counts, .. } => 16 + counts.encoded_len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seed_all(kind: AggKind, vals: &[(u64, Value)]) -> Vec<AggState> {
        vals.iter()
            .map(|(n, v)| kind.seed(NodeRef(*n), v).unwrap())
            .collect()
    }

    fn merge_left(kind: AggKind, states: Vec<AggState>) -> AggState {
        states
            .into_iter()
            .fold(AggState::Null, |acc, s| kind.merge(acc, s))
    }

    #[test]
    fn count_counts() {
        let kind = AggKind::Count;
        let s = merge_left(
            kind,
            seed_all(kind, &[(1, Value::Bool(true)), (2, Value::Int(5))]),
        );
        assert_eq!(s.finish(), AggResult::Value(Value::Int(2)));
    }

    #[test]
    fn sum_preserves_integers_and_promotes_floats() {
        let kind = AggKind::Sum;
        let ints = merge_left(
            kind,
            seed_all(kind, &[(1, Value::Int(2)), (2, Value::Int(3))]),
        );
        assert_eq!(ints.finish(), AggResult::Value(Value::Int(5)));
        let mixed = merge_left(
            kind,
            seed_all(kind, &[(1, Value::Int(2)), (2, Value::Float(0.5))]),
        );
        assert_eq!(mixed.finish(), AggResult::Value(Value::Float(2.5)));
    }

    #[test]
    fn avg_is_sum_over_count() {
        let kind = AggKind::Avg;
        let s = merge_left(
            kind,
            seed_all(
                kind,
                &[(1, Value::Int(1)), (2, Value::Int(2)), (3, Value::Int(6))],
            ),
        );
        assert_eq!(s.finish().as_f64(), Some(3.0));
    }

    #[test]
    fn min_max_attribute_the_node() {
        let vals = [(7, Value::Int(5)), (3, Value::Int(1)), (9, Value::Int(9))];
        let min = merge_left(AggKind::Min, seed_all(AggKind::Min, &vals));
        assert_eq!(
            min.finish(),
            AggResult::Attributed(Value::Int(1), NodeRef(3))
        );
        let max = merge_left(AggKind::Max, seed_all(AggKind::Max, &vals));
        assert_eq!(
            max.finish(),
            AggResult::Attributed(Value::Int(9), NodeRef(9))
        );
    }

    #[test]
    fn min_tie_breaks_to_smaller_node() {
        let vals = [(9, Value::Int(1)), (2, Value::Int(1))];
        let min = merge_left(AggKind::Min, seed_all(AggKind::Min, &vals));
        assert_eq!(
            min.finish(),
            AggResult::Attributed(Value::Int(1), NodeRef(2))
        );
        let max = merge_left(AggKind::Max, seed_all(AggKind::Max, &vals));
        // max tie also breaks toward smaller node id.
        assert_eq!(
            max.finish(),
            AggResult::Attributed(Value::Int(1), NodeRef(2))
        );
    }

    #[test]
    fn topk_keeps_k_largest_sorted() {
        let kind = AggKind::TopK(2);
        let vals = [
            (1, Value::Int(5)),
            (2, Value::Int(9)),
            (3, Value::Int(7)),
            (4, Value::Int(1)),
        ];
        let s = merge_left(kind, seed_all(kind, &vals));
        assert_eq!(
            s.finish(),
            AggResult::Ranked(vec![
                (Value::Int(9), NodeRef(2)),
                (Value::Int(7), NodeRef(3)),
            ])
        );
    }

    #[test]
    fn bottomk_keeps_k_smallest() {
        let kind = AggKind::BottomK(2);
        let vals = [(1, Value::Int(5)), (2, Value::Int(9)), (3, Value::Int(7))];
        let s = merge_left(kind, seed_all(kind, &vals));
        assert_eq!(
            s.finish(),
            AggResult::Ranked(vec![
                (Value::Int(5), NodeRef(1)),
                (Value::Int(7), NodeRef(3)),
            ])
        );
    }

    #[test]
    fn enumerate_collects_sorted_nodes() {
        let kind = AggKind::Enumerate;
        let vals = [(9, Value::Bool(true)), (1, Value::Bool(true))];
        let s = merge_left(kind, seed_all(kind, &vals));
        assert_eq!(s.finish(), AggResult::Nodes(vec![NodeRef(1), NodeRef(9)]));
    }

    #[test]
    fn null_is_identity() {
        for kind in [AggKind::Count, AggKind::Sum, AggKind::Avg, AggKind::Max] {
            let s = kind.seed(NodeRef(1), &Value::Int(4)).unwrap();
            assert_eq!(kind.merge(s.clone(), AggState::Null), s);
            assert_eq!(kind.merge(AggState::Null, s.clone()), s);
        }
        assert_eq!(
            AggKind::Count.merge(AggState::Null, AggState::Null),
            AggState::Null
        );
        assert_eq!(AggState::Null.finish(), AggResult::Empty);
    }

    #[test]
    fn seed_errors_on_bad_input() {
        assert!(AggKind::Sum.seed(NodeRef(1), &Value::Bool(true)).is_err());
        assert!(AggKind::Avg.seed(NodeRef(1), &Value::str("x")).is_err());
        assert!(AggKind::Sum
            .seed(NodeRef(1), &Value::Float(f64::NAN))
            .is_err());
        assert!(AggKind::Max
            .seed(NodeRef(1), &Value::Float(f64::NAN))
            .is_err());
        let e = AggKind::Sum
            .seed(NodeRef(1), &Value::Bool(true))
            .unwrap_err();
        assert!(e.to_string().contains("non-numeric"));
    }

    #[test]
    fn from_name_parses() {
        assert_eq!(AggKind::from_name("COUNT"), Some(AggKind::Count));
        assert_eq!(AggKind::from_name("Avg"), Some(AggKind::Avg));
        assert_eq!(AggKind::from_name("enumerate"), Some(AggKind::Enumerate));
        assert_eq!(AggKind::from_name("std"), Some(AggKind::Std));
        assert_eq!(AggKind::from_name("STDDEV"), Some(AggKind::Std));
        assert_eq!(AggKind::from_name("nope"), None);
    }

    #[test]
    fn std_is_population_standard_deviation() {
        let kind = AggKind::Std;
        // Values 2, 4, 4, 4, 5, 5, 7, 9 → σ = 2 (the classic example).
        let vals: Vec<(u64, Value)> = [2, 4, 4, 4, 5, 5, 7, 9]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, Value::Int(v)))
            .collect();
        let s = merge_left(kind, seed_all(kind, &vals));
        assert!((s.finish().as_f64().unwrap() - 2.0).abs() < 1e-9);
        // A single value has zero spread; the empty aggregate is Empty.
        let one = kind.seed(NodeRef(1), &Value::Int(7)).unwrap();
        assert_eq!(one.finish().as_f64(), Some(0.0));
        assert_eq!(kind.finalize(AggState::Null), AggResult::Empty);
        assert!(kind.seed(NodeRef(1), &Value::Bool(true)).is_err());
    }

    #[test]
    #[should_panic(expected = "mismatched aggregate states")]
    fn mismatched_merge_panics() {
        AggKind::Count.merge(AggState::Count(1), AggState::SumInt(2));
    }

    fn arb_kind() -> impl Strategy<Value = AggKind> {
        prop_oneof![
            Just(AggKind::Count),
            Just(AggKind::Sum),
            Just(AggKind::Avg),
            Just(AggKind::Std),
            Just(AggKind::Min),
            Just(AggKind::Max),
            (1usize..5).prop_map(AggKind::TopK),
            (1usize..5).prop_map(AggKind::BottomK),
            Just(AggKind::Enumerate),
        ]
    }

    proptest! {
        /// The invariant the aggregation tree relies on: merging the same
        /// contributions in any association/order yields the same state.
        #[test]
        fn merge_is_order_independent(
            kind in arb_kind(),
            vals in proptest::collection::vec((0u64..50, -1000i64..1000), 1..20),
            perm_seed in any::<u64>(),
        ) {
            // distinct node refs
            let vals: Vec<(u64, Value)> = vals
                .iter()
                .enumerate()
                .map(|(i, (_, v))| (i as u64, Value::Int(*v)))
                .collect();
            let states = seed_all(kind, &vals);
            let left = merge_left(kind, states.clone());

            // random permutation + right-fold
            let mut permuted = states;
            let mut s = perm_seed;
            for i in (1..permuted.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                permuted.swap(i, j);
            }
            let right = permuted
                .into_iter()
                .rev()
                .fold(AggState::Null, |acc, st| kind.merge(st, acc));
            prop_assert_eq!(left, right);
        }

        /// Pairwise tree-shaped merging equals flat folding.
        #[test]
        fn tree_merge_equals_flat_merge(
            kind in arb_kind(),
            n in 1usize..24,
        ) {
            let vals: Vec<(u64, Value)> =
                (0..n as u64).map(|i| (i, Value::Int((i as i64 * 37) % 100 - 50))).collect();
            let mut states = seed_all(kind, &vals);
            let flat = merge_left(kind, states.clone());
            // binary-tree reduction
            while states.len() > 1 {
                let mut next = Vec::new();
                for pair in states.chunks(2) {
                    next.push(match pair {
                        [a, b] => kind.merge(a.clone(), b.clone()),
                        [a] => a.clone(),
                        _ => unreachable!(),
                    });
                }
                states = next;
            }
            prop_assert_eq!(states.pop().unwrap(), flat);
        }
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    fn hist_kind() -> AggKind {
        AggKind::Histogram {
            lo: 0,
            hi: 100,
            buckets: 4,
        }
    }

    #[test]
    fn buckets_values_with_under_and_overflow() {
        let kind = hist_kind();
        let inputs = [
            (-5.0, 0usize), // underflow
            (0.0, 1),
            (24.9, 1),
            (25.0, 2),
            (74.9, 3),
            (99.9, 4),
            (100.0, 5), // overflow
            (1e9, 5),
        ];
        for (v, want) in inputs {
            let st = kind.seed(NodeRef(1), &Value::Float(v)).unwrap();
            let AggState::Hist { counts, .. } = st else {
                panic!("not a histogram state")
            };
            let got = counts.iter().position(|&c| c == 1).unwrap();
            assert_eq!(got, want, "value {v}");
        }
    }

    #[test]
    fn merge_adds_counts() {
        let kind = hist_kind();
        let a = kind.seed(NodeRef(1), &Value::Int(10)).unwrap();
        let b = kind.seed(NodeRef(2), &Value::Int(12)).unwrap();
        let c = kind.seed(NodeRef(3), &Value::Int(90)).unwrap();
        let merged = kind.merge(kind.merge(a, b), c);
        assert_eq!(
            merged.clone().finish(),
            AggResult::Histogram {
                lo: 0,
                hi: 100,
                counts: vec![0, 2, 0, 0, 1, 0],
            }
        );
        assert!(merged.wire_size() > 8);
    }

    #[test]
    fn empty_histogram_finalizes_to_zero_counts() {
        let kind = hist_kind();
        match kind.finalize(AggState::Null) {
            AggResult::Histogram { counts, .. } => {
                assert_eq!(counts, vec![0; 6]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_numeric_rejected() {
        assert!(hist_kind().seed(NodeRef(1), &Value::Bool(true)).is_err());
        assert!(hist_kind()
            .seed(NodeRef(1), &Value::Float(f64::NAN))
            .is_err());
    }

    #[test]
    fn display_shows_range() {
        let kind = hist_kind();
        let st = kind.seed(NodeRef(1), &Value::Int(50)).unwrap();
        let shown = st.finish().to_string();
        assert!(shown.contains("hist[0,100)"), "{shown}");
    }
}

//! The discrete-event simulator core: nodes, messages, timers, and the
//! event loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::latency::LatencyModel;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};

/// Identifies a simulated node (its index in the simulator).
///
/// This is the *transport-level* address — the Moara/DHT layers map their
/// 64-bit ring identifiers onto these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl moara_wire::Wire for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        moara_wire::Wire::encode(&self.0, out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, moara_wire::WireError> {
        <u32 as moara_wire::Wire>::decode(buf).map(NodeId)
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

/// A simulated wire message.
///
/// `size_bytes` feeds the per-node bandwidth accounting; the default of 64
/// bytes approximates a small UDP control message and is fine for tests.
pub trait Message: Clone + fmt::Debug {
    /// Estimated serialized size, in bytes.
    fn size_bytes(&self) -> usize {
        64
    }

    /// Opaque per-query tag for message attribution, or `None` for
    /// traffic that belongs to no single query (maintenance, membership).
    ///
    /// Transports feed this into [`crate::Stats::record_query_msg`], so a
    /// harness can read how many messages one end-to-end query caused even
    /// while other queries are in flight — global before/after snapshots
    /// cannot tell overlapping queries apart.
    fn query_tag(&self) -> Option<u64> {
        None
    }
}

impl Message for () {}
impl Message for u32 {}
impl Message for u64 {}
impl Message for String {
    fn size_bytes(&self) -> usize {
        self.len() + 16
    }
}

/// Opaque tag carried by a timer back to the protocol that armed it.
pub type TimerTag = u64;

/// Handle to a pending timer, usable with [`Context::cancel_timer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// Builds a timer id from a raw sequence number. Exposed so alternate
    /// transports (see `moara-transport`) can mint ids from their own
    /// timer wheels; within one transport ids are unique.
    pub fn from_raw(raw: u64) -> TimerId {
        TimerId(raw)
    }

    /// The raw sequence number behind this id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A message-passing state machine hosted by the simulator.
///
/// This is the seam that would be replaced by a socket-facing runtime in a
/// real deployment: protocol logic written against this trait is oblivious
/// to whether it runs over the simulator or a network.
pub trait Protocol {
    /// The protocol's wire message type.
    type Msg: Message;

    /// Called once when the node is added to the simulator.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, tag: TimerTag);
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { id: TimerId, tag: TimerTag },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
    /// Maintenance timers (lease clocks, renewal ticks, periodic
    /// emissions) do not count toward quiescence: `run_to_quiescence`
    /// neither waits for nor fires them — they fire during `run_for`.
    maintenance: bool,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Scriptable network faults: per-link (and default) message-drop
/// probabilities plus bidirectional partitions. Consulted on every send
/// when any fault is configured; a faulted message is lost *silently* —
/// unlike sends to failed nodes it produces no undeliverable-log entry,
/// because real networks drop packets without notifying the sender.
///
/// This is the simulator's fault-injection surface for churn scenarios
/// the paper only gestures at: lossy links, netsplits, and (together with
/// [`Simulator::fail_node`] / [`Simulator::recover_node`], which preserve
/// node state) crash-then-restart. Drops are counted under the
/// `"faults_dropped"` stats counter.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Drop probability applied to every link without an explicit entry.
    default_drop: f64,
    /// Directed per-link drop probabilities, overriding the default.
    link_drop: HashMap<(u32, u32), f64>,
    /// Active partitions: traffic between the two sides of any entry is
    /// cut in both directions.
    partitions: Vec<(HashSet<u32>, HashSet<u32>)>,
}

impl FaultPlan {
    /// Sets the drop probability for links without a per-link override.
    pub fn set_default_drop(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.default_drop = p;
    }

    /// Sets the drop probability of the directed link `from → to`.
    pub fn set_link_drop(&mut self, from: NodeId, to: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.link_drop.insert((from.0, to.0), p);
    }

    /// Cuts all traffic between `a` and `b`, in both directions. Stacks
    /// with existing partitions.
    pub fn partition(&mut self, a: &[NodeId], b: &[NodeId]) {
        let a: HashSet<u32> = a.iter().map(|n| n.0).collect();
        let b: HashSet<u32> = b.iter().map(|n| n.0).collect();
        self.partitions.push((a, b));
    }

    /// Removes every partition (link-drop probabilities stay).
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// Removes every fault: partitions and drop probabilities.
    pub fn clear(&mut self) {
        self.partitions.clear();
        self.link_drop.clear();
        self.default_drop = 0.0;
    }

    /// True when any fault is configured (the send path skips the fault
    /// check — and its RNG draw — entirely otherwise, so fault-free runs
    /// keep their exact historical event traces).
    pub fn active(&self) -> bool {
        self.default_drop > 0.0 || !self.link_drop.is_empty() || !self.partitions.is_empty()
    }

    /// Whether a partition currently severs `from → to`.
    pub fn partitioned(&self, from: NodeId, to: NodeId) -> bool {
        self.partitions.iter().any(|(a, b)| {
            (a.contains(&from.0) && b.contains(&to.0)) || (b.contains(&from.0) && a.contains(&to.0))
        })
    }

    /// Decides whether this send is lost, drawing from `rng` only when a
    /// probabilistic fault applies to the link.
    fn drops(&self, rng: &mut StdRng, from: NodeId, to: NodeId) -> bool {
        if self.partitioned(from, to) {
            return true;
        }
        let p = self
            .link_drop
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or(self.default_drop);
        p > 0.0 && rng.gen_bool(p)
    }
}

/// Everything the event loop owns besides the nodes themselves; split out so
/// a node and the [`Context`] can be borrowed simultaneously.
struct Core<M> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Event<M>>>,
    seq: u64,
    next_timer: u64,
    cancelled: HashSet<u64>,
    rng: StdRng,
    latency: Box<dyn LatencyModel>,
    alive: Vec<bool>,
    stats: Stats,
    undeliverable: Vec<(NodeId, NodeId)>,
    faults: FaultPlan,
    /// Queued events that gate quiescence (everything except maintenance
    /// timers); kept as a counter so `run_to_quiescence` can stop without
    /// scanning the heap.
    fg_events: usize,
}

impl<M: Message> Core<M> {
    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind<M>, maintenance: bool) {
        let seq = self.seq;
        self.seq += 1;
        if !maintenance {
            self.fg_events += 1;
        }
        self.queue.push(Reverse(Event {
            time,
            seq,
            node,
            kind,
            maintenance,
        }));
    }

    /// Pops the next event, keeping the foreground counter in sync.
    fn pop(&mut self) -> Option<Event<M>> {
        let Reverse(ev) = self.queue.pop()?;
        if !ev.maintenance {
            self.fg_events -= 1;
        }
        Some(ev)
    }
}

/// Handle passed to protocol callbacks for interacting with the simulated
/// world: sending messages, arming timers, reading the clock, randomness.
pub struct Context<'a, M> {
    core: &'a mut Core<M>,
    me: NodeId,
}

impl<M: Message> Context<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The id of the node this callback runs on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The simulation's deterministic random-number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// Sends `msg` to `to`; it will be delivered after a sampled one-way
    /// network delay. Messages to failed nodes are dropped (and recorded in
    /// the undeliverable log).
    ///
    /// Sending to oneself is allowed and delivered with the same sampled
    /// latency (loopback messages in the prototype still crossed the
    /// FreePastry dispatch path).
    pub fn send(&mut self, to: NodeId, msg: M) {
        let bytes = msg.size_bytes();
        self.core.stats.record_send(self.me, bytes);
        if let Some(tag) = msg.query_tag() {
            self.core.stats.record_query_msg(tag);
        }
        if !self.core.alive.get(to.index()).copied().unwrap_or(false) {
            self.core.stats.record_drop();
            self.core.undeliverable.push((self.me, to));
            return;
        }
        if self.core.faults.active() && self.core.faults.drops(&mut self.core.rng, self.me, to) {
            // Injected network loss: silent (no undeliverable entry) —
            // the sender of a packet lost in the network learns nothing.
            self.core.stats.bump("faults_dropped", 1);
            return;
        }
        let now = self.core.now;
        let delay = self
            .core
            .latency
            .sample(&mut self.core.rng, self.me, to, now);
        let at = self.core.now + delay;
        let from = self.me;
        self.core.stats.record_recv(to, bytes);
        self.core
            .push(at, to, EventKind::Deliver { from, msg }, false);
    }

    /// Arms a one-shot timer that fires on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.arm_timer(delay, tag, false)
    }

    /// Arms a one-shot *maintenance* timer: it fires during `run_for`
    /// like any other, but does not gate quiescence —
    /// [`Simulator::run_to_quiescence`] neither waits for nor fires it.
    /// For standing periodic work (lease clocks, subscription renewals)
    /// that would otherwise make a quiescence drain re-arm itself
    /// forever. A maintenance timer skipped by a drain may consequently
    /// fire *late* (at the clock position the drain reached).
    pub fn set_maintenance_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.arm_timer(delay, tag, true)
    }

    fn arm_timer(&mut self, delay: SimDuration, tag: TimerTag, maintenance: bool) -> TimerId {
        let id = TimerId(self.core.next_timer);
        self.core.next_timer += 1;
        let at = self.core.now + delay;
        let me = self.me;
        self.core
            .push(at, me, EventKind::Timer { id, tag }, maintenance);
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancelled.insert(id.0);
    }

    /// Increments a named experiment counter (see [`Stats::counter`]).
    pub fn count(&mut self, name: &'static str) {
        self.core.stats.bump(name, 1);
    }
}

/// The deterministic discrete-event simulator.
///
/// Generic over the hosted [`Protocol`]; all nodes in one simulator run the
/// same protocol type (heterogeneous roles are expressed as states of that
/// type, exactly as a single deployed binary would).
pub struct Simulator<P: Protocol> {
    nodes: Vec<Option<P>>,
    core: Core<P::Msg>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates an empty simulator with the given latency model and RNG seed.
    pub fn new(latency: impl LatencyModel + 'static, seed: u64) -> Simulator<P> {
        Simulator {
            nodes: Vec::new(),
            core: Core {
                now: SimTime::ZERO,
                queue: BinaryHeap::new(),
                seq: 0,
                next_timer: 0,
                cancelled: HashSet::new(),
                rng: StdRng::seed_from_u64(seed),
                latency: Box::new(latency),
                alive: Vec::new(),
                stats: Stats::default(),
                undeliverable: Vec::new(),
                faults: FaultPlan::default(),
                fg_events: 0,
            },
        }
    }

    /// The scriptable network-fault plan (lossy links, partitions).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.core.faults
    }

    /// Read access to the fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.core.faults
    }

    /// Adds a node and invokes its [`Protocol::on_start`]. Returns its id.
    pub fn add_node(&mut self, node: P) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.core.alive.push(true);
        self.core.stats.ensure_node(id);
        self.with_node(id, |n, ctx| n.on_start(ctx));
        id
    }

    /// Number of nodes ever added (including failed ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's state (for assertions/inspection).
    pub fn node(&self, id: NodeId) -> &P {
        self.nodes[id.index()]
            .as_ref()
            .expect("node is mid-dispatch")
    }

    /// Mutable access to a node's state *without* a context. Prefer
    /// [`Simulator::with_node`] when the mutation needs to send messages.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        self.nodes[id.index()]
            .as_mut()
            .expect("node is mid-dispatch")
    }

    /// Runs `f` against node `id` with a live [`Context`], so the closure
    /// can send messages and arm timers. This is how experiment drivers
    /// inject external stimuli (queries, attribute changes).
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>) -> R,
    ) -> R {
        let mut node = self.nodes[id.index()].take().expect("re-entrant with_node");
        let mut ctx = Context {
            core: &mut self.core,
            me: id,
        };
        let r = f(&mut node, &mut ctx);
        self.nodes[id.index()] = Some(node);
        r
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Message/byte accounting.
    pub fn stats(&self) -> &Stats {
        &self.core.stats
    }

    /// Mutable accounting access (e.g. to reset between experiment phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.core.stats
    }

    /// Marks a node failed: pending deliveries and timers for it are
    /// discarded, and future sends to it are dropped.
    pub fn fail_node(&mut self, id: NodeId) {
        self.core.alive[id.index()] = false;
    }

    /// Brings a failed node back (its in-memory state is retained, modeling
    /// a transient partition; for a cold restart, replace the state via
    /// [`Simulator::node_mut`] first).
    pub fn recover_node(&mut self, id: NodeId) {
        self.core.alive[id.index()] = true;
    }

    /// Whether the node is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.core.alive[id.index()]
    }

    /// Drains the log of (sender, dead-destination) pairs accumulated since
    /// the last call — a stand-in for FreePastry's failure notifications.
    pub fn take_undeliverable(&mut self) -> Vec<(NodeId, NodeId)> {
        std::mem::take(&mut self.core.undeliverable)
    }

    fn dispatch(&mut self, ev: Event<P::Msg>) {
        let id = ev.node;
        if !self.core.alive[id.index()] {
            if let EventKind::Deliver { .. } = ev.kind {
                self.core.stats.record_drop();
            }
            return;
        }
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                self.with_node(id, |n, ctx| n.on_message(ctx, from, msg));
            }
            EventKind::Timer { id: tid, tag } => {
                // Cancelled timers never reach here: both run loops purge
                // them (without advancing the clock) before dispatching.
                debug_assert!(!self.core.cancelled.contains(&tid.0), "unpurged timer");
                self.with_node(id, |n, ctx| n.on_timer(ctx, tag));
            }
        }
    }

    /// Processes events until no *foreground* events remain: pending
    /// deliveries and ordinary timers drain; maintenance timers stay
    /// queued (they would re-arm themselves forever). Returns the final
    /// time.
    ///
    /// # Panics
    ///
    /// Panics after 200 million events, which in practice indicates a
    /// protocol livelock (e.g. a self-rearming foreground timer).
    pub fn run_to_quiescence(&mut self) -> SimTime {
        assert!(
            self.run_events(200_000_000),
            "simulation did not quiesce within the event budget"
        );
        self.core.now
    }

    /// True when `ev` is a cancelled timer, consuming its cancellation
    /// mark. Cancelled timers are purged *without advancing the clock*:
    /// letting them drag `now` forward used to make every synchronous
    /// query inflate virtual time by its (cancelled) front-end deadline,
    /// expiring every TTL in the system between consecutive queries.
    fn purge_if_cancelled(&mut self, ev: &Event<P::Msg>) -> bool {
        match ev.kind {
            EventKind::Timer { id: tid, .. } => self.core.cancelled.remove(&tid.0),
            EventKind::Deliver { .. } => false,
        }
    }

    /// Processes at most `budget` foreground events; returns true if the
    /// foreground drained. Maintenance timers encountered on the way are
    /// set aside (unfired, clock untouched) and re-queued at the end.
    pub fn run_events(&mut self, budget: u64) -> bool {
        let mut stash: Vec<Event<P::Msg>> = Vec::new();
        for _ in 0..budget {
            if self.core.fg_events == 0 {
                break;
            }
            let Some(ev) = self.core.pop() else { break };
            if self.purge_if_cancelled(&ev) {
                continue;
            }
            if ev.maintenance {
                stash.push(ev);
                continue;
            }
            debug_assert!(ev.time >= self.core.now, "time went backwards");
            self.core.now = ev.time;
            self.dispatch(ev);
        }
        for ev in stash {
            self.core.queue.push(Reverse(ev));
        }
        self.core.fg_events == 0
    }

    /// Processes all events with `time <= until`, then advances the clock to
    /// `until` (even if idle). Later events stay queued.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            let due = matches!(self.core.queue.peek(),
                Some(Reverse(ev)) if ev.time <= until);
            if !due {
                break;
            }
            let ev = self.core.pop().expect("peeked");
            if self.purge_if_cancelled(&ev) {
                continue;
            }
            // A maintenance timer skipped by a quiescence drain can be
            // overdue; it fires late without moving the clock backwards.
            if ev.time > self.core.now {
                self.core.now = ev.time;
            }
            self.dispatch(ev);
        }
        if self.core.now < until {
            self.core.now = until;
        }
    }

    /// Runs the clock forward by `d` (see [`Simulator::run_until`]).
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.core.now + d;
        self.run_until(until);
    }

    /// Number of events currently queued (pending deliveries + timers).
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Constant;

    #[derive(Debug, Default)]
    struct Echo {
        got: Vec<(NodeId, u32)>,
        timer_fired: u32,
    }

    impl Protocol for Echo {
        type Msg = u32;
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.got.push((from, msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, _tag: TimerTag) {
            self.timer_fired += 1;
        }
    }

    fn sim() -> Simulator<Echo> {
        Simulator::new(Constant::from_millis(10), 1)
    }

    #[test]
    fn ping_pong_terminates_with_correct_time_and_counts() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let b = s.add_node(Echo::default());
        s.with_node(a, |_n, ctx| ctx.send(b, 3));
        let end = s.run_to_quiescence();
        // messages: 3 -> 2 -> 1 -> 0, i.e. 4 messages, 40 ms.
        assert_eq!(s.stats().total_messages(), 4);
        assert_eq!(end, SimDuration::from_millis(40).as_time());
        assert_eq!(s.node(b).got, vec![(a, 3), (a, 1)]);
        assert_eq!(s.node(a).got, vec![(b, 2), (b, 0)]);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let cancelled = s.with_node(a, |_n, ctx| {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            let t = ctx.set_timer(SimDuration::from_millis(6), 2);
            ctx.set_timer(SimDuration::from_millis(7), 3);
            t
        });
        s.with_node(a, |_n, ctx| ctx.cancel_timer(cancelled));
        s.run_to_quiescence();
        assert_eq!(s.node(a).timer_fired, 2);
    }

    #[test]
    fn failed_node_drops_messages_and_timers() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let b = s.add_node(Echo::default());
        s.fail_node(b);
        s.with_node(a, |_n, ctx| ctx.send(b, 5));
        s.run_to_quiescence();
        assert!(s.node(b).got.is_empty());
        assert_eq!(s.stats().dropped(), 1);
        assert_eq!(s.take_undeliverable(), vec![(a, b)]);
        assert!(s.take_undeliverable().is_empty());
    }

    #[test]
    fn in_flight_message_to_node_that_fails_is_dropped_at_delivery() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let b = s.add_node(Echo::default());
        s.with_node(a, |_n, ctx| ctx.send(b, 0));
        s.fail_node(b); // fails after send but before delivery
        s.run_to_quiescence();
        assert!(s.node(b).got.is_empty());
    }

    #[test]
    fn recovered_node_receives_again() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let b = s.add_node(Echo::default());
        s.fail_node(b);
        s.recover_node(b);
        s.with_node(a, |_n, ctx| ctx.send(b, 0));
        s.run_to_quiescence();
        assert_eq!(s.node(b).got.len(), 1);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let b = s.add_node(Echo::default());
        s.with_node(a, |_n, ctx| ctx.send(b, 10)); // would run 110 ms
        s.run_until(SimTime(35_000));
        assert_eq!(s.now(), SimTime(35_000));
        assert_eq!(s.stats().total_messages(), 4); // 3 delivered+1 queued? sent: at 0,10,20,30
        assert!(s.pending_events() > 0);
        s.run_to_quiescence();
        assert_eq!(s.stats().total_messages(), 11);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut s: Simulator<Echo> = Simulator::new(crate::latency::Lan::emulab(), 99);
            let a = s.add_node(Echo::default());
            let b = s.add_node(Echo::default());
            s.with_node(a, |_n, ctx| ctx.send(b, 20));
            s.run_to_quiescence();
            (s.now(), s.stats().total_messages())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn self_send_is_delivered() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        s.with_node(a, |_n, ctx| ctx.send(a, 0));
        s.run_to_quiescence();
        assert_eq!(s.node(a).got, vec![(a, 0)]);
    }

    #[test]
    fn partition_cuts_both_directions_and_heal_restores() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let b = s.add_node(Echo::default());
        s.faults_mut().partition(&[a], &[b]);
        assert!(s.faults().partitioned(a, b) && s.faults().partitioned(b, a));
        s.with_node(a, |_n, ctx| ctx.send(b, 0));
        s.with_node(b, |_n, ctx| ctx.send(a, 0));
        s.run_to_quiescence();
        assert!(s.node(a).got.is_empty());
        assert!(s.node(b).got.is_empty());
        assert_eq!(s.stats().counter("faults_dropped"), 2);
        // Partition loss is silent: no undeliverable notifications.
        assert!(s.take_undeliverable().is_empty());
        s.faults_mut().heal();
        s.with_node(a, |_n, ctx| ctx.send(b, 0));
        s.run_to_quiescence();
        assert_eq!(s.node(b).got.len(), 1);
    }

    #[test]
    fn link_drop_probability_loses_about_that_fraction() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        let b = s.add_node(Echo::default());
        s.faults_mut().set_link_drop(a, b, 0.5);
        for _ in 0..200 {
            s.with_node(a, |_n, ctx| ctx.send(b, 0));
        }
        s.run_to_quiescence();
        let got = s.node(b).got.len();
        assert!((60..=140).contains(&got), "half-lossy link delivered {got}");
        assert_eq!(s.stats().counter("faults_dropped") as usize, 200 - got);
        // The reverse direction is untouched.
        s.with_node(b, |_n, ctx| ctx.send(a, 0));
        s.run_to_quiescence();
        assert_eq!(s.node(a).got.len(), 1);
    }

    #[test]
    fn fault_free_runs_keep_their_exact_trace() {
        // Guard: an inactive FaultPlan must not disturb the RNG stream.
        let run = |touch_faults: bool| {
            let mut s: Simulator<Echo> = Simulator::new(crate::latency::Lan::emulab(), 5);
            let a = s.add_node(Echo::default());
            let b = s.add_node(Echo::default());
            if touch_faults {
                s.faults_mut().set_default_drop(0.0);
            }
            s.with_node(a, |_n, ctx| ctx.send(b, 10));
            s.run_to_quiescence();
            (s.now(), s.stats().total_messages())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn maintenance_timers_do_not_gate_quiescence() {
        #[derive(Debug, Default)]
        struct Renewer {
            fired: u32,
        }
        impl Protocol for Renewer {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_maintenance_timer(SimDuration::from_millis(10), 0);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: NodeId, _msg: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _tag: TimerTag) {
                // Standing periodic work: re-arms itself forever.
                self.fired += 1;
                ctx.set_maintenance_timer(SimDuration::from_millis(10), 0);
            }
        }
        let mut s: Simulator<Renewer> = Simulator::new(Constant::from_millis(1), 3);
        let a = s.add_node(Renewer::default());
        // Quiescence terminates immediately and fires nothing.
        let end = s.run_to_quiescence();
        assert_eq!(end, SimTime::ZERO);
        assert_eq!(s.node(a).fired, 0);
        // run_for fires the standing timer on schedule.
        s.run_for(SimDuration::from_millis(35));
        assert_eq!(s.node(a).fired, 3);
        // A quiescence drain in between leaves the schedule intact.
        s.run_to_quiescence();
        s.run_for(SimDuration::from_millis(10));
        assert_eq!(s.node(a).fired, 4);
    }

    #[test]
    fn custom_counters_accumulate() {
        let mut s = sim();
        let a = s.add_node(Echo::default());
        s.with_node(a, |_n, ctx| {
            ctx.count("probes");
            ctx.count("probes");
        });
        assert_eq!(s.stats().counter("probes"), 2);
        assert_eq!(s.stats().counter("absent"), 0);
    }
}

//! Link-latency models emulating the paper's evaluation platforms.
//!
//! The model returns the **one-way delay** for a message from one node to
//! another. Three models are provided, matching the three environments in
//! the paper's Section 7:
//!
//! * [`Constant`] — fixed delay; used by unit tests and the pure
//!   message-counting simulations (Figures 9–11), where only message counts
//!   matter and virtual time is irrelevant.
//! * [`Lan`] — Emulab-style datacenter LAN: a small base propagation delay
//!   with uniform jitter plus a per-message processing cost (Figures 12–13).
//! * [`Wan`] — PlanetLab-style wide area network: log-normal link RTTs plus
//!   a per-node "slowness" factor with a heavy tail (a small fraction of
//!   nodes are stragglers that take seconds to respond). This reproduces
//!   the shape of the paper's Figures 14–16, where the median response is
//!   1–2 s but the tail stretches to tens of seconds because of a few
//!   bottleneck hosts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::NodeId;
use crate::time::SimDuration;

use crate::time::SimTime;

/// Samples the one-way delay of a message between two simulated nodes.
///
/// `now` is the send instant; stateful models use it to serialize
/// processing at a busy receiver (software queueing), which is what makes
/// large fan-ins slow on real deployments.
pub trait LatencyModel {
    /// One-way delay for a message sent from `from` to `to` at `now`.
    fn sample(&mut self, rng: &mut StdRng, from: NodeId, to: NodeId, now: SimTime) -> SimDuration;
}

impl LatencyModel for Box<dyn LatencyModel> {
    fn sample(&mut self, rng: &mut StdRng, from: NodeId, to: NodeId, now: SimTime) -> SimDuration {
        (**self).sample(rng, from, to, now)
    }
}

/// A fixed one-way delay, independent of endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Constant(pub SimDuration);

impl Constant {
    /// A constant delay of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Constant {
        Constant(SimDuration::from_millis(ms))
    }

    /// A constant delay of `us` microseconds.
    pub fn from_micros(us: u64) -> Constant {
        Constant(SimDuration::from_micros(us))
    }
}

impl LatencyModel for Constant {
    fn sample(
        &mut self,
        _rng: &mut StdRng,
        _from: NodeId,
        _to: NodeId,
        _now: SimTime,
    ) -> SimDuration {
        self.0
    }
}

/// Emulab-style LAN: base propagation + uniform jitter + a per-message
/// processing cost that **serializes at the receiver**.
///
/// The defaults model the paper's Emulab setup (50 physical machines on a
/// 100 Mbps LAN running 10 Moara instances each): ~0.2 ms wire latency and
/// ~0.8 ms of software processing per message (Java serialization,
/// FreePastry dispatch). Processing is queued per receiver — a node fed
/// `k` concurrent messages takes `k × processing` to absorb them — which
/// reproduces the fan-in-bound latencies of the paper's Figure 12: a
/// global broadcast over 500 nodes is limited by busy interior nodes,
/// while a 32-node group query barely queues at all.
#[derive(Clone, Debug)]
pub struct Lan {
    /// Fixed wire propagation delay.
    pub base: SimDuration,
    /// Uniform jitter added on top of `base` (0..=jitter).
    pub jitter: SimDuration,
    /// Per-message processing cost at the receiver (serialized).
    pub processing: SimDuration,
    /// Per-receiver earliest-free time (queueing state).
    busy_until: Vec<SimTime>,
}

impl Lan {
    /// The default Emulab-like LAN model used by the figure harnesses.
    pub fn emulab() -> Lan {
        Lan {
            base: SimDuration::from_micros(200),
            jitter: SimDuration::from_micros(300),
            processing: SimDuration::from_micros(800),
            busy_until: Vec::new(),
        }
    }
}

impl Default for Lan {
    fn default() -> Lan {
        Lan::emulab()
    }
}

impl LatencyModel for Lan {
    fn sample(&mut self, rng: &mut StdRng, _from: NodeId, to: NodeId, now: SimTime) -> SimDuration {
        let jitter = if self.jitter.as_micros() == 0 {
            0
        } else {
            rng.gen_range(0..=self.jitter.as_micros())
        };
        let wire = self.base + SimDuration::from_micros(jitter);
        let arrival = now + wire;
        if self.busy_until.len() <= to.index() {
            self.busy_until.resize(to.index() + 1, SimTime::ZERO);
        }
        let start = self.busy_until[to.index()].max(arrival);
        let done = start + self.processing;
        self.busy_until[to.index()] = done;
        done.duration_since(now)
    }
}

/// How slow a WAN node is, drawn once per node at model construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeClass {
    /// Responsive PlanetLab host.
    Fast,
    /// Loaded host: hundreds of milliseconds of scheduling delay.
    Slow,
    /// Overloaded/straggler host: around a second of delay (the paper's
    /// "bottleneck" nodes in Figure 16).
    Straggler,
    /// Effectively thrashing host: tens of seconds — the nodes that gate a
    /// centralized aggregator which must wait for *everyone* (Figure 15).
    Extreme,
}

/// PlanetLab-style WAN latency model.
///
/// One-way delay = half a log-normal link RTT plus the receiver's
/// processing delay. Processing is the product of a per-node
/// *characteristic base* (drawn once, from a fast / slow / straggler
/// mixture — repeated messages to a loaded host stay slow, producing the
/// bottleneck-link behaviour of the paper's Figure 16) and a heavy-tailed
/// per-message multiplier (Pareto-like — PlanetLab scheduling noise, which
/// produces the long CDF tails of Figures 14–15).
#[derive(Clone, Debug)]
pub struct Wan {
    /// Median link RTT.
    pub median_rtt: SimDuration,
    /// Sigma of the underlying normal for the log-normal RTT.
    pub rtt_sigma: f64,
    /// Pareto tail exponent of the per-message multiplier.
    pub tail_alpha: f64,
    /// Cap on the per-message multiplier.
    pub tail_cap: f64,
    /// Per-node characteristic processing delay, indexed by `NodeId`.
    node_delay: Vec<SimDuration>,
    classes: Vec<NodeClass>,
}

impl Wan {
    /// Builds a PlanetLab-like model for `n` nodes.
    ///
    /// Class mix: 85% fast (10–60 ms), 11% slow (100–400 ms), 3% straggler
    /// (0.4–1.2 s characteristic, with per-message spikes an order of
    /// magnitude above), 1% extreme/thrashing (5–15 s).
    pub fn planetlab(n: usize, seed: u64) -> Wan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut node_delay = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        for _ in 0..n {
            let roll: f64 = rng.gen();
            let (class, delay_ms) = if roll < 0.85 {
                (NodeClass::Fast, rng.gen_range(10.0..60.0))
            } else if roll < 0.96 {
                (NodeClass::Slow, rng.gen_range(100.0..400.0))
            } else if roll < 0.99 {
                (NodeClass::Straggler, rng.gen_range(400.0..1_200.0))
            } else {
                (NodeClass::Extreme, rng.gen_range(5_000.0..15_000.0))
            };
            node_delay.push(SimDuration::from_secs_f64(delay_ms / 1_000.0));
            classes.push(class);
        }
        Wan {
            median_rtt: SimDuration::from_millis(80),
            rtt_sigma: 0.5,
            tail_alpha: 1.6,
            tail_cap: 15.0,
            node_delay,
            classes,
        }
    }

    /// True for hosts a user would actually schedule work on (fast/slow
    /// classes) — PlanetLab slices avoid thrashing machines, while a
    /// centralized monitor still polls them.
    pub fn is_responsive(&self, id: NodeId) -> bool {
        self.classes
            .get(id.0 as usize)
            .is_some_and(|c| matches!(c, NodeClass::Fast | NodeClass::Slow))
    }

    /// A copy of the model with thrashing (extreme-class) hosts demoted to
    /// ordinary stragglers — a deployment whose worst nodes are merely
    /// overloaded, not dead.
    pub fn without_extremes(mut self) -> Wan {
        for (c, d) in self.classes.iter_mut().zip(self.node_delay.iter_mut()) {
            if *c == NodeClass::Extreme {
                *c = NodeClass::Straggler;
                *d = SimDuration::from_millis(1_200);
            }
        }
        self
    }

    /// The characteristic processing delay of node `id` (excluding link
    /// RTT and the per-message tail multiplier).
    pub fn node_delay(&self, id: NodeId) -> SimDuration {
        self.node_delay
            .get(id.0 as usize)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// True if node `id` was drawn in one of the slowest classes
    /// (straggler or extreme).
    pub fn is_straggler(&self, id: NodeId) -> bool {
        self.classes
            .get(id.0 as usize)
            .is_some_and(|c| matches!(c, NodeClass::Straggler | NodeClass::Extreme))
    }

    /// The worst-case one-way delay toward `to` (used by the offline
    /// bottleneck analysis of Figure 16): node processing + median RTT.
    pub fn nominal_delay(&self, to: NodeId) -> SimDuration {
        self.node_delay(to) + SimDuration::from_micros(self.median_rtt.as_micros() / 2)
    }

    fn sample_rtt(&self, rng: &mut StdRng) -> SimDuration {
        // Log-normal around `median_rtt`: exp(N(ln(median), sigma)).
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let ln_med = (self.median_rtt.as_micros() as f64).ln();
        let sampled = (ln_med + self.rtt_sigma * z).exp();
        SimDuration::from_micros(sampled.min(60_000_000.0) as u64)
    }
}

impl LatencyModel for Wan {
    fn sample(
        &mut self,
        rng: &mut StdRng,
        _from: NodeId,
        to: NodeId,
        _now: SimTime,
    ) -> SimDuration {
        let rtt = self.sample_rtt(rng);
        let one_way = SimDuration::from_micros(rtt.as_micros() / 2);
        // Heavy-tailed per-message processing: base × Pareto(alpha), capped.
        let u: f64 = rng.gen_range(1e-9..1.0);
        let mult = u.powf(-1.0 / self.tail_alpha).min(self.tail_cap);
        let proc = SimDuration::from_secs_f64(self.node_delay(to).as_secs_f64() * mult);
        one_way + proc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = Constant::from_millis(3);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                m.sample(&mut r, NodeId(0), NodeId(1), SimTime::ZERO),
                SimDuration::from_millis(3)
            );
        }
    }

    #[test]
    fn lan_first_message_within_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let mut m = Lan::emulab();
            let d = m.sample(&mut r, NodeId(0), NodeId(1), SimTime::ZERO);
            assert!(d >= m.base + m.processing);
            assert!(d <= m.base + m.jitter + m.processing);
        }
    }

    #[test]
    fn lan_concurrent_messages_queue_at_receiver() {
        let mut m = Lan::emulab();
        let mut r = rng();
        // A burst of messages to the same receiver at the same instant
        // serializes: each takes at least `processing` longer than the one
        // before.
        let mut prev = SimDuration::ZERO;
        for i in 0..10 {
            let d = m.sample(&mut r, NodeId(0), NodeId(1), SimTime::ZERO);
            if i > 0 {
                assert!(d >= prev + m.processing, "message {i} did not queue");
            }
            prev = d;
        }
        // A different receiver is unaffected.
        let other = m.sample(&mut r, NodeId(0), NodeId(2), SimTime::ZERO);
        assert!(other <= m.base + m.jitter + m.processing);
    }

    #[test]
    fn wan_has_heavy_tail_and_is_per_node_correlated() {
        let n = 400;
        let m = Wan::planetlab(n, 11);
        let stragglers: Vec<_> = (0..n)
            .filter(|&i| m.is_straggler(NodeId(i as u32)))
            .collect();
        // ~5% stragglers expected; allow slack but require some exist.
        assert!(!stragglers.is_empty());
        assert!(stragglers.len() < n / 5);
        // Straggler delays dominate fast-node delays.
        let fast = (0..n)
            .map(|i| NodeId(i as u32))
            .find(|&id| !m.is_straggler(id) && m.node_delay(id) < SimDuration::from_millis(100))
            .expect("some fast node");
        let strag = NodeId(stragglers[0] as u32);
        assert!(m.node_delay(strag) > m.node_delay(fast));
        assert!(m.node_delay(strag) >= SimDuration::from_millis(400));
    }

    #[test]
    fn wan_sample_includes_receiver_delay() {
        let mut m = Wan::planetlab(10, 5);
        let mut r = rng();
        let to = NodeId(3);
        let d = m.sample(&mut r, NodeId(0), to, SimTime::ZERO);
        assert!(d >= m.node_delay(to));
    }

    #[test]
    fn wan_deterministic_per_seed() {
        let a = Wan::planetlab(50, 99);
        let b = Wan::planetlab(50, 99);
        for i in 0..50 {
            assert_eq!(a.node_delay(NodeId(i)), b.node_delay(NodeId(i)));
        }
    }
}

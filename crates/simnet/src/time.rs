//! Virtual time for the discrete-event simulator.
//!
//! Time is measured in integer microseconds since the start of the
//! simulation, which keeps event ordering exact and the simulation
//! deterministic (no floating-point accumulation error).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulator's virtual clock, in microseconds since start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since the start of the simulation.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the start of the simulation (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since the start of the simulation.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s.saturating_mul(1_000_000))
    }

    /// Builds a duration from fractional seconds, rounding to microseconds.
    ///
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// The duration in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Reinterprets the duration as an instant that far from time zero.
    pub fn as_time(self) -> SimTime {
        SimTime(self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(1500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_since_subtracts() {
        let a = SimTime(2_000);
        let b = SimTime(5_500);
        assert_eq!(b.duration_since(a), SimDuration(3_500));
        assert_eq!(b - a, SimDuration(3_500));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(1_500_000).to_string(), "1.500s");
        assert_eq!(SimDuration(2_500).to_string(), "2.500ms");
    }
}

//! # moara-simnet
//!
//! A deterministic discrete-event network simulator used as the execution
//! substrate for the Moara reproduction.
//!
//! The Moara paper evaluates on three platforms: the FreePastry simulator
//! (bandwidth experiments up to 16 384 nodes), Emulab (a 500-node LAN
//! emulating a datacenter), and PlanetLab (a 200-node wide-area deployment).
//! This crate stands in for all three. Protocol code runs unmodified as
//! message-passing state machines (the [`Protocol`] trait); the choice of
//! [`LatencyModel`] selects the platform being emulated:
//!
//! * [`latency::Constant`] / [`latency::Lan`] — Emulab-style low-latency LAN.
//! * [`latency::Wan`] — PlanetLab-style heavy-tailed wide-area latencies with
//!   straggler nodes.
//!
//! Every message is counted (and sized) per node so that the bandwidth
//! figures of the paper (Figures 9–11) can be regenerated, and the virtual
//! clock gives the latency figures (Figures 12–16).
//!
//! # Example
//!
//! ```
//! use moara_simnet::{Context, NodeId, Protocol, SimDuration, Simulator, TimerTag};
//! use moara_simnet::latency::Constant;
//!
//! /// A node that forwards a counter to its successor until it reaches 10.
//! struct Relay {
//!     next: NodeId,
//! }
//!
//! impl Protocol for Relay {
//!     type Msg = u32;
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: NodeId, msg: u32) {
//!         if msg < 10 {
//!             ctx.send(self.next, msg + 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, _tag: TimerTag) {}
//! }
//!
//! let mut sim = Simulator::new(Constant::from_millis(1), 42);
//! let a = sim.add_node(Relay { next: NodeId(1) });
//! let b = sim.add_node(Relay { next: NodeId(0) });
//! sim.with_node(a, |_node, ctx| ctx.send(b, 0));
//! sim.run_to_quiescence();
//! assert_eq!(sim.stats().total_messages(), 11);
//! assert_eq!(sim.now(), SimDuration::from_millis(11).as_time());
//! ```

pub mod latency;
mod sim;
mod stats;
mod time;

pub use latency::LatencyModel;
pub use sim::{Context, FaultPlan, Message, NodeId, Protocol, Simulator, TimerId, TimerTag};
pub use stats::Stats;
pub use time::{SimDuration, SimTime};

//! Per-node message and byte accounting.
//!
//! The paper's bandwidth figures (Figures 9–11) report "number of messages
//! per node"; [`Stats`] keeps exactly that, plus byte counts and free-form
//! named counters for experiment-specific events (e.g. size probes).

use std::collections::{HashMap, VecDeque};

use crate::sim::NodeId;

/// How many distinct query tags [`Stats`] keeps per-query counts for.
/// Oldest tags are dropped beyond this, bounding memory in run-forever
/// deployments where the per-query view is only read by harnesses.
pub const QUERY_TAG_CAP: usize = 8192;

/// Message/byte accounting for a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    sent_msgs: Vec<u64>,
    recv_msgs: Vec<u64>,
    sent_bytes: Vec<u64>,
    recv_bytes: Vec<u64>,
    dropped: u64,
    counters: HashMap<&'static str, u64>,
    per_query: HashMap<u64, u64>,
    query_order: VecDeque<u64>,
}

impl Stats {
    /// Makes sure per-node vectors cover `id` (transports call this when
    /// hosting a node).
    pub fn ensure_node(&mut self, id: NodeId) {
        let need = id.index() + 1;
        if self.sent_msgs.len() < need {
            self.sent_msgs.resize(need, 0);
            self.recv_msgs.resize(need, 0);
            self.sent_bytes.resize(need, 0);
            self.recv_bytes.resize(need, 0);
        }
    }

    /// Accounts one sent message of `bytes` bytes.
    pub fn record_send(&mut self, from: NodeId, bytes: usize) {
        self.ensure_node(from);
        self.sent_msgs[from.index()] += 1;
        self.sent_bytes[from.index()] += bytes as u64;
    }

    /// Accounts one received message of `bytes` bytes.
    pub fn record_recv(&mut self, to: NodeId, bytes: usize) {
        self.ensure_node(to);
        self.recv_msgs[to.index()] += 1;
        self.recv_bytes[to.index()] += bytes as u64;
    }

    /// Accounts a message dropped at (or en route to) a failed node.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Adds `by` to the named experiment counter.
    pub fn bump(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Accounts one sent message attributed to the query with `tag`
    /// (see `Message::query_tag`). Keeps at most [`QUERY_TAG_CAP`]
    /// distinct tags, evicting the oldest.
    pub fn record_query_msg(&mut self, tag: u64) {
        use std::collections::hash_map::Entry;
        match self.per_query.entry(tag) {
            Entry::Occupied(mut e) => *e.get_mut() += 1,
            Entry::Vacant(e) => {
                e.insert(1);
                self.query_order.push_back(tag);
                if self.query_order.len() > QUERY_TAG_CAP {
                    if let Some(old) = self.query_order.pop_front() {
                        self.per_query.remove(&old);
                    }
                }
            }
        }
    }

    /// Messages attributed to the query with `tag` (0 if unknown or
    /// evicted). This is per-query accounting that stays correct when
    /// queries overlap, unlike a global before/after message snapshot.
    pub fn messages_for_query(&self, tag: u64) -> u64 {
        self.per_query.get(&tag).copied().unwrap_or(0)
    }

    /// Total messages sent across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.sent_msgs.iter().sum()
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Total messages received across all nodes.
    pub fn total_recv_messages(&self) -> u64 {
        self.recv_msgs.iter().sum()
    }

    /// Total bytes received across all nodes.
    pub fn total_recv_bytes(&self) -> u64 {
        self.recv_bytes.iter().sum()
    }

    /// All named experiment counters, unordered — the observability
    /// plane's bulk export (`/metrics` snapshots every counter without
    /// naming each one).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Messages sent by a single node.
    pub fn sent_by(&self, id: NodeId) -> u64 {
        self.sent_msgs.get(id.index()).copied().unwrap_or(0)
    }

    /// Messages received by a single node.
    pub fn received_by(&self, id: NodeId) -> u64 {
        self.recv_msgs.get(id.index()).copied().unwrap_or(0)
    }

    /// Bytes sent by a single node.
    pub fn bytes_sent_by(&self, id: NodeId) -> u64 {
        self.sent_bytes.get(id.index()).copied().unwrap_or(0)
    }

    /// Average messages sent per node — the y-axis of the paper's Figure 9.
    pub fn messages_per_node(&self) -> f64 {
        if self.sent_msgs.is_empty() {
            return 0.0;
        }
        self.total_messages() as f64 / self.sent_msgs.len() as f64
    }

    /// The node that sent the most messages (hot spot analysis).
    pub fn max_sent(&self) -> u64 {
        self.sent_msgs.iter().copied().max().unwrap_or(0)
    }

    /// Messages dropped because the destination had failed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Value of a named experiment counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Zeroes all counts but keeps the node roster — used between the warmup
    /// and measurement phases of an experiment.
    pub fn reset(&mut self) {
        for v in self
            .sent_msgs
            .iter_mut()
            .chain(self.recv_msgs.iter_mut())
            .chain(self.sent_bytes.iter_mut())
            .chain(self.recv_bytes.iter_mut())
        {
            *v = 0;
        }
        self.dropped = 0;
        self.counters.clear();
        self.per_query.clear();
        self.query_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_accounting() {
        let mut s = Stats::default();
        s.ensure_node(NodeId(2));
        s.record_send(NodeId(0), 100);
        s.record_send(NodeId(0), 50);
        s.record_recv(NodeId(2), 150);
        assert_eq!(s.sent_by(NodeId(0)), 2);
        assert_eq!(s.bytes_sent_by(NodeId(0)), 150);
        assert_eq!(s.received_by(NodeId(2)), 1);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 150);
        assert!((s.messages_per_node() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_sent(), 2);
    }

    #[test]
    fn reset_keeps_roster() {
        let mut s = Stats::default();
        s.record_send(NodeId(5), 10);
        s.bump("x", 3);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.counter("x"), 0);
        assert_eq!(s.sent_by(NodeId(5)), 0);
        assert!((s.messages_per_node() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_node_reads_as_zero() {
        let s = Stats::default();
        assert_eq!(s.sent_by(NodeId(99)), 0);
        assert_eq!(s.received_by(NodeId(99)), 0);
    }

    #[test]
    fn per_query_accounting_is_independent_per_tag() {
        let mut s = Stats::default();
        s.record_query_msg(1);
        s.record_query_msg(1);
        s.record_query_msg(2);
        assert_eq!(s.messages_for_query(1), 2);
        assert_eq!(s.messages_for_query(2), 1);
        assert_eq!(s.messages_for_query(3), 0);
        s.reset();
        assert_eq!(s.messages_for_query(1), 0);
    }

    #[test]
    fn per_query_tags_are_bounded() {
        let mut s = Stats::default();
        for tag in 0..(QUERY_TAG_CAP as u64 + 10) {
            s.record_query_msg(tag);
        }
        // The oldest tags fell off; the newest survive.
        assert_eq!(s.messages_for_query(0), 0);
        assert_eq!(s.messages_for_query(QUERY_TAG_CAP as u64 + 9), 1);
    }
}

//! Per-node message and byte accounting.
//!
//! The paper's bandwidth figures (Figures 9–11) report "number of messages
//! per node"; [`Stats`] keeps exactly that, plus byte counts and free-form
//! named counters for experiment-specific events (e.g. size probes).

use std::collections::HashMap;

use crate::sim::NodeId;

/// Message/byte accounting for a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    sent_msgs: Vec<u64>,
    recv_msgs: Vec<u64>,
    sent_bytes: Vec<u64>,
    recv_bytes: Vec<u64>,
    dropped: u64,
    counters: HashMap<&'static str, u64>,
}

impl Stats {
    /// Makes sure per-node vectors cover `id` (transports call this when
    /// hosting a node).
    pub fn ensure_node(&mut self, id: NodeId) {
        let need = id.index() + 1;
        if self.sent_msgs.len() < need {
            self.sent_msgs.resize(need, 0);
            self.recv_msgs.resize(need, 0);
            self.sent_bytes.resize(need, 0);
            self.recv_bytes.resize(need, 0);
        }
    }

    /// Accounts one sent message of `bytes` bytes.
    pub fn record_send(&mut self, from: NodeId, bytes: usize) {
        self.ensure_node(from);
        self.sent_msgs[from.index()] += 1;
        self.sent_bytes[from.index()] += bytes as u64;
    }

    /// Accounts one received message of `bytes` bytes.
    pub fn record_recv(&mut self, to: NodeId, bytes: usize) {
        self.ensure_node(to);
        self.recv_msgs[to.index()] += 1;
        self.recv_bytes[to.index()] += bytes as u64;
    }

    /// Accounts a message dropped at (or en route to) a failed node.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Adds `by` to the named experiment counter.
    pub fn bump(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Total messages sent across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.sent_msgs.iter().sum()
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Messages sent by a single node.
    pub fn sent_by(&self, id: NodeId) -> u64 {
        self.sent_msgs.get(id.index()).copied().unwrap_or(0)
    }

    /// Messages received by a single node.
    pub fn received_by(&self, id: NodeId) -> u64 {
        self.recv_msgs.get(id.index()).copied().unwrap_or(0)
    }

    /// Bytes sent by a single node.
    pub fn bytes_sent_by(&self, id: NodeId) -> u64 {
        self.sent_bytes.get(id.index()).copied().unwrap_or(0)
    }

    /// Average messages sent per node — the y-axis of the paper's Figure 9.
    pub fn messages_per_node(&self) -> f64 {
        if self.sent_msgs.is_empty() {
            return 0.0;
        }
        self.total_messages() as f64 / self.sent_msgs.len() as f64
    }

    /// The node that sent the most messages (hot spot analysis).
    pub fn max_sent(&self) -> u64 {
        self.sent_msgs.iter().copied().max().unwrap_or(0)
    }

    /// Messages dropped because the destination had failed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Value of a named experiment counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Zeroes all counts but keeps the node roster — used between the warmup
    /// and measurement phases of an experiment.
    pub fn reset(&mut self) {
        for v in self
            .sent_msgs
            .iter_mut()
            .chain(self.recv_msgs.iter_mut())
            .chain(self.sent_bytes.iter_mut())
            .chain(self.recv_bytes.iter_mut())
        {
            *v = 0;
        }
        self.dropped = 0;
        self.counters.clear();
    }

    /// Snapshot of total messages, for measuring deltas around an operation.
    pub fn message_snapshot(&self) -> u64 {
        self.total_messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_accounting() {
        let mut s = Stats::default();
        s.ensure_node(NodeId(2));
        s.record_send(NodeId(0), 100);
        s.record_send(NodeId(0), 50);
        s.record_recv(NodeId(2), 150);
        assert_eq!(s.sent_by(NodeId(0)), 2);
        assert_eq!(s.bytes_sent_by(NodeId(0)), 150);
        assert_eq!(s.received_by(NodeId(2)), 1);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 150);
        assert!((s.messages_per_node() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_sent(), 2);
    }

    #[test]
    fn reset_keeps_roster() {
        let mut s = Stats::default();
        s.record_send(NodeId(5), 10);
        s.bump("x", 3);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.counter("x"), 0);
        assert_eq!(s.sent_by(NodeId(5)), 0);
        assert!((s.messages_per_node() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_node_reads_as_zero() {
        let s = Stats::default();
        assert_eq!(s.sent_by(NodeId(99)), 0);
        assert_eq!(s.received_by(NodeId(99)), 0);
    }
}

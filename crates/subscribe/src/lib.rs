//! # moara-subscribe
//!
//! The continuous-query subscription plane: leased standing queries with
//! **incremental in-network re-aggregation**.
//!
//! A one-shot Moara query pays tree-depth latency and `O(group)` messages
//! every time a dashboard polls it, even when nothing changed. A
//! *subscription* installs the parsed composite query once: the front-end
//! pins the chosen cover's aggregation trees, every tree node keeps one
//! partial aggregate per reporting child (a [`DeltaFold`]), and from then
//! on a node pushes a *replacement delta* — its subtree's new partial
//! aggregate — upward **only when that aggregate changed**. A quiescent
//! subtree sends nothing; a local attribute change travels root-ward
//! through exactly the hops whose merged aggregate it alters.
//!
//! The pieces here are pure state (no message I/O), driven by the node
//! layer in `moara-core`:
//!
//! * [`SubId`] / [`SubSpec`] — the wire identity and install payload of a
//!   subscription (query, delivery policy, lease, pinned cover).
//! * [`DeliveryPolicy`] — when the *subscriber* hears about changes:
//!   on-change, periodic snapshots, or threshold crossings.
//! * [`SubEntry`] — per-(subscription, tree) state at a tree node: the
//!   delta fold over child summaries + the local contribution, the push
//!   target, suppression state, and the lease deadline.
//! * [`WatchState`] — the front-end's view: per-tree-root partial
//!   aggregates, merged into the client-visible result, with the policy
//!   deciding which changes surface as [`SubUpdate`]s.
//!
//! Leases make the plane self-cleaning: the front-end renews at half the
//! lease; a node whose lease lapses (subscriber gone, partition outlived
//! the lease) garbage-collects the entry, so no crash can leak standing
//! state forever. Churn repair is top-down: confirmed failures remove the
//! failed child's summary (the result shrinks within one SWIM confirm),
//! and reconciliation re-installs the subscription along the repaired
//! tree. See `docs/continuous-queries.md` for the protocol walk-through.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use moara_aggregation::{AggResult, AggState, DeltaFold, LOCAL_SOURCE};
use moara_dht::Id;
use moara_query::Query;
use moara_simnet::{NodeId, SimDuration, SimTime};
use moara_wire::{Wire, WireError};

/// Identifies one subscription end-to-end: (origin front-end, per-origin
/// counter). Distinct from `QueryId` — subscriptions are standing state,
/// not in-flight queries — but packed the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId {
    /// The front-end node that installed the subscription.
    pub origin: NodeId,
    /// Its per-origin sequence number.
    pub n: u64,
}

impl Wire for SubId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin.encode(out);
        self.n.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SubId {
            origin: Wire::decode(buf)?,
            n: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        12
    }
}

/// When the subscriber hears about changes to the standing result.
///
/// The in-network plane always propagates deltas on change (that is what
/// keeps it cheap); the policy governs only the *client-visible* emission
/// at the front-end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeliveryPolicy {
    /// Emit every change to the merged result.
    OnChange,
    /// Emit a snapshot every period, changed or not (poll-equivalent
    /// freshness without the poll's per-period tree traffic).
    Periodic(SimDuration),
    /// Emit when the scalar result crosses `value` (either direction),
    /// plus the initial result.
    Threshold {
        /// The boundary being watched.
        value: f64,
    },
}

impl Wire for DeliveryPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DeliveryPolicy::OnChange => out.push(0),
            DeliveryPolicy::Periodic(d) => {
                out.push(1);
                d.as_micros().encode(out);
            }
            DeliveryPolicy::Threshold { value } => {
                out.push(2);
                value.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => DeliveryPolicy::OnChange,
            1 => {
                let us = u64::decode(buf)?;
                if us == 0 {
                    // A zero period would re-arm its snapshot timer
                    // forever without the clock advancing.
                    return Err(WireError::Invalid("zero delivery period"));
                }
                DeliveryPolicy::Periodic(SimDuration::from_micros(us))
            }
            2 => {
                let value = f64::decode(buf)?;
                if value.is_nan() {
                    return Err(WireError::Invalid("NaN threshold"));
                }
                DeliveryPolicy::Threshold { value }
            }
            _ => return Err(WireError::Invalid("DeliveryPolicy tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            DeliveryPolicy::OnChange => 0,
            DeliveryPolicy::Periodic(_) | DeliveryPolicy::Threshold { .. } => 8,
        }
    }
}

/// Everything a node needs to host (or re-install) a subscription: the
/// full install payload, carried by `Subscribe` frames so installation is
/// idempotent and repair can happen anywhere in the tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SubSpec {
    /// End-to-end subscription id.
    pub id: SubId,
    /// The standing query (nodes evaluate the entire composite predicate,
    /// exactly as for one-shot queries).
    pub query: Query,
    /// Client-visible delivery policy (interpreted at the front-end).
    pub policy: DeliveryPolicy,
    /// Lease duration: state not renewed for this long is garbage
    /// collected everywhere.
    pub lease: SimDuration,
    /// The subscribing front-end (tree roots push to it directly).
    pub owner: NodeId,
    /// The pinned cover: the predicate keys of every tree this
    /// subscription runs on, sorted. A node satisfying the composite
    /// predicate contributes on the *first* cover tree whose group it
    /// belongs to — the standing-query analogue of the paper's one-shot
    /// duplicate suppression (Section 6.2), decided locally and
    /// deterministically so overlapping groups never double-count.
    pub cover: Vec<String>,
}

impl Wire for SubSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.query.encode(out);
        self.policy.encode(out);
        self.lease.as_micros().encode(out);
        self.owner.encode(out);
        self.cover.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SubSpec {
            id: Wire::decode(buf)?,
            query: Wire::decode(buf)?,
            policy: Wire::decode(buf)?,
            lease: SimDuration::from_micros(u64::decode(buf)?),
            owner: Wire::decode(buf)?,
            cover: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.query.encoded_len()
            + self.policy.encoded_len()
            + 8
            + self.owner.encoded_len()
            + self.cover.encoded_len()
    }
}

/// One client-visible update of a standing result.
#[derive(Clone, Debug, PartialEq)]
pub struct SubUpdate {
    /// When the front-end emitted it.
    pub at: SimTime,
    /// The merged result at that moment.
    pub result: AggResult,
    /// True for the first update (initial sync complete or timed out).
    pub initial: bool,
    /// False when some pinned tree has not reported yet (initial-sync
    /// timeout fired before every root answered).
    pub complete: bool,
}

/// Per-(subscription, tree) state at a tree node: the delta fold this
/// node re-aggregates, whom it pushes to, and the lease clock.
#[derive(Debug)]
pub struct SubEntry {
    /// The install payload (kept whole for idempotent re-installs).
    pub spec: SubSpec,
    /// Which tree of the pinned cover this entry serves.
    pub pred_key: String,
    /// The tree's routing key.
    pub tree: Id,
    /// Where deltas go: the node that (last) installed us — tree parent
    /// for interior nodes, the owner front-end at the root.
    pub push_to: NodeId,
    /// Per-source partial aggregates: children by id, plus the local
    /// contribution under [`LOCAL_SOURCE`].
    pub fold: DeltaFold,
    /// Children whose *initial* summary we are still waiting for before
    /// announcing upward (mirrors a one-shot query session, so initial
    /// sync costs one reply per node, not one per (node, ancestor)).
    pub pending_initial: BTreeSet<NodeId>,
    /// Whether the initial announcement went up already.
    pub announced: bool,
    /// Last state pushed upward (`None` = nothing yet / parent unknown);
    /// pushes are suppressed while the merge equals it.
    pub last_pushed: Option<AggState>,
    /// Lease deadline; the entry is garbage collected past it.
    pub deadline: SimTime,
    /// Sequence number of the next outgoing delta (per-entry, so the
    /// receiver can drop reordered or superseded frames).
    pub next_seq: u64,
    /// Highest delta sequence number seen per child source.
    pub last_seen: BTreeMap<NodeId, u64>,
}

impl SubEntry {
    /// Fresh state for an install arriving at a node.
    pub fn new(spec: SubSpec, pred_key: String, tree: Id, push_to: NodeId, now: SimTime) -> Self {
        let fold = DeltaFold::new(spec.query.agg);
        let deadline = now + spec.lease;
        SubEntry {
            spec,
            pred_key,
            tree,
            push_to,
            fold,
            pending_initial: BTreeSet::new(),
            announced: false,
            last_pushed: None,
            deadline,
            next_seq: 0,
            last_seen: BTreeMap::new(),
        }
    }

    /// Extends the lease from `now`.
    pub fn renew(&mut self, now: SimTime) {
        let fresh = now + self.spec.lease;
        if fresh > self.deadline {
            self.deadline = fresh;
        }
    }

    /// Whether the lease has lapsed.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.deadline
    }

    /// Records this node's own contribution; true if the merge changed.
    pub fn set_local(&mut self, state: AggState) -> bool {
        self.fold.set(LOCAL_SOURCE, state)
    }

    /// Records a child's summary if `seq` is fresh; `None` means the
    /// frame was stale (reordered or from a superseded entry) and was
    /// dropped, `Some(changed)` reports the merge effect.
    pub fn note_child(&mut self, child: NodeId, seq: u64, state: AggState) -> Option<bool> {
        let last = self.last_seen.entry(child).or_insert(0);
        if seq <= *last && self.fold.contains(u64::from(child.0)) {
            return None;
        }
        *last = seq;
        self.pending_initial.remove(&child);
        Some(self.fold.set(u64::from(child.0), state))
    }

    /// Forgets a child source entirely (failed, re-homed, or released);
    /// true if the merge changed.
    pub fn drop_child(&mut self, child: NodeId) -> bool {
        self.pending_initial.remove(&child);
        self.last_seen.remove(&child);
        self.fold.remove(u64::from(child.0))
    }

    /// Child sources currently folded (excluding the local contribution).
    pub fn child_sources(&self) -> Vec<NodeId> {
        self.fold
            .sources()
            .filter(|&s| s != LOCAL_SOURCE)
            .map(|s| NodeId(s as u32))
            .collect()
    }

    /// The replacement delta to push upward, if the merge moved past what
    /// was last pushed. Stamps and returns the frame payload.
    pub fn take_push(&mut self) -> Option<(u64, AggState)> {
        let merged = self.fold.merged().clone();
        if self.last_pushed.as_ref() == Some(&merged) {
            return None;
        }
        self.last_pushed = Some(merged.clone());
        self.next_seq += 1;
        Some((self.next_seq, merged))
    }
}

/// The front-end's side of one subscription: pinned roots, their latest
/// partial aggregates, and the delivery-policy machinery.
#[derive(Debug)]
pub struct WatchState {
    /// The install payload this watch sent out.
    pub spec: SubSpec,
    /// Pinned cover: one (predicate key, tree routing key) per tree.
    pub roots: Vec<(String, Id)>,
    /// Latest partial aggregate per root (keyed by root index).
    pub fold: DeltaFold,
    /// Roots that have not reported their initial aggregate yet.
    pub pending_initial: BTreeSet<String>,
    /// Highest delta sequence seen per root tree.
    pub last_seen: BTreeMap<String, u64>,
    /// Result of the last emitted update.
    pub last_result: Option<AggResult>,
    /// For [`DeliveryPolicy::Threshold`]: which side of the boundary the
    /// last emission was on.
    pub threshold_side: Option<bool>,
    /// Updates awaiting collection by the embedding host.
    pub updates: VecDeque<SubUpdate>,
    /// Total updates ever emitted (per-sub stats).
    pub updates_emitted: u64,
}

impl WatchState {
    /// A fresh watch over the pinned `roots`.
    pub fn new(spec: SubSpec, roots: Vec<(String, Id)>) -> WatchState {
        let fold = DeltaFold::new(spec.query.agg);
        let pending_initial = roots.iter().map(|(k, _)| k.clone()).collect();
        WatchState {
            spec,
            roots,
            fold,
            pending_initial,
            last_seen: BTreeMap::new(),
            last_result: None,
            threshold_side: None,
            updates: VecDeque::new(),
            updates_emitted: 0,
        }
    }

    /// Index of a pinned root by predicate key.
    fn root_index(&self, pred_key: &str) -> Option<u64> {
        self.roots
            .iter()
            .position(|(k, _)| k == pred_key)
            .map(|i| i as u64)
    }

    /// Whether every pinned root has reported.
    pub fn initial_done(&self) -> bool {
        self.pending_initial.is_empty()
    }

    /// Records a root's replacement aggregate if fresh; `None` = stale
    /// frame dropped, `Some(changed)` otherwise.
    pub fn note_root(&mut self, pred_key: &str, seq: u64, state: AggState) -> Option<bool> {
        let idx = self.root_index(pred_key)?;
        let last = self.last_seen.entry(pred_key.to_owned()).or_insert(0);
        if seq <= *last && self.fold.contains(idx) {
            return None;
        }
        *last = seq;
        self.pending_initial.remove(pred_key);
        Some(self.fold.set(idx, state))
    }

    /// Resets one root's delta stream (the front-end re-installed it, so
    /// the root's sequence numbers may restart).
    pub fn reset_root_seq(&mut self, pred_key: &str) {
        self.last_seen.remove(pred_key);
    }

    /// The current merged, finalized result.
    pub fn current(&self) -> AggResult {
        self.spec.query.agg.finalize(self.fold.merged().clone())
    }

    /// Runs the delivery policy after the merged result (possibly)
    /// moved: the first update is emitted as soon as every pinned root
    /// has reported; afterwards the policy decides what surfaces.
    pub fn maybe_emit(&mut self, now: SimTime) {
        let result = self.current();
        if self.last_result.is_none() {
            // Initial sync: wait until the whole cover answered (the
            // init timer calls `force_initial` if a root never does).
            if self.initial_done() {
                self.emit_first(now, result);
            }
            return;
        }
        let should = match self.spec.policy {
            DeliveryPolicy::OnChange => self.last_result.as_ref() != Some(&result),
            // Periodic emission is timer-driven (`emit_snapshot`).
            DeliveryPolicy::Periodic(_) => false,
            DeliveryPolicy::Threshold { value } => {
                let side = threshold_side(&result, value);
                let crossed = side.is_some() && side != self.threshold_side;
                if side.is_some() {
                    self.threshold_side = side;
                }
                crossed
            }
        };
        if should {
            self.push_update(now, result, false);
        }
    }

    /// Emits the initial update even though not every root reported —
    /// the initial-sync timeout path (the update carries
    /// `complete = false`).
    pub fn force_initial(&mut self, now: SimTime) {
        if self.last_result.is_none() {
            let result = self.current();
            self.emit_first(now, result);
        }
    }

    fn emit_first(&mut self, now: SimTime, result: AggResult) {
        if let DeliveryPolicy::Threshold { value } = self.spec.policy {
            self.threshold_side = threshold_side(&result, value);
        }
        self.push_update(now, result, true);
    }

    /// Emits the current snapshot unconditionally (the periodic-policy
    /// timer tick).
    pub fn emit_snapshot(&mut self, now: SimTime) {
        let result = self.current();
        let first = self.last_result.is_none();
        self.push_update(now, result, first);
    }

    fn push_update(&mut self, now: SimTime, result: AggResult, initial: bool) {
        self.last_result = Some(result.clone());
        self.updates_emitted += 1;
        self.updates.push_back(SubUpdate {
            at: now,
            result,
            initial,
            complete: self.initial_done(),
        });
    }

    /// Drains pending client-visible updates.
    pub fn take_updates(&mut self) -> Vec<SubUpdate> {
        self.updates.drain(..).collect()
    }
}

/// Which side of a threshold a result sits on. An [`AggResult::Empty`]
/// result sits *below* any threshold — a watched group that empties out
/// is the severest under-threshold case and must still alert; only
/// genuinely non-numeric results (lists, histograms) have no side.
fn threshold_side(result: &AggResult, value: f64) -> Option<bool> {
    match result.as_f64() {
        Some(v) => Some(v >= value),
        None if *result == AggResult::Empty => Some(false),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_aggregation::AggKind;
    use moara_attributes::Value;
    use moara_query::Predicate;

    fn spec(policy: DeliveryPolicy) -> SubSpec {
        SubSpec {
            id: SubId {
                origin: NodeId(0),
                n: 1,
            },
            query: Query::new(
                None,
                AggKind::Count,
                Predicate::atom("A", moara_query::CmpOp::Eq, true),
            ),
            policy,
            lease: SimDuration::from_secs(30),
            owner: NodeId(0),
            cover: vec!["A=true".into()],
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000)
    }

    #[test]
    fn wire_roundtrips() {
        for policy in [
            DeliveryPolicy::OnChange,
            DeliveryPolicy::Periodic(SimDuration::from_secs(5)),
            DeliveryPolicy::Threshold { value: 7.5 },
        ] {
            let s = spec(policy);
            assert_eq!(SubSpec::from_bytes(&s.to_bytes()).unwrap(), s);
            assert_eq!(s.to_bytes().len(), s.encoded_len());
        }
        let id = SubId {
            origin: NodeId(3),
            n: 9,
        };
        assert_eq!(SubId::from_bytes(&id.to_bytes()).unwrap(), id);
        // NaN thresholds are rejected at decode (frames are untrusted).
        let mut bytes = Vec::new();
        DeliveryPolicy::Threshold { value: 1.0 }.encode(&mut bytes);
        bytes[1..9].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(DeliveryPolicy::from_bytes(&bytes).is_err());
        // So is a zero period (it would re-arm its snapshot timer in a
        // tight loop).
        let mut bytes = Vec::new();
        DeliveryPolicy::Periodic(SimDuration::from_secs(1)).encode(&mut bytes);
        bytes[1..9].copy_from_slice(&0u64.to_le_bytes());
        assert!(DeliveryPolicy::from_bytes(&bytes).is_err());
    }

    #[test]
    fn entry_suppresses_unchanged_pushes() {
        let mut e = SubEntry::new(
            spec(DeliveryPolicy::OnChange),
            "A=true".into(),
            Id(1),
            NodeId(9),
            t(0),
        );
        assert!(e.set_local(AggState::Count(1)));
        let (seq, state) = e.take_push().unwrap();
        assert_eq!((seq, state), (1, AggState::Count(1)));
        // Nothing moved: no push.
        assert!(e.take_push().is_none());
        // A child reports the same total through a different split — the
        // merge changes (1 → 2), push.
        assert_eq!(e.note_child(NodeId(2), 1, AggState::Count(1)), Some(true));
        assert_eq!(e.take_push().unwrap().1, AggState::Count(2));
        // Stale child frame (same seq) is dropped.
        assert_eq!(e.note_child(NodeId(2), 1, AggState::Count(5)), None);
        // Child retraction shrinks the merge.
        assert!(e.drop_child(NodeId(2)));
        assert_eq!(e.take_push().unwrap().1, AggState::Count(1));
    }

    #[test]
    fn entry_lease_renewal_extends_monotonically() {
        let mut e = SubEntry::new(
            spec(DeliveryPolicy::OnChange),
            "A=true".into(),
            Id(1),
            NodeId(9),
            t(0),
        );
        assert!(!e.expired(t(29)));
        assert!(e.expired(t(30)));
        e.renew(t(10));
        assert!(!e.expired(t(39)));
        assert!(e.expired(t(40)));
        // A stale renew cannot shrink the deadline.
        e.renew(t(5));
        assert!(!e.expired(t(39)));
    }

    #[test]
    fn watch_on_change_emits_only_changes() {
        let mut w = WatchState::new(
            spec(DeliveryPolicy::OnChange),
            vec![("A=true".into(), Id(1))],
        );
        assert!(!w.initial_done());
        assert_eq!(w.note_root("A=true", 1, AggState::Count(3)), Some(true));
        assert!(w.initial_done());
        w.maybe_emit(t(1));
        let ups = w.take_updates();
        assert_eq!(ups.len(), 1);
        assert!(ups[0].initial && ups[0].complete);
        assert_eq!(ups[0].result, AggResult::Value(Value::Int(3)));
        // Same state again: no emission.
        assert_eq!(w.note_root("A=true", 2, AggState::Count(3)), Some(false));
        w.maybe_emit(t(2));
        assert!(w.take_updates().is_empty());
        // A change emits.
        assert_eq!(w.note_root("A=true", 3, AggState::Count(4)), Some(true));
        w.maybe_emit(t(3));
        let ups = w.take_updates();
        assert_eq!(ups.len(), 1);
        assert!(!ups[0].initial);
        // Stale (reordered) root frame is dropped.
        assert_eq!(w.note_root("A=true", 2, AggState::Count(9)), None);
        // Unknown tree is ignored.
        assert_eq!(w.note_root("B=true", 1, AggState::Count(1)), None);
    }

    #[test]
    fn watch_threshold_emits_on_crossings_only() {
        let mut w = WatchState::new(
            spec(DeliveryPolicy::Threshold { value: 5.0 }),
            vec![("A=true".into(), Id(1))],
        );
        w.note_root("A=true", 1, AggState::Count(3));
        w.maybe_emit(t(1)); // initial (below)
        assert_eq!(w.take_updates().len(), 1);
        w.note_root("A=true", 2, AggState::Count(4));
        w.maybe_emit(t(2)); // still below: silent
        assert!(w.take_updates().is_empty());
        w.note_root("A=true", 3, AggState::Count(6));
        w.maybe_emit(t(3)); // crossed up
        assert_eq!(w.take_updates().len(), 1);
        w.note_root("A=true", 4, AggState::Count(2));
        w.maybe_emit(t(4)); // crossed down
        assert_eq!(w.take_updates().len(), 1);
    }

    /// The severest downward crossing: the watched group empties out
    /// entirely. For kinds like `avg`/`min`/`max`/`std` that finalizes
    /// to `AggResult::Empty` — no numeric value at all — and that must
    /// alert like any other drop below the threshold; the return of a
    /// numeric value above it must alert again.
    #[test]
    fn watch_threshold_alerts_when_the_group_empties() {
        let mut s = spec(DeliveryPolicy::Threshold { value: 5.0 });
        s.query = Query::new(
            Some("V".into()),
            AggKind::Avg,
            Predicate::atom("A", moara_query::CmpOp::Eq, true),
        );
        let mut w = WatchState::new(s, vec![("A=true".into(), Id(1))]);
        let avg = |sum: f64, count: u64| AggState::Avg { sum, count };
        w.note_root("A=true", 1, avg(12.0, 2));
        w.maybe_emit(t(1)); // initial: avg 6.0, above
        assert_eq!(w.take_updates().len(), 1);
        w.note_root("A=true", 2, AggState::Null);
        w.maybe_emit(t(2)); // everyone left: Empty = below, must alert
        let ups = w.take_updates();
        assert_eq!(ups.len(), 1, "emptying out crosses the threshold");
        assert_eq!(ups[0].result, AggResult::Empty);
        w.note_root("A=true", 3, AggState::Null);
        w.maybe_emit(t(3)); // still empty: silent
        assert!(w.take_updates().is_empty());
        w.note_root("A=true", 4, avg(14.0, 2));
        w.maybe_emit(t(4)); // back above
        assert_eq!(w.take_updates().len(), 1);
    }

    #[test]
    fn watch_periodic_snapshots_are_timer_driven() {
        let mut w = WatchState::new(
            spec(DeliveryPolicy::Periodic(SimDuration::from_secs(10))),
            vec![("A=true".into(), Id(1))],
        );
        w.note_root("A=true", 1, AggState::Count(3));
        w.maybe_emit(t(1));
        assert_eq!(w.take_updates().len(), 1, "initial always emits");
        w.note_root("A=true", 2, AggState::Count(4));
        w.maybe_emit(t(2));
        assert!(w.take_updates().is_empty(), "changes wait for the tick");
        w.emit_snapshot(t(11));
        let ups = w.take_updates();
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].result, AggResult::Value(Value::Int(4)));
    }

    #[test]
    fn watch_merges_multiple_roots() {
        let mut w = WatchState::new(
            spec(DeliveryPolicy::OnChange),
            vec![("A=true".into(), Id(1)), ("B=true".into(), Id(2))],
        );
        w.note_root("A=true", 1, AggState::Count(3));
        assert!(!w.initial_done(), "B has not reported");
        w.maybe_emit(t(1));
        assert!(w.take_updates().is_empty(), "initial waits for all roots");
        w.note_root("B=true", 1, AggState::Count(2));
        w.maybe_emit(t(2));
        let ups = w.take_updates();
        assert_eq!(ups[0].result, AggResult::Value(Value::Int(5)));
        assert!(ups[0].complete);
    }
}

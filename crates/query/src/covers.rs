//! Low-cost cover selection (paper Section 6.3).
//!
//! Given the CNF of a composite predicate, every clause is a structural
//! cover. This module reduces clauses with semantic information (Figure 7
//! rules), derives additional candidate covers by resolution over
//! complementary atoms (the paper's `not`-elimination identities), detects
//! unsatisfiable predicates, and finally picks the candidate with the
//! lowest total query cost.

use crate::ast::SimplePredicate;
use crate::cnf::{Clause, Cnf};
use crate::semantic::{relate, Relation};

/// The planner's decision for a composite query.
#[derive(Clone, Debug, PartialEq)]
pub enum Cover {
    /// Query the global tree (predicate matches everything, or no usable
    /// group exists).
    All,
    /// The predicate is unsatisfiable; the answer is empty with no
    /// communication at all.
    Empty,
    /// Send the query to the trees of exactly these groups.
    Groups(Vec<SimplePredicate>),
}

impl Cover {
    /// Number of groups to contact (0 for `All`/`Empty`).
    pub fn group_count(&self) -> usize {
        match self {
            Cover::Groups(g) => g.len(),
            _ => 0,
        }
    }
}

/// Reduces a clause (a union of groups) using pairwise semantic relations:
/// an atom included in (or equal to) another atom of the same clause is
/// redundant — its nodes are already covered.
pub fn reduce_clause(clause: &Clause) -> Vec<SimplePredicate> {
    let atoms = &clause.atoms;
    let mut keep = vec![true; atoms.len()];
    for i in 0..atoms.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..atoms.len() {
            if i == j || !keep[j] {
                continue;
            }
            match relate(&atoms[i], &atoms[j]) {
                // i ⊆ j: drop i, j covers it.
                Relation::SubsetOfB => {
                    keep[i] = false;
                    break;
                }
                // identical sets: keep the lower index.
                Relation::Equal if j < i => {
                    keep[i] = false;
                    break;
                }
                _ => {}
            }
        }
    }
    atoms
        .iter()
        .zip(keep)
        .filter(|&(_a, k)| k)
        .map(|(a, _k)| a.clone())
        .collect()
}

/// Selects the minimum-cost cover for a CNF predicate.
///
/// `cost` estimates the messages needed to query one group's tree (the
/// engine feeds this from size probes; unknown groups should return a
/// large value such as twice the system size).
pub fn choose_cover(cnf: &Cnf, cost: impl Fn(&SimplePredicate) -> u64) -> Cover {
    if cnf.is_all() {
        return Cover::All;
    }

    // Unsatisfiability: two conjoined singleton clauses with disjoint
    // groups can never both hold (Figure 7, row 1 for `and`).
    let singles: Vec<&SimplePredicate> = cnf
        .clauses
        .iter()
        .filter(|c| c.atoms.len() == 1)
        .map(|c| &c.atoms[0])
        .collect();
    for i in 0..singles.len() {
        for j in (i + 1)..singles.len() {
            if matches!(
                relate(singles[i], singles[j]),
                Relation::Disjoint | Relation::Complementary
            ) {
                return Cover::Empty;
            }
        }
    }

    // Candidate covers: each reduced clause…
    let mut candidates: Vec<Vec<SimplePredicate>> = cnf.clauses.iter().map(reduce_clause).collect();

    // …plus resolvents over complementary atom pairs across clauses:
    // (X or B) and (X' or C) with C = not(B) admits the cover X ∪ X'
    // (any node outside both X and X' would have to satisfy both B and
    // not(B)). This captures the paper's `not` identities, e.g.
    // (A or B) and (A or C) = A when C = not(B).
    let n = cnf.clauses.len();
    for i in 0..n {
        for j in (i + 1)..n {
            for (bi, b) in cnf.clauses[i].atoms.iter().enumerate() {
                for (cj, c) in cnf.clauses[j].atoms.iter().enumerate() {
                    if relate(b, c) != Relation::Complementary {
                        continue;
                    }
                    let mut resolvent: Vec<SimplePredicate> = Vec::new();
                    for (k, a) in cnf.clauses[i].atoms.iter().enumerate() {
                        if k != bi {
                            resolvent.push(a.clone());
                        }
                    }
                    for (k, a) in cnf.clauses[j].atoms.iter().enumerate() {
                        if k != cj && !resolvent.iter().any(|x| x.key() == a.key()) {
                            resolvent.push(a.clone());
                        }
                    }
                    if resolvent.is_empty() {
                        // (B) and (not B): unsatisfiable.
                        return Cover::Empty;
                    }
                    candidates.push(reduce_clause(&Clause { atoms: resolvent }));
                }
            }
        }
    }

    let best = candidates
        .into_iter()
        .enumerate()
        .min_by_key(|(idx, groups)| {
            let total: u64 = groups
                .iter()
                .fold(0u64, |acc, g| acc.saturating_add(cost(g)));
            (total, *idx)
        })
        .map(|(_, groups)| groups);

    match best {
        Some(groups) if !groups.is_empty() => Cover::Groups(groups),
        _ => Cover::All,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Predicate};

    fn flag(name: &str) -> Predicate {
        Predicate::atom(name, CmpOp::Eq, true)
    }

    fn uniform_cost(_: &SimplePredicate) -> u64 {
        100
    }

    #[test]
    fn intersection_queries_one_group_the_cheapest() {
        // (floor=F1 and cluster=C12): query only the cheaper group.
        let p = Predicate::And(vec![
            Predicate::atom("floor", CmpOp::Eq, "F1"),
            Predicate::atom("cluster", CmpOp::Eq, "C12"),
        ]);
        let cnf = p.to_cnf().unwrap();
        let cover = choose_cover(&cnf, |a| {
            if a.attr.as_str() == "cluster" {
                40
            } else {
                400
            }
        });
        match cover {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].attr.as_str(), "cluster");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_queries_all_groups() {
        let p = Predicate::Or(vec![flag("A"), flag("B"), flag("C")]);
        let cnf = p.to_cnf().unwrap();
        match choose_cover(&cnf, uniform_cost) {
            Cover::Groups(g) => assert_eq!(g.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure6_picks_cheaper_structural_cover() {
        // ((A or B) and (A or C)) or D → covers {A,B,D} and {A,C,D};
        // min(|A|+|B|+|D|, |A|+|C|+|D|).
        let p = Predicate::Or(vec![
            Predicate::And(vec![
                Predicate::Or(vec![flag("A"), flag("B")]),
                Predicate::Or(vec![flag("A"), flag("C")]),
            ]),
            flag("D"),
        ]);
        let cnf = p.to_cnf().unwrap();
        let cover = choose_cover(&cnf, |a| match a.attr.as_str() {
            "B" => 500,
            _ => 10,
        });
        match cover {
            Cover::Groups(g) => {
                let names: Vec<&str> = g.iter().map(|a| a.attr.as_str()).collect();
                assert_eq!(names, vec!["A", "C", "D"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_predicate_gives_all_cover() {
        assert_eq!(
            choose_cover(&Predicate::All.to_cnf().unwrap(), uniform_cost),
            Cover::All
        );
        assert_eq!(Cover::All.group_count(), 0);
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        // (CPU < 20) and (CPU > 80): unsatisfiable.
        let p = Predicate::And(vec![
            Predicate::atom("CPU", CmpOp::Lt, 20i64),
            Predicate::atom("CPU", CmpOp::Gt, 80i64),
        ]);
        let cnf = p.to_cnf().unwrap();
        assert_eq!(choose_cover(&cnf, uniform_cost), Cover::Empty);
    }

    #[test]
    fn complementary_singletons_are_empty() {
        let p = Predicate::And(vec![
            Predicate::atom("s", CmpOp::Eq, true),
            Predicate::atom("s", CmpOp::Eq, false),
        ]);
        assert_eq!(
            choose_cover(&p.to_cnf().unwrap(), uniform_cost),
            Cover::Empty
        );
    }

    #[test]
    fn inclusion_reduces_union_clause() {
        // (Mem<1G or Mem<2G): the first group is contained in the second.
        let p = Predicate::Or(vec![
            Predicate::atom("Mem", CmpOp::Lt, 1i64),
            Predicate::atom("Mem", CmpOp::Lt, 2i64),
        ]);
        let cnf = p.to_cnf().unwrap();
        match choose_cover(&cnf, uniform_cost) {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].value, moara_attributes::Value::Int(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_not_rule_a_or_b_and_a_or_c() {
        // (A or B) and (A or C) = A when C = not(B). Use B: x<5, C: x>=5.
        let p = Predicate::And(vec![
            Predicate::Or(vec![flag("A"), Predicate::atom("x", CmpOp::Lt, 5i64)]),
            Predicate::Or(vec![flag("A"), Predicate::atom("x", CmpOp::Ge, 5i64)]),
        ]);
        let cnf = p.to_cnf().unwrap();
        // Cheap atoms everywhere: the resolvent {A} (1 group) should win
        // over either 2-group clause under uniform costs.
        match choose_cover(&cnf, uniform_cost) {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].attr.as_str(), "A");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_not_rule_a_or_c_and_b() {
        // (A or C) and B = A and B when C = not(B): the resolvent is {A},
        // but clause {B} is also a cover; cost decides.
        let b = Predicate::atom("x", CmpOp::Ge, 5i64);
        let c = Predicate::atom("x", CmpOp::Lt, 5i64);
        let p = Predicate::And(vec![Predicate::Or(vec![flag("A"), c]), b]);
        let cnf = p.to_cnf().unwrap();
        let cover = choose_cover(&cnf, |a| if a.attr.as_str() == "A" { 5 } else { 50 });
        match cover {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].attr.as_str(), "A");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reduce_clause_keeps_unrelated_atoms() {
        let clause = Clause {
            atoms: vec![
                SimplePredicate::new("A", CmpOp::Eq, true),
                SimplePredicate::new("B", CmpOp::Eq, true),
            ],
        };
        assert_eq!(reduce_clause(&clause).len(), 2);
    }

    #[test]
    fn equal_atoms_deduplicate_semantically() {
        // x<5 and x<5.0 have different keys but identical sets.
        let clause = Clause {
            atoms: vec![
                SimplePredicate::new("x", CmpOp::Lt, 5i64),
                SimplePredicate::new("x", CmpOp::Lt, 5.0),
            ],
        };
        assert_eq!(reduce_clause(&clause).len(), 1);
    }
}

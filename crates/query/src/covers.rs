//! Low-cost cover selection (paper Section 6.3).
//!
//! Given the CNF of a composite predicate, every clause is a structural
//! cover. This module reduces clauses with semantic information (Figure 7
//! rules), derives additional candidate covers by resolution over
//! complementary atoms (the paper's `not`-elimination identities), detects
//! unsatisfiable predicates, and finally picks the candidate with the
//! lowest total query cost.

use crate::ast::SimplePredicate;
use crate::cnf::{Clause, Cnf};
use crate::semantic::{relate, Relation};

/// The planner's decision for a composite query.
#[derive(Clone, Debug, PartialEq)]
pub enum Cover {
    /// Query the global tree (predicate matches everything, or no usable
    /// group exists).
    All,
    /// The predicate is unsatisfiable; the answer is empty with no
    /// communication at all.
    Empty,
    /// Send the query to the trees of exactly these groups.
    Groups(Vec<SimplePredicate>),
}

impl Cover {
    /// Number of groups to contact (0 for `All`/`Empty`).
    pub fn group_count(&self) -> usize {
        match self {
            Cover::Groups(g) => g.len(),
            _ => 0,
        }
    }
}

/// Reduces a clause (a union of groups) using pairwise semantic relations:
/// an atom included in (or equal to) another atom of the same clause is
/// redundant — its nodes are already covered.
pub fn reduce_clause(clause: &Clause) -> Vec<SimplePredicate> {
    let atoms = &clause.atoms;
    let mut keep = vec![true; atoms.len()];
    for i in 0..atoms.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..atoms.len() {
            if i == j || !keep[j] {
                continue;
            }
            match relate(&atoms[i], &atoms[j]) {
                // i ⊆ j: drop i, j covers it.
                Relation::SubsetOfB => {
                    keep[i] = false;
                    break;
                }
                // identical sets: keep the lower index.
                Relation::Equal if j < i => {
                    keep[i] = false;
                    break;
                }
                _ => {}
            }
        }
    }
    atoms
        .iter()
        .zip(keep)
        .filter(|&(_a, k)| k)
        .map(|(a, _k)| a.clone())
        .collect()
}

/// The cost-independent half of cover selection: every candidate cover a
/// CNF predicate admits, precomputed once.
///
/// Splitting the planner this way is the query-plane scheduler's cost
/// hook: the engine builds the plan a single time per query, reads
/// [`CoverPlan::probe_atoms`] to learn exactly which groups' costs can
/// influence the decision (and therefore which size probes are worth
/// sending or looking up in the probe cache), and then calls
/// [`CoverPlan::choose`] — repeatedly if costs trickle in — without
/// re-deriving clauses and resolvents.
#[derive(Clone, Debug, PartialEq)]
pub struct CoverPlan {
    /// Candidate covers: each reduced CNF clause plus every resolvent
    /// over complementary atom pairs, in derivation order.
    pub candidates: Vec<Vec<SimplePredicate>>,
    /// The predicate is structurally unsatisfiable (Figure 7 disjointness
    /// or a `(B) and (not B)` resolution).
    pub empty: bool,
    /// The predicate matches everything; there is nothing to cost.
    pub all: bool,
}

impl CoverPlan {
    /// Derives every candidate cover of `cnf` (reduced clauses plus
    /// resolvents over complementary atoms) and detects structural
    /// unsatisfiability — all the planning work that does not depend on
    /// group costs.
    pub fn build(cnf: &Cnf) -> CoverPlan {
        if cnf.is_all() {
            return CoverPlan {
                candidates: Vec::new(),
                empty: false,
                all: true,
            };
        }

        // Unsatisfiability: two conjoined singleton clauses with disjoint
        // groups can never both hold (Figure 7, row 1 for `and`).
        let singles: Vec<&SimplePredicate> = cnf
            .clauses
            .iter()
            .filter(|c| c.atoms.len() == 1)
            .map(|c| &c.atoms[0])
            .collect();
        for i in 0..singles.len() {
            for j in (i + 1)..singles.len() {
                if matches!(
                    relate(singles[i], singles[j]),
                    Relation::Disjoint | Relation::Complementary
                ) {
                    return CoverPlan::unsat();
                }
            }
        }

        // Candidate covers: each reduced clause…
        let mut candidates: Vec<Vec<SimplePredicate>> =
            cnf.clauses.iter().map(reduce_clause).collect();

        // …plus resolvents over complementary atom pairs across clauses:
        // (X or B) and (X' or C) with C = not(B) admits the cover X ∪ X'
        // (any node outside both X and X' would have to satisfy both B and
        // not(B)). This captures the paper's `not` identities, e.g.
        // (A or B) and (A or C) = A when C = not(B).
        let n = cnf.clauses.len();
        for i in 0..n {
            for j in (i + 1)..n {
                for (bi, b) in cnf.clauses[i].atoms.iter().enumerate() {
                    for (cj, c) in cnf.clauses[j].atoms.iter().enumerate() {
                        if relate(b, c) != Relation::Complementary {
                            continue;
                        }
                        let mut resolvent: Vec<SimplePredicate> = Vec::new();
                        for (k, a) in cnf.clauses[i].atoms.iter().enumerate() {
                            if k != bi {
                                resolvent.push(a.clone());
                            }
                        }
                        for (k, a) in cnf.clauses[j].atoms.iter().enumerate() {
                            if k != cj && !resolvent.iter().any(|x| x.key() == a.key()) {
                                resolvent.push(a.clone());
                            }
                        }
                        if resolvent.is_empty() {
                            // (B) and (not B): unsatisfiable.
                            return CoverPlan::unsat();
                        }
                        candidates.push(reduce_clause(&Clause { atoms: resolvent }));
                    }
                }
            }
        }

        CoverPlan {
            candidates,
            empty: false,
            all: false,
        }
    }

    fn unsat() -> CoverPlan {
        CoverPlan {
            candidates: Vec::new(),
            empty: true,
            all: false,
        }
    }

    /// Whether cost information can change the outcome of
    /// [`CoverPlan::choose`]. With zero or one candidate the decision is
    /// forced, so probing group sizes would be pure overhead.
    pub fn needs_costs(&self) -> bool {
        self.candidates.len() > 1
    }

    /// The distinct atoms appearing in any candidate cover, ordered by
    /// key — exactly the groups whose cost estimates the scheduler should
    /// obtain (from its probe cache or by sending size probes).
    pub fn probe_atoms(&self) -> Vec<SimplePredicate> {
        let mut by_key: std::collections::BTreeMap<String, &SimplePredicate> =
            std::collections::BTreeMap::new();
        for cand in &self.candidates {
            for atom in cand {
                by_key.entry(atom.key()).or_insert(atom);
            }
        }
        by_key.into_values().cloned().collect()
    }

    /// Picks the minimum-cost candidate under `cost` (ties break toward
    /// the earlier-derived candidate, keeping the choice deterministic).
    pub fn choose(&self, cost: impl Fn(&SimplePredicate) -> u64) -> Cover {
        if self.empty {
            return Cover::Empty;
        }
        if self.all {
            return Cover::All;
        }
        let best = self
            .candidates
            .iter()
            .enumerate()
            .min_by_key(|(idx, groups)| {
                let total: u64 = groups
                    .iter()
                    .fold(0u64, |acc, g| acc.saturating_add(cost(g)));
                (total, *idx)
            })
            .map(|(_, groups)| groups);

        match best {
            Some(groups) if !groups.is_empty() => Cover::Groups(groups.clone()),
            _ => Cover::All,
        }
    }
}

/// Selects the minimum-cost cover for a CNF predicate.
///
/// `cost` estimates the messages needed to query one group's tree (the
/// engine feeds this from size probes; unknown groups should return a
/// large value such as twice the system size). One-shot convenience over
/// [`CoverPlan::build`] + [`CoverPlan::choose`].
pub fn choose_cover(cnf: &Cnf, cost: impl Fn(&SimplePredicate) -> u64) -> Cover {
    CoverPlan::build(cnf).choose(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Predicate};

    fn flag(name: &str) -> Predicate {
        Predicate::atom(name, CmpOp::Eq, true)
    }

    fn uniform_cost(_: &SimplePredicate) -> u64 {
        100
    }

    #[test]
    fn intersection_queries_one_group_the_cheapest() {
        // (floor=F1 and cluster=C12): query only the cheaper group.
        let p = Predicate::And(vec![
            Predicate::atom("floor", CmpOp::Eq, "F1"),
            Predicate::atom("cluster", CmpOp::Eq, "C12"),
        ]);
        let cnf = p.to_cnf().unwrap();
        let cover = choose_cover(&cnf, |a| {
            if a.attr.as_str() == "cluster" {
                40
            } else {
                400
            }
        });
        match cover {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].attr.as_str(), "cluster");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_queries_all_groups() {
        let p = Predicate::Or(vec![flag("A"), flag("B"), flag("C")]);
        let cnf = p.to_cnf().unwrap();
        match choose_cover(&cnf, uniform_cost) {
            Cover::Groups(g) => assert_eq!(g.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure6_picks_cheaper_structural_cover() {
        // ((A or B) and (A or C)) or D → covers {A,B,D} and {A,C,D};
        // min(|A|+|B|+|D|, |A|+|C|+|D|).
        let p = Predicate::Or(vec![
            Predicate::And(vec![
                Predicate::Or(vec![flag("A"), flag("B")]),
                Predicate::Or(vec![flag("A"), flag("C")]),
            ]),
            flag("D"),
        ]);
        let cnf = p.to_cnf().unwrap();
        let cover = choose_cover(&cnf, |a| match a.attr.as_str() {
            "B" => 500,
            _ => 10,
        });
        match cover {
            Cover::Groups(g) => {
                let names: Vec<&str> = g.iter().map(|a| a.attr.as_str()).collect();
                assert_eq!(names, vec!["A", "C", "D"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_predicate_gives_all_cover() {
        assert_eq!(
            choose_cover(&Predicate::All.to_cnf().unwrap(), uniform_cost),
            Cover::All
        );
        assert_eq!(Cover::All.group_count(), 0);
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        // (CPU < 20) and (CPU > 80): unsatisfiable.
        let p = Predicate::And(vec![
            Predicate::atom("CPU", CmpOp::Lt, 20i64),
            Predicate::atom("CPU", CmpOp::Gt, 80i64),
        ]);
        let cnf = p.to_cnf().unwrap();
        assert_eq!(choose_cover(&cnf, uniform_cost), Cover::Empty);
    }

    #[test]
    fn complementary_singletons_are_empty() {
        let p = Predicate::And(vec![
            Predicate::atom("s", CmpOp::Eq, true),
            Predicate::atom("s", CmpOp::Eq, false),
        ]);
        assert_eq!(
            choose_cover(&p.to_cnf().unwrap(), uniform_cost),
            Cover::Empty
        );
    }

    #[test]
    fn inclusion_reduces_union_clause() {
        // (Mem<1G or Mem<2G): the first group is contained in the second.
        let p = Predicate::Or(vec![
            Predicate::atom("Mem", CmpOp::Lt, 1i64),
            Predicate::atom("Mem", CmpOp::Lt, 2i64),
        ]);
        let cnf = p.to_cnf().unwrap();
        match choose_cover(&cnf, uniform_cost) {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].value, moara_attributes::Value::Int(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_not_rule_a_or_b_and_a_or_c() {
        // (A or B) and (A or C) = A when C = not(B). Use B: x<5, C: x>=5.
        let p = Predicate::And(vec![
            Predicate::Or(vec![flag("A"), Predicate::atom("x", CmpOp::Lt, 5i64)]),
            Predicate::Or(vec![flag("A"), Predicate::atom("x", CmpOp::Ge, 5i64)]),
        ]);
        let cnf = p.to_cnf().unwrap();
        // Cheap atoms everywhere: the resolvent {A} (1 group) should win
        // over either 2-group clause under uniform costs.
        match choose_cover(&cnf, uniform_cost) {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].attr.as_str(), "A");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_not_rule_a_or_c_and_b() {
        // (A or C) and B = A and B when C = not(B): the resolvent is {A},
        // but clause {B} is also a cover; cost decides.
        let b = Predicate::atom("x", CmpOp::Ge, 5i64);
        let c = Predicate::atom("x", CmpOp::Lt, 5i64);
        let p = Predicate::And(vec![Predicate::Or(vec![flag("A"), c]), b]);
        let cnf = p.to_cnf().unwrap();
        let cover = choose_cover(&cnf, |a| if a.attr.as_str() == "A" { 5 } else { 50 });
        match cover {
            Cover::Groups(g) => {
                assert_eq!(g.len(), 1);
                assert_eq!(g[0].attr.as_str(), "A");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reduce_clause_keeps_unrelated_atoms() {
        let clause = Clause {
            atoms: vec![
                SimplePredicate::new("A", CmpOp::Eq, true),
                SimplePredicate::new("B", CmpOp::Eq, true),
            ],
        };
        assert_eq!(reduce_clause(&clause).len(), 2);
    }

    #[test]
    fn equal_atoms_deduplicate_semantically() {
        // x<5 and x<5.0 have different keys but identical sets.
        let clause = Clause {
            atoms: vec![
                SimplePredicate::new("x", CmpOp::Lt, 5i64),
                SimplePredicate::new("x", CmpOp::Lt, 5.0),
            ],
        };
        assert_eq!(reduce_clause(&clause).len(), 1);
    }

    #[test]
    fn plan_exposes_candidates_and_probe_atoms() {
        // (A and B): two singleton clauses → two candidates; both atoms
        // can influence the choice, so both should be probed.
        let p = Predicate::And(vec![flag("A"), flag("B")]);
        let plan = CoverPlan::build(&p.to_cnf().unwrap());
        assert!(!plan.empty && !plan.all);
        assert_eq!(plan.candidates.len(), 2);
        assert!(plan.needs_costs());
        let keys: Vec<String> = plan.probe_atoms().iter().map(|a| a.key()).collect();
        assert_eq!(keys.len(), 2);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted by key");

        // A pure union has exactly one candidate: cost cannot change the
        // decision, so the scheduler should skip probing entirely.
        let p = Predicate::Or(vec![flag("A"), flag("B"), flag("C")]);
        let plan = CoverPlan::build(&p.to_cnf().unwrap());
        assert_eq!(plan.candidates.len(), 1);
        assert!(!plan.needs_costs());

        let all = CoverPlan::build(&Predicate::All.to_cnf().unwrap());
        assert!(all.all && !all.needs_costs());
        assert!(all.probe_atoms().is_empty());
        assert_eq!(all.choose(uniform_cost), Cover::All);
    }

    #[test]
    fn plan_choose_matches_choose_cover() {
        let p = Predicate::Or(vec![
            Predicate::And(vec![
                Predicate::Or(vec![flag("A"), flag("B")]),
                Predicate::Or(vec![flag("A"), flag("C")]),
            ]),
            flag("D"),
        ]);
        let cnf = p.to_cnf().unwrap();
        let cost = |a: &SimplePredicate| match a.attr.as_str() {
            "B" => 500,
            _ => 10,
        };
        let plan = CoverPlan::build(&cnf);
        assert_eq!(plan.choose(cost), choose_cover(&cnf, cost));
    }
}

#[cfg(test)]
mod planner_soundness {
    //! Property-based soundness of the cover planner: whatever candidate
    //! the cost function makes it pick, the chosen cover must never miss
    //! a node that satisfies the composite predicate, and `Cover::Empty`
    //! may only be returned when brute-force evaluation over every node
    //! finds no satisfying node at all.

    use proptest::prelude::*;

    use super::*;
    use crate::ast::{CmpOp, Predicate};
    use moara_attributes::AttrStore;

    /// One simulated node: two boolean flags and two small integers.
    #[derive(Clone, Debug)]
    struct NodeAttrs {
        a: bool,
        b: bool,
        x: i64,
        y: i64,
    }

    fn store_of(n: &NodeAttrs) -> AttrStore {
        let mut s = AttrStore::new();
        s.set("A", n.a);
        s.set("B", n.b);
        s.set("x", n.x);
        s.set("y", n.y);
        s
    }

    fn arb_node() -> impl Strategy<Value = NodeAttrs> {
        (any::<bool>(), any::<bool>(), 0i64..8, 0i64..8).prop_map(|(a, b, x, y)| NodeAttrs {
            a,
            b,
            x,
            y,
        })
    }

    /// Leaf atoms mixing boolean flags and numeric comparisons, so the
    /// semantic rules (inclusion, disjointness, complements) all fire.
    fn arb_atom() -> impl Strategy<Value = Predicate> {
        prop_oneof![
            any::<bool>().prop_map(|v| Predicate::atom("A", CmpOp::Eq, v)),
            any::<bool>().prop_map(|v| Predicate::atom("B", CmpOp::Eq, v)),
            (0u8..6, 0i64..8).prop_map(|(op, v)| {
                let op = [
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                    CmpOp::Eq,
                    CmpOp::Ne,
                ][op as usize];
                Predicate::atom("x", op, v)
            }),
            (0i64..8).prop_map(|v| Predicate::atom("y", CmpOp::Lt, v)),
        ]
    }

    fn arb_pred() -> impl Strategy<Value = Predicate> {
        arb_atom().prop_recursive(3, 16, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..4).prop_map(Predicate::And),
                proptest::collection::vec(inner, 1..4).prop_map(Predicate::Or),
            ]
        })
    }

    /// A deterministic pseudo-random cost per group, so different runs
    /// exercise different candidate choices.
    fn salted_cost(salt: u64) -> impl Fn(&SimplePredicate) -> u64 {
        move |atom: &SimplePredicate| {
            let mut h = salt ^ 0x9e37_79b9_7f4a_7c15;
            for byte in atom.key().bytes() {
                h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(byte);
            }
            1 + (h % 997)
        }
    }

    proptest! {
        /// The chosen cover never misses a satisfying node: every node
        /// that satisfies the composite predicate also satisfies at least
        /// one group of the chosen cover, for arbitrary cost functions.
        #[test]
        fn chosen_cover_misses_no_satisfying_node(
            pred in arb_pred(),
            nodes in proptest::collection::vec(arb_node(), 1..12),
            salt in any::<u64>(),
        ) {
            if let Ok(cnf) = pred.to_cnf() {
                let cover = choose_cover(&cnf, salted_cost(salt));
                for node in &nodes {
                    let store = store_of(node);
                    if !pred.eval(&store) {
                        continue;
                    }
                    match &cover {
                        Cover::All => {}
                        Cover::Empty => prop_assert!(
                            false,
                            "Cover::Empty but {node:?} satisfies {pred}"
                        ),
                        Cover::Groups(groups) => prop_assert!(
                            groups.iter().any(|g| g.eval(&store)),
                            "node {node:?} satisfies {pred} but no group of {groups:?}"
                        ),
                    }
                }
            }
        }

        /// `Cover::Empty` is only produced when brute-force evaluation
        /// over the full attribute grid finds no satisfying assignment.
        #[test]
        fn empty_cover_implies_truly_unsatisfiable(pred in arb_pred(), salt in any::<u64>()) {
            let planner_empty = pred
                .to_cnf()
                .map(|cnf| choose_cover(&cnf, salted_cost(salt)) == Cover::Empty)
                .unwrap_or(false);
            if planner_empty {
                // Exhaustive grid over the generator's whole value space
                // (values land in 0..8; 9 covers the "above every
                // literal" side of range predicates).
                for bits in 0..4u8 {
                    for x in 0..=9i64 {
                        for y in 0..=9i64 {
                            let store = store_of(&NodeAttrs {
                                a: bits & 1 != 0,
                                b: bits & 2 != 0,
                                x,
                                y,
                            });
                            prop_assert!(
                                !pred.eval(&store),
                                "planner said Empty but {pred} holds at bits={bits} x={x} y={y}"
                            );
                        }
                    }
                }
            }
        }
    }
}

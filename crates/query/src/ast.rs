//! The query and predicate AST, and its evaluation semantics.

use std::fmt;

use moara_aggregation::AggKind;
use moara_attributes::{AttrName, AttrStore, Value};

/// A comparison operator: `op ∈ {<, >, ≤, ≥, =, ≠}` (paper Section 3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the operator to an observed value vs. the predicate literal.
    ///
    /// Semantics: a missing or type-incomparable observation satisfies
    /// nothing — including `!=`, which the paper describes as implicit
    /// `not` *within the population that carries the attribute*.
    pub fn eval(self, observed: &Value, literal: &Value) -> bool {
        match self {
            CmpOp::Eq => observed.eq_num(literal),
            CmpOp::Ne => observed.cmp_num(literal).is_some() && !observed.eq_num(literal),
            _ => match observed.cmp_num(literal) {
                Some(ord) => match self {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                },
                None => false,
            },
        }
    }

    /// The operator with its comparison direction flipped (`< ↔ >` etc.);
    /// `=` and `!=` are symmetric.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// The logical negation of the operator over a totally ordered domain.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A simple group predicate `(group-attribute op value)` — the unit from
/// which groups (and their aggregation trees) are defined.
#[derive(Clone, Debug, PartialEq)]
pub struct SimplePredicate {
    /// The group attribute, e.g. `ServiceX`.
    pub attr: AttrName,
    /// The comparison operator.
    pub op: CmpOp,
    /// The literal to compare against.
    pub value: Value,
}

impl SimplePredicate {
    /// Builds a simple predicate.
    pub fn new(attr: impl Into<AttrName>, op: CmpOp, value: impl Into<Value>) -> SimplePredicate {
        SimplePredicate {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the predicate against a node's attribute store. A node
    /// lacking the attribute satisfies nothing.
    pub fn eval(&self, store: &AttrStore) -> bool {
        store
            .get(self.attr.as_str())
            .is_some_and(|v| self.op.eval(v, &self.value))
    }

    /// A canonical string key identifying this predicate — the protocol
    /// layer keys its per-predicate tree state by this.
    pub fn key(&self) -> String {
        format!("{}{}{}", self.attr, self.op, self.value)
    }
}

impl fmt::Display for SimplePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// A group predicate: a boolean combination of simple predicates.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// No group specified: aggregate over all nodes in the system.
    All,
    /// A simple predicate.
    Atom(SimplePredicate),
    /// Conjunction (`and`, set intersection).
    And(Vec<Predicate>),
    /// Disjunction (`or`, set union).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for an atom.
    pub fn atom(attr: impl Into<AttrName>, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Atom(SimplePredicate::new(attr, op, value))
    }

    /// Evaluates the predicate at a node.
    pub fn eval(&self, store: &AttrStore) -> bool {
        match self {
            Predicate::All => true,
            Predicate::Atom(a) => a.eval(store),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(store)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(store)),
        }
    }

    /// All simple predicates appearing in the expression.
    pub fn atoms(&self) -> Vec<&SimplePredicate> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a SimplePredicate>) {
        match self {
            Predicate::All => {}
            Predicate::Atom(a) => out.push(a),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_atoms(out);
                }
            }
        }
    }

    /// True if the predicate contains no `and`/`or` structure.
    pub fn is_simple(&self) -> bool {
        matches!(self, Predicate::All | Predicate::Atom(_))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(f: &mut fmt::Formatter<'_>, ps: &[Predicate], sep: &str) -> fmt::Result {
            write!(f, "(")?;
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, " {sep} ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")
        }
        match self {
            Predicate::All => write!(f, "*"),
            Predicate::Atom(a) => write!(f, "{a}"),
            Predicate::And(ps) => join(f, ps, "and"),
            Predicate::Or(ps) => join(f, ps, "or"),
        }
    }
}

/// A full Moara query: `(query-attribute, aggregation function,
/// group-predicate)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The attribute being aggregated. `None` for node-oriented aggregates
    /// (`count(*)`, `enumerate(*)`), which need no local value.
    pub attr: Option<AttrName>,
    /// The aggregation function.
    pub agg: AggKind,
    /// The group predicate selecting the target machines.
    pub predicate: Predicate,
}

impl Query {
    /// Builds a query.
    pub fn new(attr: Option<AttrName>, agg: AggKind, predicate: Predicate) -> Query {
        Query {
            attr,
            agg,
            predicate,
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.attr {
            Some(a) => write!(f, "({a}, {:?}, {})", self.agg, self.predicate),
            None => write!(f, "(*, {:?}, {})", self.agg, self.predicate),
        }
    }
}

mod wire {
    //! Wire-format impls: queries travel whole inside `QueryDown` messages
    //! (every node evaluates the full composite predicate, Section 7.2).

    use moara_wire::{Wire, WireError};

    use super::{CmpOp, Predicate, Query, SimplePredicate};

    impl Wire for CmpOp {
        fn encode(&self, out: &mut Vec<u8>) {
            out.push(match self {
                CmpOp::Lt => 0,
                CmpOp::Le => 1,
                CmpOp::Gt => 2,
                CmpOp::Ge => 3,
                CmpOp::Eq => 4,
                CmpOp::Ne => 5,
            });
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            Ok(match u8::decode(buf)? {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                2 => CmpOp::Gt,
                3 => CmpOp::Ge,
                4 => CmpOp::Eq,
                5 => CmpOp::Ne,
                _ => return Err(WireError::Invalid("CmpOp tag")),
            })
        }
        fn encoded_len(&self) -> usize {
            1
        }
    }

    impl Wire for SimplePredicate {
        fn encode(&self, out: &mut Vec<u8>) {
            self.attr.encode(out);
            self.op.encode(out);
            self.value.encode(out);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            Ok(SimplePredicate {
                attr: Wire::decode(buf)?,
                op: Wire::decode(buf)?,
                value: Wire::decode(buf)?,
            })
        }
        fn encoded_len(&self) -> usize {
            self.attr.encoded_len() + self.op.encoded_len() + self.value.encoded_len()
        }
    }

    /// Deepest and/or nesting the decoder accepts — ample for real
    /// queries (the CNF rewriter refuses far smaller ones), and it bounds
    /// decode recursion on frames from untrusted sockets.
    const MAX_PRED_DEPTH: usize = 128;

    fn decode_pred_at(buf: &mut &[u8], depth: usize) -> Result<Predicate, WireError> {
        if depth >= MAX_PRED_DEPTH {
            return Err(WireError::Invalid("Predicate nesting too deep"));
        }
        Ok(match u8::decode(buf)? {
            0 => Predicate::All,
            1 => Predicate::Atom(Wire::decode(buf)?),
            tag @ (2 | 3) => {
                let n = u32::decode(buf)? as usize;
                let mut ps = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ps.push(decode_pred_at(buf, depth + 1)?);
                }
                if tag == 2 {
                    Predicate::And(ps)
                } else {
                    Predicate::Or(ps)
                }
            }
            _ => return Err(WireError::Invalid("Predicate tag")),
        })
    }

    impl Wire for Predicate {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                Predicate::All => out.push(0),
                Predicate::Atom(a) => {
                    out.push(1);
                    a.encode(out);
                }
                Predicate::And(ps) => {
                    out.push(2);
                    ps.encode(out);
                }
                Predicate::Or(ps) => {
                    out.push(3);
                    ps.encode(out);
                }
            }
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            decode_pred_at(buf, 0)
        }
        fn encoded_len(&self) -> usize {
            1 + match self {
                Predicate::All => 0,
                Predicate::Atom(a) => a.encoded_len(),
                Predicate::And(ps) | Predicate::Or(ps) => ps.encoded_len(),
            }
        }
    }

    impl Wire for Query {
        fn encode(&self, out: &mut Vec<u8>) {
            self.attr.encode(out);
            self.agg.encode(out);
            self.predicate.encode(out);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            Ok(Query {
                attr: Wire::decode(buf)?,
                agg: Wire::decode(buf)?,
                predicate: Wire::decode(buf)?,
            })
        }
        fn encoded_len(&self) -> usize {
            self.attr.encoded_len() + self.agg.encoded_len() + self.predicate.encoded_len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AttrStore {
        [
            ("CPU-Util", Value::Float(42.0)),
            ("ServiceX", Value::Bool(true)),
            ("OS", Value::str("Linux")),
            ("Cores", Value::Int(8)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn op_eval_over_numbers() {
        let s = store();
        assert!(SimplePredicate::new("CPU-Util", CmpOp::Lt, 50i64).eval(&s));
        assert!(!SimplePredicate::new("CPU-Util", CmpOp::Gt, 50i64).eval(&s));
        assert!(SimplePredicate::new("CPU-Util", CmpOp::Le, 42i64).eval(&s));
        assert!(SimplePredicate::new("CPU-Util", CmpOp::Ge, 42.0).eval(&s));
        assert!(SimplePredicate::new("Cores", CmpOp::Eq, 8i64).eval(&s));
        assert!(SimplePredicate::new("Cores", CmpOp::Ne, 4i64).eval(&s));
    }

    #[test]
    fn missing_attribute_satisfies_nothing() {
        let s = store();
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert!(!SimplePredicate::new("Absent", op, 1i64).eval(&s), "{op}");
        }
    }

    #[test]
    fn incomparable_types_satisfy_nothing() {
        let s = store();
        // OS is a string; comparing to an int matches nothing, even !=.
        assert!(!SimplePredicate::new("OS", CmpOp::Ne, 5i64).eval(&s));
        assert!(SimplePredicate::new("OS", CmpOp::Ne, "Windows").eval(&s));
        assert!(SimplePredicate::new("OS", CmpOp::Eq, "Linux").eval(&s));
    }

    #[test]
    fn composite_eval() {
        let s = store();
        let p = Predicate::And(vec![
            Predicate::atom("ServiceX", CmpOp::Eq, true),
            Predicate::Or(vec![
                Predicate::atom("CPU-Util", CmpOp::Gt, 90i64),
                Predicate::atom("OS", CmpOp::Eq, "Linux"),
            ]),
        ]);
        assert!(p.eval(&s));
        assert!(Predicate::All.eval(&s));
        assert_eq!(p.atoms().len(), 3);
        assert!(!p.is_simple());
        assert!(Predicate::atom("x", CmpOp::Eq, 1i64).is_simple());
    }

    #[test]
    fn op_flip_and_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Ne.negate(), CmpOp::Eq);
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn canonical_key_is_stable() {
        let p = SimplePredicate::new("CPU-Util", CmpOp::Lt, 50i64);
        assert_eq!(p.key(), "CPU-Util<50");
        let q = SimplePredicate::new("ServiceX", CmpOp::Eq, true);
        assert_eq!(q.key(), "ServiceX=true");
    }

    #[test]
    fn display_forms() {
        let p = Predicate::And(vec![
            Predicate::atom("A", CmpOp::Eq, true),
            Predicate::atom("B", CmpOp::Ne, 1i64),
        ]);
        assert_eq!(p.to_string(), "(A = true and B != 1)");
        assert_eq!(Predicate::All.to_string(), "*");
    }
}

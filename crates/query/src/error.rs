//! Query parsing errors.

use std::fmt;

/// A parse failure with byte position and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the problem was noticed.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    pub(crate) fn new(pos: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = ParseError::new(7, "unexpected ')'");
        assert_eq!(e.to_string(), "parse error at byte 7: unexpected ')'");
    }
}

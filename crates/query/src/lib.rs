//! # moara-query
//!
//! The Moara query language and front-end optimizer (paper Sections 3.1
//! and 6).
//!
//! A query is a triple *(query-attribute, aggregation function,
//! group-predicate)*. Predicates are arbitrary `and`/`or` nestings of
//! simple `(attribute op value)` comparisons with
//! `op ∈ {<, >, ≤, ≥, =, ≠}`. This crate provides:
//!
//! * the predicate/query AST ([`Predicate`], [`SimplePredicate`],
//!   [`Query`]) and its evaluation against a node's attribute store;
//! * a parser for both the paper's triple form
//!   (`(CPU-Usage, MAX, ServiceX = true)`) and an SQL-like form
//!   (`SELECT max(CPU-Usage) WHERE ServiceX = true`) — see [`parse_query`];
//! * CNF rewriting with structural-cover extraction ([`Cnf`]), the core of
//!   the paper's Section 6.3 optimization (each CNF disjunction is a cover;
//!   the cheapest is provably minimum-cost);
//! * semantic optimization ([`relate`], [`Relation`]) implementing the
//!   Figure 7/8 rules: equivalence, inclusion, disjointness, and
//!   complement (`not`) inference from the predicate structure;
//! * low-cost cover selection ([`choose_cover`], [`Cover`]).
//!
//! # Example
//!
//! ```
//! use moara_query::{parse_query, choose_cover, Cover};
//!
//! let q = parse_query(
//!     "SELECT avg(Mem-Free) WHERE (ServiceX = true AND Apache = true)",
//! ).unwrap();
//! let cnf = q.predicate.to_cnf().unwrap();
//! // Intersection query: either group alone is a cover; pick the cheaper.
//! let cover = choose_cover(&cnf, |atom| {
//!     if atom.attr.as_str() == "ServiceX" { 10 } else { 500 }
//! });
//! match cover {
//!     Cover::Groups(groups) => {
//!         assert_eq!(groups.len(), 1);
//!         assert_eq!(groups[0].attr.as_str(), "ServiceX");
//!     }
//!     other => panic!("unexpected cover {other:?}"),
//! }
//! ```

mod ast;
mod cnf;
mod covers;
mod error;
mod lexer;
mod parser;
pub mod semantic;

pub use ast::{CmpOp, Predicate, Query, SimplePredicate};
pub use cnf::{Clause, Cnf, CnfError};
pub use covers::{choose_cover, reduce_clause, Cover, CoverPlan};
pub use error::ParseError;
pub use parser::{parse_predicate, parse_query};
pub use semantic::{relate, Relation};

//! Tokenizer for the Moara query language.
//!
//! Attribute names may contain `-` and `.` (the paper writes `CPU-Util`,
//! `service X.version Y`), so `-` is an identifier character when it
//! follows a letter; a leading `-` before a digit starts a negative number
//! instead.

use crate::error::ParseError;

/// A lexical token with its byte position.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    pub pos: usize,
    pub kind: TokenKind,
}

/// The kinds of token the query grammar uses.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TokenKind {
    /// Identifier / bare word (attribute names, keywords, `true`/`false`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// A comparison operator: `< <= > >= = == != <>`.
    Op(&'static str),
}

impl TokenKind {
    /// The keyword this identifier represents, if any (case-insensitive).
    pub fn keyword(&self) -> Option<&'static str> {
        let TokenKind::Ident(s) = self else {
            return None;
        };
        match s.to_ascii_lowercase().as_str() {
            "select" => Some("select"),
            "where" => Some("where"),
            "and" => Some("and"),
            "or" => Some("or"),
            "not" => Some("not"),
            "true" => Some("true"),
            "false" => Some("false"),
            _ => None,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Tokenizes `input`.
pub(crate) fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let pos = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::LParen,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::RParen,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::Star,
                });
                i += 1;
            }
            '<' => {
                let op = if bytes.get(i + 1) == Some(&'=') {
                    i += 2;
                    "<="
                } else if bytes.get(i + 1) == Some(&'>') {
                    i += 2;
                    "!="
                } else {
                    i += 1;
                    "<"
                };
                out.push(Token {
                    pos,
                    kind: TokenKind::Op(op),
                });
            }
            '>' => {
                let op = if bytes.get(i + 1) == Some(&'=') {
                    i += 2;
                    ">="
                } else {
                    i += 1;
                    ">"
                };
                out.push(Token {
                    pos,
                    kind: TokenKind::Op(op),
                });
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(Token {
                    pos,
                    kind: TokenKind::Op("="),
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    i += 2;
                    out.push(Token {
                        pos,
                        kind: TokenKind::Op("!="),
                    });
                } else {
                    return Err(ParseError::new(pos, "expected '=' after '!'"));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(ParseError::new(pos, "unterminated string literal")),
                    }
                }
                out.push(Token {
                    pos,
                    kind: TokenKind::Str(s),
                });
            }
            '-' if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                let (tok, next) = lex_number(&bytes, i, pos)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(&bytes, i, pos)?;
                out.push(tok);
                i = next;
            }
            c if is_ident_start(c) => {
                let mut s = String::new();
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    s.push(bytes[i]);
                    i += 1;
                }
                out.push(Token {
                    pos,
                    kind: TokenKind::Ident(s),
                });
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    Ok(out)
}

fn lex_number(bytes: &[char], mut i: usize, pos: usize) -> Result<(Token, usize), ParseError> {
    let start = i;
    if bytes[i] == '-' {
        i += 1;
    }
    let mut saw_dot = false;
    while i < bytes.len() && (bytes[i].is_ascii_digit() || (bytes[i] == '.' && !saw_dot)) {
        // A dot must be followed by a digit to belong to the number
        // (so `3.` is not a float and `x.y` stays an identifier path).
        if bytes[i] == '.' {
            if !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                break;
            }
            saw_dot = true;
        }
        i += 1;
    }
    let text: String = bytes[start..i].iter().collect();
    let kind = if saw_dot {
        TokenKind::Float(
            text.parse::<f64>()
                .map_err(|e| ParseError::new(pos, format!("bad float {text:?}: {e}")))?,
        )
    } else {
        TokenKind::Int(
            text.parse::<i64>()
                .map_err(|e| ParseError::new(pos, format!("bad integer {text:?}: {e}")))?,
        )
    };
    Ok((Token { pos, kind }, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_triple_form() {
        use TokenKind::*;
        assert_eq!(
            kinds("(CPU-Usage, MAX, ServiceX = true)"),
            vec![
                LParen,
                Ident("CPU-Usage".into()),
                Comma,
                Ident("MAX".into()),
                Comma,
                Ident("ServiceX".into()),
                Op("="),
                Ident("true".into()),
                RParen,
            ]
        );
    }

    #[test]
    fn dashed_identifiers_vs_negative_numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("CPU-Util < -5"),
            vec![Ident("CPU-Util".into()), Op("<"), Int(-5)]
        );
        assert_eq!(kinds("x -5"), vec![Ident("x".into()), Int(-5)]);
        // Inside an identifier, a dash followed by a letter continues it.
        assert_eq!(kinds("top-3"), vec![Ident("top-3".into())]);
    }

    #[test]
    fn numbers_and_strings() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 42.5 -1.25 'Linux 2.6'"),
            vec![Int(42), Float(42.5), Float(-1.25), Str("Linux 2.6".into())]
        );
    }

    #[test]
    fn operators_and_aliases() {
        use TokenKind::*;
        assert_eq!(
            kinds("< <= > >= = == != <>"),
            vec![
                Op("<"),
                Op("<="),
                Op(">"),
                Op(">="),
                Op("="),
                Op("="),
                Op("!="),
                Op("!=")
            ]
        );
    }

    #[test]
    fn keywords_detected_case_insensitively() {
        let toks = lex("SELECT where AnD oR").unwrap();
        let kws: Vec<_> = toks.iter().filter_map(|t| t.kind.keyword()).collect();
        assert_eq!(kws, vec!["select", "where", "and", "or"]);
    }

    #[test]
    fn errors_carry_position() {
        let e = lex("a ! b").unwrap_err();
        assert_eq!(e.pos, 2);
        let e = lex("'oops").unwrap_err();
        assert!(e.msg.contains("unterminated"));
        let e = lex("a # b").unwrap_err();
        assert!(e.msg.contains("unexpected character"));
    }

    #[test]
    fn version_like_identifiers_keep_dots() {
        use TokenKind::*;
        assert_eq!(
            kinds("service-X.version"),
            vec![Ident("service-X.version".into())]
        );
    }
}

//! Semantic relations between simple predicates (paper Figures 7 and 8).
//!
//! Moara infers relations between two groups *from the predicates that
//! define them*: `(Mem < 1G)` is included in `(Mem < 2G)`, `(CPU < 50)`
//! and `(CPU >= 50)` are complementary, and so on. The planner uses these
//! to shrink covers and to apply the paper's `not`-elimination rules.
//!
//! Soundness note: attribute stores are dynamically typed, so the inferred
//! relation is over the *typed domain* of the literals (nodes holding a
//! value of another type — or lacking the attribute — satisfy neither
//! predicate, so they sit outside both groups and cannot break the
//! relation). Atoms over different attributes, or with differently-typed
//! literals, report [`Relation::Unrelated`] / [`Relation::Unknown`].

use moara_attributes::Value;

use crate::ast::{CmpOp, SimplePredicate};

/// The relation between the node sets of two simple predicates `A`, `B`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// Same node set (paper: *Equivalence*).
    Equal,
    /// `A ⊂ B` strictly (paper: *Inclusion*).
    SubsetOfB,
    /// `A ⊃ B` strictly (paper: *Inclusion*).
    SupersetOfB,
    /// No common nodes, and together they span the typed domain — `B` is
    /// `not A` (paper Section 6.3's implicit-`not` rules).
    Complementary,
    /// No common nodes (paper: *Disjointedness*).
    Disjoint,
    /// Proper overlap, connected intersection (paper: *Intersection*).
    Intersecting,
    /// Proper overlap with a disconnected intersection (paper:
    /// *Discontinuous Intersection*, e.g. `x != 20` vs `x < 50`).
    DiscontinuousIntersection,
    /// Atoms over different attributes: no relation derivable.
    Unrelated,
    /// Same attribute but the analysis cannot decide (mixed literal types).
    Unknown,
}

/// Infers the relation between two simple predicates.
pub fn relate(a: &SimplePredicate, b: &SimplePredicate) -> Relation {
    if a.attr != b.attr {
        return Relation::Unrelated;
    }
    match (AtomSet::build(a), AtomSet::build(b)) {
        (Some(AtomSet::Bool(x)), Some(AtomSet::Bool(y))) => relate_masks(x, y, 0b11),
        (Some(AtomSet::Num(x)), Some(AtomSet::Num(y))) => relate_intervals(&x, &y, true),
        (Some(AtomSet::Str(x)), Some(AtomSet::Str(y))) => relate_strings(a, b, &x, &y),
        _ => Relation::Unknown,
    }
}

// ---- typed set construction ----------------------------------------------

enum AtomSet {
    /// Subset of `{false, true}` as a 2-bit mask (bit 0 = false, bit 1 = true).
    Bool(u8),
    Num(IntervalSet<f64>),
    Str(IntervalSet<String>),
}

impl AtomSet {
    fn build(p: &SimplePredicate) -> Option<AtomSet> {
        match &p.value {
            Value::Bool(_) => {
                let mut mask = 0u8;
                for (bit, v) in [(1u8, false), (2u8, true)] {
                    if p.op.eval(&Value::Bool(v), &p.value) {
                        mask |= bit;
                    }
                }
                Some(AtomSet::Bool(mask))
            }
            Value::Int(_) | Value::Float(_) => {
                let k = p.value.as_f64()?;
                if k.is_nan() {
                    return None;
                }
                Some(AtomSet::Num(IntervalSet::from_op(p.op, k)))
            }
            Value::Str(s) => Some(AtomSet::Str(IntervalSet::from_op(p.op, s.clone()))),
        }
    }
}

fn relate_masks(a: u8, b: u8, universe: u8) -> Relation {
    let i = a & b;
    let u = a | b;
    if a == b {
        return Relation::Equal;
    }
    if i == 0 {
        return if u == universe {
            Relation::Complementary
        } else {
            Relation::Disjoint
        };
    }
    if i == a {
        return Relation::SubsetOfB;
    }
    if i == b {
        return Relation::SupersetOfB;
    }
    Relation::Intersecting
}

fn relate_intervals<K: IntervalKey>(
    a: &IntervalSet<K>,
    b: &IntervalSet<K>,
    dense: bool,
) -> Relation {
    if a == b {
        return Relation::Equal;
    }
    let i = a.intersect(b);
    if i.is_empty() {
        // Complementary iff the union spans the whole line. Only claim this
        // for dense domains (reals); string order has successor gaps.
        return if dense && a.union(b).is_universe() {
            Relation::Complementary
        } else {
            Relation::Disjoint
        };
    }
    if &i == a {
        return Relation::SubsetOfB;
    }
    if &i == b {
        return Relation::SupersetOfB;
    }
    if i.intervals().len() > 1 {
        return Relation::DiscontinuousIntersection;
    }
    Relation::Intersecting
}

fn relate_strings(
    a: &SimplePredicate,
    b: &SimplePredicate,
    x: &IntervalSet<String>,
    y: &IntervalSet<String>,
) -> Relation {
    // Exact complement for the =/!= pair on the same literal.
    if a.value == b.value {
        match (a.op, b.op) {
            (CmpOp::Eq, CmpOp::Ne) | (CmpOp::Ne, CmpOp::Eq) => return Relation::Complementary,
            _ => {}
        }
    }
    relate_intervals(x, y, false)
}

// ---- generic interval sets ------------------------------------------------

/// Key types the interval algebra works over.
pub(crate) trait IntervalKey: Clone + PartialOrd + PartialEq {}
impl IntervalKey for f64 {}
impl IntervalKey for String {}

/// A lower bound: `-∞`, inclusive, or exclusive.
#[derive(Clone, Debug, PartialEq)]
enum Lo<K> {
    NegInf,
    Incl(K),
    Excl(K),
}

/// An upper bound: inclusive, exclusive, or `+∞`.
#[derive(Clone, Debug, PartialEq)]
enum Hi<K> {
    Incl(K),
    Excl(K),
    PosInf,
}

#[derive(Clone, Debug, PartialEq)]
struct Interval<K> {
    lo: Lo<K>,
    hi: Hi<K>,
}

impl<K: IntervalKey> Interval<K> {
    fn universe() -> Interval<K> {
        Interval {
            lo: Lo::NegInf,
            hi: Hi::PosInf,
        }
    }

    /// True if the interval contains no points (lo past hi).
    fn is_void(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Lo::NegInf, _) | (_, Hi::PosInf) => false,
            (Lo::Incl(a), Hi::Incl(b)) => a > b,
            (Lo::Incl(a), Hi::Excl(b))
            | (Lo::Excl(a), Hi::Incl(b))
            | (Lo::Excl(a), Hi::Excl(b)) => a >= b,
        }
    }
}

/// `max` of two lower bounds (tighter wins).
fn lo_max<K: IntervalKey>(a: &Lo<K>, b: &Lo<K>) -> Lo<K> {
    match (a, b) {
        (Lo::NegInf, x) | (x, Lo::NegInf) => x.clone(),
        (Lo::Incl(x), Lo::Incl(y)) => Lo::Incl(if x >= y { x.clone() } else { y.clone() }),
        (Lo::Excl(x), Lo::Excl(y)) => Lo::Excl(if x >= y { x.clone() } else { y.clone() }),
        (Lo::Incl(x), Lo::Excl(y)) | (Lo::Excl(y), Lo::Incl(x)) => {
            if y >= x {
                Lo::Excl(y.clone())
            } else {
                Lo::Incl(x.clone())
            }
        }
    }
}

/// `min` of two upper bounds (tighter wins).
fn hi_min<K: IntervalKey>(a: &Hi<K>, b: &Hi<K>) -> Hi<K> {
    match (a, b) {
        (Hi::PosInf, x) | (x, Hi::PosInf) => x.clone(),
        (Hi::Incl(x), Hi::Incl(y)) => Hi::Incl(if x <= y { x.clone() } else { y.clone() }),
        (Hi::Excl(x), Hi::Excl(y)) => Hi::Excl(if x <= y { x.clone() } else { y.clone() }),
        (Hi::Incl(x), Hi::Excl(y)) | (Hi::Excl(y), Hi::Incl(x)) => {
            if y <= x {
                Hi::Excl(y.clone())
            } else {
                Hi::Incl(x.clone())
            }
        }
    }
}

/// Total order on lower bounds for normalization.
fn lo_le<K: IntervalKey>(a: &Lo<K>, b: &Lo<K>) -> bool {
    match (a, b) {
        (Lo::NegInf, _) => true,
        (_, Lo::NegInf) => false,
        (Lo::Incl(x), Lo::Incl(y)) | (Lo::Excl(x), Lo::Excl(y)) => x <= y,
        (Lo::Incl(x), Lo::Excl(y)) => x <= y,
        (Lo::Excl(x), Lo::Incl(y)) => x < y,
    }
}

/// True if interval `a` (by upper bound) connects to or overlaps interval
/// `b` (by lower bound): their union is a single interval.
fn touches<K: IntervalKey>(hi: &Hi<K>, lo: &Lo<K>) -> bool {
    match (hi, lo) {
        (Hi::PosInf, _) | (_, Lo::NegInf) => true,
        (Hi::Incl(x), Lo::Incl(y)) => y <= x,
        (Hi::Incl(x), Lo::Excl(y)) => y <= x,
        (Hi::Excl(x), Lo::Incl(y)) => y <= x,
        // (…, x) followed by (x, …) leaves the point x uncovered.
        (Hi::Excl(x), Lo::Excl(y)) => y < x,
    }
}

/// A normalized union of disjoint, non-touching intervals.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct IntervalSet<K> {
    ivs: Vec<Interval<K>>,
}

impl<K: IntervalKey> IntervalSet<K> {
    fn normalize(mut ivs: Vec<Interval<K>>) -> IntervalSet<K> {
        ivs.retain(|iv| !iv.is_void());
        // insertion sort by lower bound (tiny vectors)
        for i in 1..ivs.len() {
            let mut j = i;
            while j > 0 && !lo_le(&ivs[j - 1].lo, &ivs[j].lo) {
                ivs.swap(j - 1, j);
                j -= 1;
            }
        }
        let mut out: Vec<Interval<K>> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            if let Some(last) = out.last_mut() {
                if touches(&last.hi, &iv.lo) {
                    // merge: keep the looser upper bound
                    let keep_new = match (&last.hi, &iv.hi) {
                        (Hi::PosInf, _) => false,
                        (_, Hi::PosInf) => true,
                        (Hi::Incl(x), Hi::Incl(y)) | (Hi::Excl(x), Hi::Excl(y)) => y > x,
                        (Hi::Incl(x), Hi::Excl(y)) => y > x,
                        (Hi::Excl(x), Hi::Incl(y)) => y >= x,
                    };
                    if keep_new {
                        last.hi = iv.hi;
                    }
                    continue;
                }
            }
            out.push(iv);
        }
        IntervalSet { ivs: out }
    }

    /// The set selected by `attr op k` over the key domain.
    pub(crate) fn from_op(op: CmpOp, k: K) -> IntervalSet<K> {
        let ivs = match op {
            CmpOp::Lt => vec![Interval {
                lo: Lo::NegInf,
                hi: Hi::Excl(k),
            }],
            CmpOp::Le => vec![Interval {
                lo: Lo::NegInf,
                hi: Hi::Incl(k),
            }],
            CmpOp::Gt => vec![Interval {
                lo: Lo::Excl(k),
                hi: Hi::PosInf,
            }],
            CmpOp::Ge => vec![Interval {
                lo: Lo::Incl(k),
                hi: Hi::PosInf,
            }],
            CmpOp::Eq => vec![Interval {
                lo: Lo::Incl(k.clone()),
                hi: Hi::Incl(k),
            }],
            CmpOp::Ne => vec![
                Interval {
                    lo: Lo::NegInf,
                    hi: Hi::Excl(k.clone()),
                },
                Interval {
                    lo: Lo::Excl(k),
                    hi: Hi::PosInf,
                },
            ],
        };
        IntervalSet::normalize(ivs)
    }

    fn intersect(&self, other: &IntervalSet<K>) -> IntervalSet<K> {
        let mut out = Vec::new();
        for a in &self.ivs {
            for b in &other.ivs {
                out.push(Interval {
                    lo: lo_max(&a.lo, &b.lo),
                    hi: hi_min(&a.hi, &b.hi),
                });
            }
        }
        IntervalSet::normalize(out)
    }

    fn union(&self, other: &IntervalSet<K>) -> IntervalSet<K> {
        let mut out = self.ivs.clone();
        out.extend(other.ivs.iter().cloned());
        IntervalSet::normalize(out)
    }

    fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    fn is_universe(&self) -> bool {
        self.ivs.len() == 1 && self.ivs[0] == Interval::universe()
    }

    fn intervals(&self) -> &[Interval<K>] {
        &self.ivs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(attr: &str, op: CmpOp, v: impl Into<Value>) -> SimplePredicate {
        SimplePredicate::new(attr, op, v)
    }

    #[test]
    fn paper_figure8_rows() {
        // Intersection (without inclusion): (CPU < 50), (CPU > 20)
        assert_eq!(
            relate(&p("CPU", CmpOp::Lt, 50i64), &p("CPU", CmpOp::Gt, 20i64)),
            Relation::Intersecting
        );
        // Discontinuous intersection: (CPU < 50), (CPU != 20)
        assert_eq!(
            relate(&p("CPU", CmpOp::Lt, 50i64), &p("CPU", CmpOp::Ne, 20i64)),
            Relation::DiscontinuousIntersection
        );
        // Equivalence: (CPU < 50), (CPU < 50)
        assert_eq!(
            relate(&p("CPU", CmpOp::Lt, 50i64), &p("CPU", CmpOp::Lt, 50.0)),
            Relation::Equal
        );
        // Inclusion: (CPU < 50) ⊃ (CPU < 20)
        assert_eq!(
            relate(&p("CPU", CmpOp::Lt, 50i64), &p("CPU", CmpOp::Lt, 20i64)),
            Relation::SupersetOfB
        );
        assert_eq!(
            relate(&p("CPU", CmpOp::Lt, 20i64), &p("CPU", CmpOp::Lt, 50i64)),
            Relation::SubsetOfB
        );
        // Disjointedness: (CPU < 50), (CPU > 80)
        assert_eq!(
            relate(&p("CPU", CmpOp::Lt, 50i64), &p("CPU", CmpOp::Gt, 80i64)),
            Relation::Disjoint
        );
    }

    #[test]
    fn complement_detection_numeric() {
        assert_eq!(
            relate(&p("x", CmpOp::Lt, 5i64), &p("x", CmpOp::Ge, 5i64)),
            Relation::Complementary
        );
        assert_eq!(
            relate(&p("x", CmpOp::Le, 5i64), &p("x", CmpOp::Gt, 5i64)),
            Relation::Complementary
        );
        assert_eq!(
            relate(&p("x", CmpOp::Eq, 5i64), &p("x", CmpOp::Ne, 5i64)),
            Relation::Complementary
        );
        // Not complementary: gap at exactly 5.
        assert_eq!(
            relate(&p("x", CmpOp::Lt, 5i64), &p("x", CmpOp::Gt, 5i64)),
            Relation::Disjoint
        );
    }

    #[test]
    fn complement_detection_bool() {
        assert_eq!(
            relate(&p("s", CmpOp::Eq, true), &p("s", CmpOp::Eq, false)),
            Relation::Complementary
        );
        assert_eq!(
            relate(&p("s", CmpOp::Eq, true), &p("s", CmpOp::Ne, true)),
            Relation::Complementary
        );
        assert_eq!(
            relate(&p("s", CmpOp::Eq, true), &p("s", CmpOp::Ne, false)),
            Relation::Equal
        );
    }

    #[test]
    fn string_relations() {
        assert_eq!(
            relate(&p("os", CmpOp::Eq, "linux"), &p("os", CmpOp::Eq, "linux")),
            Relation::Equal
        );
        assert_eq!(
            relate(&p("os", CmpOp::Eq, "linux"), &p("os", CmpOp::Eq, "bsd")),
            Relation::Disjoint
        );
        assert_eq!(
            relate(&p("os", CmpOp::Eq, "linux"), &p("os", CmpOp::Ne, "linux")),
            Relation::Complementary
        );
        assert_eq!(
            relate(&p("os", CmpOp::Eq, "linux"), &p("os", CmpOp::Ne, "bsd")),
            Relation::SubsetOfB
        );
        // Lexicographic rays work for inclusion/disjointness.
        assert_eq!(
            relate(&p("v", CmpOp::Lt, "b"), &p("v", CmpOp::Lt, "d")),
            Relation::SubsetOfB
        );
        assert_eq!(
            relate(&p("v", CmpOp::Lt, "b"), &p("v", CmpOp::Gt, "d")),
            Relation::Disjoint
        );
        // But never complementary via rays (successor gaps).
        assert_eq!(
            relate(&p("v", CmpOp::Lt, "b"), &p("v", CmpOp::Ge, "b")),
            Relation::Disjoint
        );
    }

    #[test]
    fn unrelated_and_unknown() {
        assert_eq!(
            relate(&p("a", CmpOp::Lt, 5i64), &p("b", CmpOp::Lt, 5i64)),
            Relation::Unrelated
        );
        // Mixed literal types on the same attribute.
        assert_eq!(
            relate(&p("a", CmpOp::Lt, 5i64), &p("a", CmpOp::Eq, "five")),
            Relation::Unknown
        );
        assert_eq!(
            relate(&p("a", CmpOp::Eq, true), &p("a", CmpOp::Lt, 5i64)),
            Relation::Unknown
        );
    }

    #[test]
    fn equality_point_inside_range() {
        assert_eq!(
            relate(&p("x", CmpOp::Eq, 20i64), &p("x", CmpOp::Lt, 50i64)),
            Relation::SubsetOfB
        );
        assert_eq!(
            relate(&p("x", CmpOp::Eq, 50i64), &p("x", CmpOp::Lt, 50i64)),
            Relation::Disjoint
        );
        assert_eq!(
            relate(&p("x", CmpOp::Eq, 50i64), &p("x", CmpOp::Le, 50i64)),
            Relation::SubsetOfB
        );
    }

    #[test]
    fn interval_set_mechanics() {
        // (!= 5) has two pieces; intersect with (< 7) gives two pieces.
        let ne = IntervalSet::from_op(CmpOp::Ne, 5.0);
        assert_eq!(ne.intervals().len(), 2);
        let lt = IntervalSet::from_op(CmpOp::Lt, 7.0);
        let i = ne.intersect(&lt);
        assert_eq!(i.intervals().len(), 2);
        // union of complementary rays is the universe
        let a = IntervalSet::from_op(CmpOp::Lt, 5.0);
        let b = IntervalSet::from_op(CmpOp::Ge, 5.0);
        assert!(a.union(&b).is_universe());
        assert!(a.intersect(&b).is_empty());
        // void intervals vanish
        let eq = IntervalSet::from_op(CmpOp::Eq, 5.0);
        let gt = IntervalSet::from_op(CmpOp::Gt, 5.0);
        assert!(eq.intersect(&gt).is_empty());
    }

    #[test]
    fn ne_vs_ne_numeric() {
        assert_eq!(
            relate(&p("x", CmpOp::Ne, 5i64), &p("x", CmpOp::Ne, 5i64)),
            Relation::Equal
        );
        // x!=5 vs x!=6 overlap discontinuously... their intersection is
        // three pieces; still a proper overlap.
        let r = relate(&p("x", CmpOp::Ne, 5i64), &p("x", CmpOp::Ne, 6i64));
        assert_eq!(r, Relation::DiscontinuousIntersection);
    }
}

//! Conjunctive-normal-form rewriting and structural covers (paper
//! Section 6.3).
//!
//! Moara transforms a composite predicate into CNF using the distributive
//! laws. In the CNF of a predicate, **each disjunctive clause is a
//! structural cover**: a set of groups that together contain every node
//! satisfying the whole predicate (the paper proves the cheapest CNF
//! clause is the minimum-cost structural cover). Query planning therefore
//! reduces to costing each clause and picking the cheapest.

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{Predicate, SimplePredicate};

/// A disjunction of simple predicates — one structural cover candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    /// The disjoined atoms (no duplicates, ordered by canonical key).
    pub atoms: Vec<SimplePredicate>,
}

impl Clause {
    fn normalize(mut atoms: Vec<SimplePredicate>) -> Clause {
        atoms.sort_by_key(|a| a.key());
        atoms.dedup_by(|a, b| a.key() == b.key());
        Clause { atoms }
    }

    /// The canonical key set of this clause.
    fn key_set(&self) -> BTreeSet<String> {
        self.atoms.iter().map(SimplePredicate::key).collect()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A predicate in conjunctive normal form: an `and` of [`Clause`]s.
///
/// No clauses at all means the predicate is a tautology (query the whole
/// system — the paper's "no group specified" default).
#[derive(Clone, Debug, PartialEq)]
pub struct Cnf {
    /// The conjoined clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// The tautological CNF (matches everything).
    pub fn all() -> Cnf {
        Cnf {
            clauses: Vec::new(),
        }
    }

    /// True if this CNF matches every node.
    pub fn is_all(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Drops duplicate clauses and applies absorption: a clause that is a
    /// superset of another clause is redundant (`(A) and (A or B)` ≡ `A`).
    pub fn simplify(mut self) -> Cnf {
        let sets: Vec<BTreeSet<String>> = self.clauses.iter().map(Clause::key_set).collect();
        let mut keep = vec![true; self.clauses.len()];
        for i in 0..sets.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..sets.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // Drop j if it's a strict superset of i, or an equal set
                // with a higher index (dedup).
                if sets[j].is_superset(&sets[i]) && (sets[j] != sets[i] || j > i) {
                    keep[j] = false;
                }
            }
        }
        let mut idx = 0;
        self.clauses.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        self
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "*");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// CNF conversion failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CnfError {
    /// Distribution would exceed [`MAX_CLAUSES`] clauses.
    TooLarge {
        /// The number of clauses the conversion reached before aborting.
        reached: usize,
    },
}

/// Upper bound on CNF size; beyond this the planner falls back to querying
/// the union of all mentioned groups (always a valid cover).
pub const MAX_CLAUSES: usize = 4096;

impl fmt::Display for CnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnfError::TooLarge { reached } => {
                write!(
                    f,
                    "CNF conversion exceeded {MAX_CLAUSES} clauses (reached {reached})"
                )
            }
        }
    }
}

impl std::error::Error for CnfError {}

impl Predicate {
    /// Converts the predicate to CNF via the distributive laws, with
    /// duplicate-atom, duplicate-clause, and absorption simplification.
    ///
    /// # Errors
    ///
    /// [`CnfError::TooLarge`] if distribution blows past [`MAX_CLAUSES`].
    pub fn to_cnf(&self) -> Result<Cnf, CnfError> {
        let clauses = cnf_rec(self)?;
        Ok(Cnf { clauses }.simplify())
    }
}

fn cnf_rec(p: &Predicate) -> Result<Vec<Clause>, CnfError> {
    match p {
        Predicate::All => Ok(Vec::new()),
        Predicate::Atom(a) => Ok(vec![Clause {
            atoms: vec![a.clone()],
        }]),
        Predicate::And(ps) => {
            let mut out = Vec::new();
            for p in ps {
                out.extend(cnf_rec(p)?);
                if out.len() > MAX_CLAUSES {
                    return Err(CnfError::TooLarge { reached: out.len() });
                }
            }
            Ok(out)
        }
        Predicate::Or(ps) => {
            // (C11 and C12 ...) or (C21 and ...) or ... distributes to the
            // cross product of clauses.
            let mut acc: Vec<Clause> = vec![Clause { atoms: Vec::new() }];
            let mut any_all = false;
            for p in ps {
                let rhs = cnf_rec(p)?;
                if rhs.is_empty() {
                    // Or-term that matches everything: whole Or is All.
                    any_all = true;
                    break;
                }
                let mut next = Vec::with_capacity(acc.len() * rhs.len());
                for left in &acc {
                    for right in &rhs {
                        let mut atoms = left.atoms.clone();
                        atoms.extend(right.atoms.iter().cloned());
                        next.push(Clause::normalize(atoms));
                        if next.len() > MAX_CLAUSES {
                            return Err(CnfError::TooLarge {
                                reached: next.len(),
                            });
                        }
                    }
                }
                acc = next;
            }
            if any_all {
                return Ok(Vec::new());
            }
            Ok(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use moara_attributes::AttrStore;
    use proptest::prelude::*;

    fn atom(name: &str) -> Predicate {
        Predicate::atom(name, CmpOp::Eq, true)
    }

    #[test]
    fn paper_figure6_example() {
        // ((A or B) and (A or C)) or D  →  (A or B or D) and (A or C or D)
        let p = Predicate::Or(vec![
            Predicate::And(vec![
                Predicate::Or(vec![atom("A"), atom("B")]),
                Predicate::Or(vec![atom("A"), atom("C")]),
            ]),
            atom("D"),
        ]);
        let cnf = p.to_cnf().unwrap();
        assert_eq!(cnf.clauses.len(), 2);
        let names: Vec<Vec<&str>> = cnf
            .clauses
            .iter()
            .map(|c| c.atoms.iter().map(|a| a.attr.as_str()).collect())
            .collect();
        assert!(names.contains(&vec!["A", "B", "D"]));
        assert!(names.contains(&vec!["A", "C", "D"]));
    }

    #[test]
    fn simple_forms() {
        assert!(Predicate::All.to_cnf().unwrap().is_all());
        let single = atom("A").to_cnf().unwrap();
        assert_eq!(single.clauses.len(), 1);
        assert_eq!(single.clauses[0].atoms.len(), 1);
        let and = Predicate::And(vec![atom("A"), atom("B")]).to_cnf().unwrap();
        assert_eq!(and.clauses.len(), 2);
        let or = Predicate::Or(vec![atom("A"), atom("B")]).to_cnf().unwrap();
        assert_eq!(or.clauses.len(), 1);
        assert_eq!(or.clauses[0].atoms.len(), 2);
    }

    #[test]
    fn or_with_all_term_is_all() {
        let p = Predicate::Or(vec![atom("A"), Predicate::All]);
        assert!(p.to_cnf().unwrap().is_all());
    }

    #[test]
    fn duplicate_atoms_and_clauses_removed() {
        let p = Predicate::And(vec![
            Predicate::Or(vec![atom("A"), atom("A"), atom("B")]),
            Predicate::Or(vec![atom("B"), atom("A")]),
        ]);
        let cnf = p.to_cnf().unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].atoms.len(), 2);
    }

    #[test]
    fn absorption_drops_superset_clause() {
        // (A) and (A or B) ≡ A
        let p = Predicate::And(vec![atom("A"), Predicate::Or(vec![atom("A"), atom("B")])]);
        let cnf = p.to_cnf().unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].atoms.len(), 1);
        assert_eq!(cnf.clauses[0].atoms[0].attr.as_str(), "A");
    }

    #[test]
    fn blowup_is_detected() {
        // (a1 and b1) or (a2 and b2) or ... distributes to 2^n clauses.
        let terms: Vec<Predicate> = (0..16)
            .map(|i| Predicate::And(vec![atom(&format!("a{i}")), atom(&format!("b{i}"))]))
            .collect();
        let p = Predicate::Or(terms);
        assert!(matches!(p.to_cnf(), Err(CnfError::TooLarge { .. })));
    }

    #[test]
    fn display_renders() {
        let cnf = Predicate::And(vec![Predicate::Or(vec![atom("A"), atom("B")]), atom("C")])
            .to_cnf()
            .unwrap();
        let s = cnf.to_string();
        assert!(s.contains("or"));
        assert!(s.contains("and"));
        assert_eq!(Cnf::all().to_string(), "*");
    }

    /// Strategy for small random predicates over 4 boolean attributes.
    fn arb_pred(depth: u32) -> BoxedStrategy<Predicate> {
        let leaf = (0..4u8)
            .prop_map(|i| Predicate::atom(["A", "B", "C", "D"][i as usize], CmpOp::Eq, true));
        leaf.prop_recursive(depth, 24, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..4).prop_map(Predicate::And),
                proptest::collection::vec(inner, 1..4).prop_map(Predicate::Or),
            ]
        })
        .boxed()
    }

    proptest! {
        /// CNF preserves the predicate's truth table over all assignments.
        #[test]
        fn cnf_preserves_semantics(p in arb_pred(3), assignment in 0u8..16) {
            let mut store = AttrStore::new();
            for (i, name) in ["A", "B", "C", "D"].iter().enumerate() {
                store.set(*name, (assignment >> i) & 1 == 1);
            }
            let cnf = p.to_cnf().unwrap();
            let cnf_val = cnf
                .clauses
                .iter()
                .all(|c| c.atoms.iter().any(|a| a.eval(&store)));
            prop_assert_eq!(p.eval(&store), cnf_val);
        }
    }
}

//! Recursive-descent parser for both query syntaxes.
//!
//! Triple form (the paper's Section 3.1 notation):
//!
//! ```text
//! (CPU-Usage, MAX, ServiceX = true)
//! (Mem-Util, AVG, (ServiceX = true and Apache = true))
//! (Load, TOP(3), *)
//! ```
//!
//! SQL-like form (the paper's front-end shell):
//!
//! ```text
//! SELECT max(CPU-Usage) WHERE ServiceX = true
//! SELECT count(*) WHERE (floor = 'F1' AND cluster = 'C12')
//! SELECT top(Load, 3)
//! ```

use moara_aggregation::AggKind;
use moara_attributes::Value;

use crate::ast::{CmpOp, Predicate, Query, SimplePredicate};
use crate::error::ParseError;
use crate::lexer::{lex, Token, TokenKind};

/// Parses a complete query in either syntax.
///
/// # Errors
///
/// Returns [`ParseError`] with a byte position on malformed input.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser::new(&tokens, input.len());
    let q = if p.peek_keyword("select") {
        p.sql_query()?
    } else {
        p.triple_query()?
    };
    p.expect_end()?;
    Ok(q)
}

/// Parses a standalone group predicate, e.g.
/// `(ServiceX = true and CPU-Util < 50) or Apache = true`.
///
/// # Errors
///
/// Returns [`ParseError`] with a byte position on malformed input.
pub fn parse_predicate(input: &str) -> Result<Predicate, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser::new(&tokens, input.len());
    let pred = p.predicate()?;
    p.expect_end()?;
    Ok(pred)
}

struct Parser<'a> {
    tokens: &'a [Token],
    i: usize,
    end_pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token], end_pos: usize) -> Parser<'a> {
        Parser {
            tokens,
            i: 0,
            end_pos,
        }
    }

    fn peek(&self) -> Option<&'a TokenKind> {
        self.tokens.get(self.i).map(|t| &t.kind)
    }

    fn pos(&self) -> usize {
        self.tokens.get(self.i).map_or(self.end_pos, |t| t.pos)
    }

    fn next(&mut self) -> Option<&'a TokenKind> {
        let t = self.tokens.get(self.i).map(|t| &t.kind);
        self.i += 1;
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().and_then(|k| k.keyword()) == Some(kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &TokenKind, what: &str) -> Result<(), ParseError> {
        let pos = self.pos();
        match self.next() {
            Some(k) if k == want => Ok(()),
            other => Err(ParseError::new(
                pos,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        if self.i < self.tokens.len() {
            return Err(ParseError::new(
                self.pos(),
                format!("unexpected trailing input {:?}", self.peek().unwrap()),
            ));
        }
        Ok(())
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        let pos = self.pos();
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s.clone()),
            other => Err(ParseError::new(
                pos,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    // ---- query forms -------------------------------------------------

    /// `SELECT agg(target[, k]) [WHERE predicate]`
    fn sql_query(&mut self) -> Result<Query, ParseError> {
        assert!(self.eat_keyword("select"));
        let name_pos = self.pos();
        let name = self.ident("aggregation function")?;
        self.expect(&TokenKind::LParen, "'(' after aggregation function")?;
        let target = self.agg_target()?;
        let mut explicit_k = None;
        if self.peek() == Some(&TokenKind::Comma) {
            self.next();
            let pos = self.pos();
            match self.next() {
                Some(TokenKind::Int(k)) if *k > 0 => explicit_k = Some(*k as usize),
                other => {
                    return Err(ParseError::new(
                        pos,
                        format!("expected positive integer k, found {other:?}"),
                    ))
                }
            }
        }
        self.expect(&TokenKind::RParen, "')' closing aggregation call")?;
        let agg = resolve_agg(&name, explicit_k, name_pos)?;
        let predicate = if self.eat_keyword("where") {
            self.predicate()?
        } else {
            Predicate::All
        };
        build_query(target, agg, predicate, name_pos)
    }

    /// `(target, AGG, predicate-or-*)`
    fn triple_query(&mut self) -> Result<Query, ParseError> {
        self.expect(&TokenKind::LParen, "'(' opening query triple")?;
        let target = self.agg_target()?;
        self.expect(&TokenKind::Comma, "',' after query attribute")?;
        let name_pos = self.pos();
        let name = self.ident("aggregation function")?;
        // Optional parenthesized k: TOP(3).
        let mut explicit_k = None;
        if self.peek() == Some(&TokenKind::LParen) {
            self.next();
            let pos = self.pos();
            match self.next() {
                Some(TokenKind::Int(k)) if *k > 0 => explicit_k = Some(*k as usize),
                other => {
                    return Err(ParseError::new(
                        pos,
                        format!("expected positive integer k, found {other:?}"),
                    ))
                }
            }
            self.expect(&TokenKind::RParen, "')' closing k")?;
        }
        self.expect(&TokenKind::Comma, "',' after aggregation function")?;
        let predicate = if self.peek() == Some(&TokenKind::Star) {
            self.next();
            Predicate::All
        } else {
            self.predicate()?
        };
        self.expect(&TokenKind::RParen, "')' closing query triple")?;
        let agg = resolve_agg(&name, explicit_k, name_pos)?;
        build_query(target, agg, predicate, name_pos)
    }

    /// `*` or an attribute name.
    fn agg_target(&mut self) -> Result<Option<String>, ParseError> {
        if self.peek() == Some(&TokenKind::Star) {
            self.next();
            return Ok(None);
        }
        Ok(Some(self.ident("attribute name or '*'")?))
    }

    // ---- predicates ---------------------------------------------------

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_keyword("or") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Predicate::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut terms = vec![self.primary()?];
        while self.eat_keyword("and") {
            terms.push(self.primary()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Predicate::And(terms)
        })
    }

    fn primary(&mut self) -> Result<Predicate, ParseError> {
        if self.eat_keyword("not") {
            // Explicit NOT is sugar: it rewrites into the paper's implicit
            // form by negating operators and applying De Morgan's laws, so
            // the planner only ever sees positive literals. Note the
            // domain caveat: NOT (x < 5) becomes x >= 5, which (like every
            // predicate) is only satisfied by nodes that *have* a
            // comparable `x`.
            let pos = self.pos();
            let inner = self.primary()?;
            return negate(inner)
                .ok_or_else(|| ParseError::new(pos, "cannot negate a match-all predicate"));
        }
        if self.peek() == Some(&TokenKind::LParen) {
            self.next();
            let p = self.or_expr()?;
            self.expect(&TokenKind::RParen, "')' closing group")?;
            return Ok(p);
        }
        self.atom().map(Predicate::Atom)
    }

    fn atom(&mut self) -> Result<SimplePredicate, ParseError> {
        let pos = self.pos();
        if let Some(kw) = self.peek().and_then(|k| k.keyword()) {
            return Err(ParseError::new(
                pos,
                format!("keyword {kw:?} cannot be an attribute name"),
            ));
        }
        let attr = self.ident("attribute name")?;
        let pos = self.pos();
        let op = match self.next() {
            Some(TokenKind::Op(op)) => match *op {
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                _ => unreachable!("lexer produces only known operators"),
            },
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("expected comparison operator, found {other:?}"),
                ))
            }
        };
        let value = self.literal()?;
        Ok(SimplePredicate::new(attr.as_str(), op, value))
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        let pos = self.pos();
        match self.next() {
            Some(TokenKind::Int(i)) => Ok(Value::Int(*i)),
            Some(TokenKind::Float(f)) => {
                if f.is_nan() {
                    Err(ParseError::new(pos, "NaN literal is not allowed"))
                } else {
                    Ok(Value::Float(*f))
                }
            }
            Some(TokenKind::Str(s)) => Ok(Value::str(s.clone())),
            Some(k @ TokenKind::Ident(s)) => match k.keyword() {
                Some("true") => Ok(Value::Bool(true)),
                Some("false") => Ok(Value::Bool(false)),
                Some(kw) => Err(ParseError::new(
                    pos,
                    format!("keyword {kw:?} is not a literal"),
                )),
                None => Ok(Value::str(s.clone())), // bare-word string: OS = Linux
            },
            other => Err(ParseError::new(
                pos,
                format!("expected literal, found {other:?}"),
            )),
        }
    }
}

/// Logical negation of a predicate, pushed down to the atoms: operators
/// negate (`<` ↔ `>=`, `=` ↔ `!=`) and De Morgan's laws swap `and`/`or`.
/// `None` for [`Predicate::All`], which has no expressible complement.
fn negate(p: Predicate) -> Option<Predicate> {
    match p {
        Predicate::All => None,
        Predicate::Atom(mut a) => {
            a.op = a.op.negate();
            Some(Predicate::Atom(a))
        }
        Predicate::And(ps) => ps
            .into_iter()
            .map(negate)
            .collect::<Option<Vec<_>>>()
            .map(Predicate::Or),
        Predicate::Or(ps) => ps
            .into_iter()
            .map(negate)
            .collect::<Option<Vec<_>>>()
            .map(Predicate::And),
    }
}

/// Resolves an aggregation-function name, handling the `top`/`bottom`
/// family: `top(attr, 3)`, `TOP(3)` in triple form, and the compact
/// `top3` / `top-3` spellings.
fn resolve_agg(name: &str, explicit_k: Option<usize>, pos: usize) -> Result<AggKind, ParseError> {
    let mut lower = name.to_ascii_lowercase();
    // `topk(Load, 3)` / `bottomk(Load, 2)` are accepted spellings of the
    // `top`/`bottom` family (the trailing `k` is the parameter name, not
    // a count — `top3` stays the literal-k spelling).
    if lower == "topk" {
        lower = "top".into();
    } else if lower == "bottomk" {
        lower = "bottom".into();
    }
    for (prefix, make) in [
        ("top", AggKind::TopK as fn(usize) -> AggKind),
        ("bottom", AggKind::BottomK as fn(usize) -> AggKind),
    ] {
        if let Some(rest) = lower.strip_prefix(prefix) {
            let rest = rest.strip_prefix('-').unwrap_or(rest);
            if rest.is_empty() {
                let k = explicit_k.ok_or_else(|| {
                    ParseError::new(
                        pos,
                        format!("{prefix} requires a k, e.g. {prefix}(attr, 3)"),
                    )
                })?;
                return Ok(make(k));
            }
            if let Ok(k) = rest.parse::<usize>() {
                if k == 0 {
                    return Err(ParseError::new(pos, "k must be positive"));
                }
                if explicit_k.is_some() {
                    return Err(ParseError::new(pos, "k given twice"));
                }
                return Ok(make(k));
            }
        }
    }
    if explicit_k.is_some() {
        return Err(ParseError::new(
            pos,
            format!("aggregation {name:?} does not take a k argument"),
        ));
    }
    AggKind::from_name(&lower)
        .ok_or_else(|| ParseError::new(pos, format!("unknown aggregation function {name:?}")))
}

fn build_query(
    target: Option<String>,
    agg: AggKind,
    predicate: Predicate,
    pos: usize,
) -> Result<Query, ParseError> {
    let needs_value = !matches!(agg, AggKind::Count | AggKind::Enumerate);
    if needs_value && target.is_none() {
        return Err(ParseError::new(
            pos,
            format!("aggregation {agg:?} requires an attribute, not '*'"),
        ));
    }
    Ok(Query::new(
        target.map(|s| s.as_str().into()),
        agg,
        predicate,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_triple_form() {
        let q = parse_query("(CPU-Usage, MAX, ServiceX = true)").unwrap();
        assert_eq!(q.attr.as_ref().unwrap().as_str(), "CPU-Usage");
        assert_eq!(q.agg, AggKind::Max);
        assert_eq!(q.predicate, Predicate::atom("ServiceX", CmpOp::Eq, true));
    }

    #[test]
    fn parses_sql_form_with_where() {
        let q = parse_query("SELECT avg(Mem-Util) WHERE Apache = true").unwrap();
        assert_eq!(q.agg, AggKind::Avg);
        assert_eq!(q.attr.as_ref().unwrap().as_str(), "Mem-Util");
        assert_eq!(q.predicate, Predicate::atom("Apache", CmpOp::Eq, true));
    }

    #[test]
    fn count_star_defaults_to_all_nodes() {
        let q = parse_query("SELECT count(*)").unwrap();
        assert_eq!(q.agg, AggKind::Count);
        assert_eq!(q.attr, None);
        assert_eq!(q.predicate, Predicate::All);
    }

    #[test]
    fn parses_intro_example_top3() {
        // "find top-3 loaded hosts where (ServiceX = true) and (Apache = true)"
        let q =
            parse_query("SELECT top(Load, 3) WHERE (ServiceX = true) AND (Apache = true)").unwrap();
        assert_eq!(q.agg, AggKind::TopK(3));
        match &q.predicate {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn top_k_spellings() {
        assert_eq!(
            parse_query("SELECT top3(Load)").unwrap().agg,
            AggKind::TopK(3)
        );
        assert_eq!(
            parse_query("SELECT top-3(Load)").unwrap().agg,
            AggKind::TopK(3)
        );
        assert_eq!(
            parse_query("(Load, TOP(3), *)").unwrap().agg,
            AggKind::TopK(3)
        );
        assert_eq!(
            parse_query("SELECT bottom(Load, 2)").unwrap().agg,
            AggKind::BottomK(2)
        );
        assert_eq!(
            parse_query("SELECT topk(Load, 4)").unwrap().agg,
            AggKind::TopK(4)
        );
        assert_eq!(
            parse_query("SELECT bottomk(Load, 2)").unwrap().agg,
            AggKind::BottomK(2)
        );
        assert!(parse_query("SELECT topk(Load)").is_err()); // still needs k
        assert!(parse_query("SELECT top(Load)").is_err()); // missing k
        assert!(parse_query("SELECT top0(Load)").is_err());
        assert!(parse_query("SELECT top3(Load, 4)").is_err()); // k twice
        assert!(parse_query("SELECT avg(Load, 3)").is_err()); // spurious k
    }

    #[test]
    fn nested_predicate_structure() {
        let p = parse_predicate("((A or B) and (A or C)) or D").unwrap();
        let atoms: Vec<String> = Vec::new();
        let _ = atoms;
        match p {
            Predicate::Or(top) => {
                assert_eq!(top.len(), 2);
                match &top[0] {
                    Predicate::And(inner) => assert_eq!(inner.len(), 2),
                    other => panic!("expected And, got {other:?}"),
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    // `A` alone is not a predicate in our grammar (atoms need operators);
    // the paper's abstract group letters map to `attr = value` atoms.
    fn parse_predicate(s: &str) -> Result<Predicate, ParseError> {
        // rewrite bare capitals into boolean atoms for test brevity
        let rewritten: String = s
            .chars()
            .map(|c| {
                if c.is_ascii_uppercase() && c.is_ascii_alphabetic() {
                    format!("{c} = true")
                } else {
                    c.to_string()
                }
            })
            .collect();
        super::parse_predicate(&rewritten)
    }

    #[test]
    fn literal_kinds() {
        let p = super::parse_predicate(
            "a < 5 and b >= 2.5 and c = 'hi there' and d != Linux and e = false",
        )
        .unwrap();
        let atoms = p.atoms();
        assert_eq!(atoms[0].value, Value::Int(5));
        assert_eq!(atoms[1].value, Value::Float(2.5));
        assert_eq!(atoms[2].value, Value::str("hi there"));
        assert_eq!(atoms[3].value, Value::str("Linux"));
        assert_eq!(atoms[4].value, Value::Bool(false));
    }

    #[test]
    fn operator_aliases_in_predicates() {
        let p = super::parse_predicate("a == 1 and b <> 2").unwrap();
        assert_eq!(p.atoms()[0].op, CmpOp::Eq);
        assert_eq!(p.atoms()[1].op, CmpOp::Ne);
    }

    #[test]
    fn error_reporting() {
        assert!(parse_query("SELECT noSuchAgg(x)").is_err());
        assert!(parse_query("SELECT avg(*)").is_err()); // avg needs attribute
        assert!(parse_query("SELECT avg(x) WHERE").is_err());
        assert!(super::parse_predicate("a <").is_err());
        assert!(super::parse_predicate("a = 1 b = 2").is_err()); // trailing junk
        assert!(super::parse_predicate("(a = 1").is_err()); // unbalanced
        let e = super::parse_predicate("and = 1").unwrap_err();
        assert!(e.msg.contains("keyword") || e.msg.contains("expected"));
    }

    #[test]
    fn where_keyword_case_insensitive() {
        assert!(parse_query("select COUNT(*) where X = true").is_ok());
    }

    #[test]
    fn std_parses_in_both_syntaxes() {
        assert_eq!(
            parse_query("SELECT std(CPU-Util) WHERE ServiceX = true")
                .unwrap()
                .agg,
            AggKind::Std
        );
        assert_eq!(
            parse_query("(CPU-Util, STDDEV, ServiceX = true)")
                .unwrap()
                .agg,
            AggKind::Std
        );
        assert!(parse_query("SELECT std(*)").is_err()); // needs an attribute
    }

    #[test]
    fn not_rewrites_atoms() {
        let p = super::parse_predicate("NOT x < 5").unwrap();
        assert_eq!(p, Predicate::atom("x", CmpOp::Ge, 5i64));
        let p = super::parse_predicate("NOT s = true").unwrap();
        assert_eq!(p, Predicate::atom("s", CmpOp::Ne, true));
        // Double negation cancels.
        let p = super::parse_predicate("NOT NOT x <= 3").unwrap();
        assert_eq!(p, Predicate::atom("x", CmpOp::Le, 3i64));
    }

    #[test]
    fn not_applies_de_morgan() {
        let p = super::parse_predicate("NOT (a = true AND b = true)").unwrap();
        assert_eq!(
            p,
            Predicate::Or(vec![
                Predicate::atom("a", CmpOp::Ne, true),
                Predicate::atom("b", CmpOp::Ne, true),
            ])
        );
        let p = super::parse_predicate("NOT (a = true OR x > 2)").unwrap();
        assert_eq!(
            p,
            Predicate::And(vec![
                Predicate::atom("a", CmpOp::Ne, true),
                Predicate::atom("x", CmpOp::Le, 2i64),
            ])
        );
    }

    #[test]
    fn not_composes_with_positive_terms() {
        let q =
            parse_query("SELECT count(*) WHERE ServiceX = true AND NOT (CPU-Util > 90)").unwrap();
        match &q.predicate {
            Predicate::And(ps) => {
                assert_eq!(ps[1], Predicate::atom("CPU-Util", CmpOp::Le, 90i64));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }
}

//! # moara-wire
//!
//! The binary wire codec shared by every Moara crate: a small,
//! dependency-free replacement for `serde` + `bincode` (the build
//! environment has no crates.io access, so derives are not an option).
//!
//! Layout rules, chosen to match what `bincode` with fixed-int encoding
//! would produce:
//!
//! * integers are fixed-width little-endian;
//! * `bool` is one byte (`0`/`1`);
//! * `f64` is its IEEE-754 bits, little-endian;
//! * `String`/`Vec<T>` are a `u32` little-endian element count followed by
//!   the elements;
//! * `Option<T>` is a one-byte tag followed by the payload if present;
//! * enums are a one-byte variant tag followed by the variant's fields.
//!
//! Every type also reports an exact [`Wire::encoded_len`] computed
//! arithmetically (no allocation), which the simulator uses for honest
//! bandwidth accounting — `MoaraMsg::size_bytes` is defined as
//! `FRAME_HDR + encoded_len()`, i.e. exactly what [`write_frame`] puts on
//! a TCP socket.
//!
//! Frames on a stream transport are `u32` little-endian payload length,
//! then the payload ([`write_frame`] / [`read_frame`]).

use std::io::{self, Read, Write};

/// Bytes of stream framing added per message: the `u32` length prefix.
pub const FRAME_HDR: usize = 4;

/// Upper bound accepted by [`read_frame`]; guards against corrupt length
/// prefixes allocating gigabytes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// A decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Eof,
    /// A tag or length field held an impossible value.
    Invalid(&'static str),
    /// Decoding succeeded but left unconsumed bytes (top level only).
    Trailing(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of input"),
            WireError::Invalid(what) => write!(f, "invalid wire data: {what}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Binary encoding to/from the Moara wire format.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] on truncation, [`WireError::Invalid`] on bad
    /// tags/lengths.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Exact number of bytes [`Wire::encode`] will append. Implementations
    /// compute this arithmetically; it feeds bandwidth accounting on hot
    /// paths, so it must not allocate.
    fn encoded_len(&self) -> usize;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len(), "encoded_len out of sync");
        out
    }

    /// Decodes a value that must consume the whole buffer.
    ///
    /// # Errors
    ///
    /// Everything [`Wire::decode`] returns, plus [`WireError::Trailing`]
    /// when bytes remain.
    fn from_bytes(mut buf: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Ok(v)
        } else {
            Err(WireError::Trailing(buf.len()))
        }
    }
}

/// Takes `n` bytes off the front of `buf`.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Eof);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let raw = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(raw.try_into().expect("sized take")))
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}
impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    /// `usize` travels as `u64` so 32- and 64-bit peers interoperate.
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| WireError::Invalid("usize overflow"))
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

fn encode_len_prefix(len: usize, out: &mut Vec<u8>) {
    u32::try_from(len)
        .expect("collection too large for wire format")
        .encode(out);
}

fn decode_len_prefix(buf: &mut &[u8]) -> Result<usize, WireError> {
    Ok(u32::decode(buf)? as usize)
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len_prefix(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = decode_len_prefix(buf)?;
        let raw = take(buf, n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Invalid("utf-8"))
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len_prefix(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = decode_len_prefix(buf)?;
        // Cap the pre-allocation: `n` is attacker-controlled on a socket.
        let mut v = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

// ----- stream framing ----------------------------------------------------

/// Writes one length-prefixed frame (`u32` LE length, then `payload`).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame. `Ok(None)` means the stream closed
/// cleanly at a frame boundary.
///
/// # Errors
///
/// I/O errors, mid-frame EOF (`UnexpectedEof`), and length prefixes over
/// [`MAX_FRAME`] (`InvalidData`).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_raw = [0u8; FRAME_HDR];
    let mut filled = 0;
    while filled < FRAME_HDR {
        match r.read(&mut len_raw[filled..])? {
            0 if filled == 0 => return Ok(None), // clean close
            0 => return Err(io::ErrorKind::UnexpectedEof.into()),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_raw) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length over MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes `msg` and writes it as one frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_msg<M: Wire>(w: &mut impl Write, msg: &M) -> io::Result<()> {
    write_frame(w, &msg.to_bytes())
}

/// Total bytes a value occupies on a stream transport (frame header plus
/// payload).
pub fn framed_len<M: Wire>(msg: &M) -> usize {
    FRAME_HDR + msg.encoded_len()
}

/// Bytes of sender identification inside every peer-plane frame (the
/// `u32` NodeId the TCP transport prepends to the payload).
pub const SENDER_HDR: usize = 4;

/// Total bytes a *peer-to-peer message* occupies on the TCP transport:
/// frame header, sender id, payload. `Message::size_bytes` impls should
/// use this so simulator bandwidth figures equal real socket bytes.
pub fn peer_framed_len<M: Wire>(msg: &M) -> usize {
    FRAME_HDR + SENDER_HDR + msg.encoded_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(
            bytes.len(),
            v.encoded_len(),
            "encoded_len mismatch for {v:?}"
        );
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(513u16);
        roundtrip(70_000u32);
        roundtrip(u64::MAX);
        roundtrip(-5i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(String::from("hello wörld"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip(Box::new(9i64));
        roundtrip((3u8, String::from("x")));
        roundtrip(vec![(String::from("k"), 1i64), (String::from("v"), -2)]);
    }

    #[test]
    fn nan_bits_are_preserved() {
        let v = f64::from_bits(0x7ff8_0000_0000_1234);
        let back = f64::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn truncation_and_bad_tags_error() {
        assert_eq!(u64::from_bytes(&[1, 2, 3]), Err(WireError::Eof));
        assert_eq!(bool::from_bytes(&[7]), Err(WireError::Invalid("bool tag")));
        assert_eq!(
            Option::<u8>::from_bytes(&[9]),
            Err(WireError::Invalid("option tag"))
        );
        // Vec claims 5 elements but provides 1.
        let mut bytes = Vec::new();
        encode_len_prefix(5, &mut bytes);
        1u64.encode(&mut bytes);
        assert_eq!(Vec::<u64>::from_bytes(&bytes), Err(WireError::Eof));
        // Trailing garbage is rejected at top level.
        assert_eq!(u8::from_bytes(&[1, 2]), Err(WireError::Trailing(1)));
    }

    #[test]
    fn frames_roundtrip_over_a_stream() {
        let mut stream = Vec::new();
        write_msg(&mut stream, &String::from("abc")).unwrap();
        write_msg(&mut stream, &42u64).unwrap();
        let mut r = stream.as_slice();
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(String::from_bytes(&f1).unwrap(), "abc");
        assert_eq!(f1.len() + FRAME_HDR, framed_len(&String::from("abc")));
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(u64::from_bytes(&f2).unwrap(), 42);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut stream = Vec::new();
        write_msg(&mut stream, &12345u64).unwrap();
        stream.truncate(stream.len() - 2);
        let mut r = stream.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = read_frame(&mut stream.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

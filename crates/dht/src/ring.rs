//! Global overlay membership — the "oracle bootstrap".
//!
//! The FreePastry simulator used by the paper maintains every node's
//! routing state from global knowledge of the membership, rather than by
//! exchanging join messages; [`Ring`] plays the same role here. It answers
//! the *identical* next-hop question as a [`RouterState`] whose tables were
//! built from complete membership — this equivalence is property-tested —
//! but does so with binary searches over the sorted membership instead of
//! materializing `O(n)` state per node, which is what makes the paper's
//! 16 384-node bandwidth simulations tractable.
//!
//! Joins and leaves are incremental ([`Ring::add`] / [`Ring::remove`]),
//! standing in for Pastry's join and failure-repair protocols: after a
//! membership change, all subsequent routing reflects the new membership,
//! exactly as FreePastry's repair converges to.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::id::{Id, ID_BITS};
use crate::routing::RouterState;

/// Sorted global membership of the overlay, with Pastry-equivalent routing
/// decisions computed on demand.
#[derive(Clone, Debug)]
pub struct Ring {
    bits: u32,
    half: usize,
    /// Sorted, distinct member ids.
    ids: Vec<Id>,
}

/// Default leaf-set half-size (8 per side = 16 leaves, FreePastry default).
pub const DEFAULT_LEAF_HALF: usize = 8;

impl Ring {
    /// An empty ring with `bits` bits per routing digit.
    pub fn new(bits: u32) -> Ring {
        assert!(
            bits > 0 && ID_BITS.is_multiple_of(bits),
            "bits must divide 64"
        );
        Ring {
            bits,
            half: DEFAULT_LEAF_HALF,
            ids: Vec::new(),
        }
    }

    /// A ring populated with the given member ids (deduplicated).
    pub fn from_ids(ids: impl IntoIterator<Item = Id>, bits: u32) -> Ring {
        let mut r = Ring::new(bits);
        let mut v: Vec<Id> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        r.ids = v;
        r
    }

    /// A ring of `n` nodes with ids drawn uniformly at random (collisions
    /// re-drawn), deterministic in `seed`.
    pub fn with_random_ids(n: usize, bits: u32, seed: u64) -> Ring {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < n {
            ids.insert(Id(rng.gen::<u64>()));
        }
        Ring::from_ids(ids, bits)
    }

    /// Overrides the leaf-set half-size (entries per side).
    pub fn with_leaf_half(mut self, half: usize) -> Ring {
        assert!(half > 0);
        self.half = half;
        self
    }

    /// Bits per routing digit.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Leaf-set half-size.
    pub fn leaf_half(&self) -> usize {
        self.half
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted member ids.
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: Id) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Adds a member (a node join). Returns false if already present.
    pub fn add(&mut self, id: Id) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes a member (a node leave/failure). Returns false if absent.
    pub fn remove(&mut self, id: Id) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    fn index_of(&self, id: Id) -> usize {
        self.ids.binary_search(&id).expect("id is a ring member")
    }

    fn at(&self, i: isize) -> Id {
        let n = self.ids.len() as isize;
        let idx = ((i % n) + n) % n;
        self.ids[idx as usize]
    }

    /// The key's root: the member numerically closest to `key` (ties broken
    /// toward the smaller id, making ownership unique).
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    pub fn owner(&self, key: Id) -> Id {
        assert!(!self.ids.is_empty(), "owner() on empty ring");
        let pos = match self.ids.binary_search(&key) {
            Ok(p) => return self.ids[p],
            Err(p) => p as isize,
        };
        let succ = self.at(pos);
        let pred = self.at(pos - 1);
        if pred.closer_to(key, succ) {
            pred
        } else {
            succ
        }
    }

    /// The member of `[lo, lo + span)` closest to `anchor` (ties toward
    /// the smaller id) — the slot-representative rule shared with
    /// [`RoutingTable`]'s `consider`. `None` if the range has no members.
    fn rep_in_range(&self, lo: u64, span: u128, anchor: u64) -> Option<Id> {
        let hi = (lo as u128).saturating_add(span);
        let start = self.ids.partition_point(|id| id.0 < lo);
        let end = self.ids.partition_point(|id| (id.0 as u128) < hi);
        if start == end {
            return None;
        }
        let ins = self.ids[start..end].partition_point(|id| id.0 < anchor) + start;
        let mut best: Option<Id> = None;
        for i in [ins.wrapping_sub(1), ins] {
            if i < start || i >= end {
                continue;
            }
            let cand = self.ids[i];
            best = match best {
                Some(b) if crate::routing::closer_anchor(b, cand, anchor) => Some(b),
                _ => Some(cand),
            };
        }
        best
    }

    /// Leaf-set members of `own` (indices within ±half, deduplicated).
    fn leaf_members(&self, own_idx: usize) -> Vec<Id> {
        let n = self.ids.len();
        let each = self.half.min(n.saturating_sub(1));
        let mut v = Vec::with_capacity(2 * each);
        for d in 1..=each as isize {
            for &cand in &[self.at(own_idx as isize - d), self.at(own_idx as isize + d)] {
                if cand != self.ids[own_idx] && !v.contains(&cand) {
                    v.push(cand);
                }
            }
        }
        v
    }

    /// Pastry's next-hop decision for a message at `from` heading to `key`,
    /// computed from global membership. `None` means `from` is the key's
    /// root. Produces the identical answer to a [`RouterState`] built from
    /// complete membership (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a member.
    pub fn next_hop(&self, from: Id, key: Id) -> Option<Id> {
        let n = self.ids.len();
        let i = self.index_of(from);
        if key == from {
            return None;
        }
        // Leaf-set rule. Fewer members than the combined leaf capacity
        // means the leaf set spans the whole ring (matches
        // `LeafSet::covers`'s not-full / overlapping-sides cases).
        let covered = if n - 1 < 2 * self.half {
            true
        } else {
            let lo = self.at(i as isize - self.half as isize);
            let hi = self.at(i as isize + self.half as isize);
            lo.clockwise_distance(key) <= lo.clockwise_distance(hi)
        };
        if covered {
            let mut best = from;
            for m in self.leaf_members(i) {
                if m.closer_to(key, best) {
                    best = m;
                }
            }
            return (best != from).then_some(best);
        }
        // Prefix rule: the slot representative is the range member closest
        // to this node's slot anchor (matching `RoutingTable::consider`).
        let bits = self.bits;
        let row = from.prefix_len(key, bits);
        let (base, span) = prefix_range(key.0, row + 1, bits);
        let anchor = crate::routing::slot_anchor(from.0, row, key.digit(row, bits), bits);
        if let Some(rep) = self.rep_in_range(base, span, anchor) {
            return Some(rep);
        }
        // Rare case: scan the nodes this router would know (leaf set plus
        // all routing-table representatives) for one at least as close in
        // prefix and strictly closer numerically.
        let mut cands = self.leaf_members(i);
        let digits = ID_BITS / bits;
        for r in 0..digits {
            for c in 0..(1u64 << bits) as u32 {
                if c == from.digit(r, bits) {
                    continue; // that region shares > r digits with `from`
                }
                let (b, sp) = slot_range(from.0, r, c, bits);
                let a = crate::routing::slot_anchor(from.0, r, c, bits);
                if let Some(rep) = self.rep_in_range(b, sp, a) {
                    if rep != from && !cands.contains(&rep) {
                        cands.push(rep);
                    }
                }
            }
        }
        let mut best: Option<Id> = None;
        for &cand in &cands {
            if cand.prefix_len(key, bits) >= row && cand.closer_to(key, from) {
                best = match best {
                    Some(b) if b.closer_to(key, cand) => Some(b),
                    _ => Some(cand),
                };
            }
        }
        if best.is_some() {
            return best;
        }
        // Last resort (as in FreePastry): any known node numerically
        // strictly closer to the key, prefix notwithstanding.
        for &cand in &cands {
            if cand.closer_to(key, from) {
                best = match best {
                    Some(b) if b.closer_to(key, cand) => Some(b),
                    _ => Some(cand),
                };
            }
        }
        best
    }

    /// The full overlay route from `from` to the root of `key`.
    ///
    /// # Panics
    ///
    /// Panics if the route exceeds 256 hops, which would indicate a routing
    /// loop (cannot happen: each hop strictly increases the shared prefix or
    /// strictly decreases numeric distance).
    pub fn route_path(&self, from: Id, key: Id) -> Vec<Id> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(next) = self.next_hop(cur, key) {
            path.push(next);
            cur = next;
            assert!(path.len() <= 256, "routing loop detected");
        }
        path
    }

    /// Materializes the explicit Pastry routing state for `own` from the
    /// full membership — used by tests to validate [`Ring::next_hop`] and by
    /// small-scale deployments.
    pub fn router_state(&self, own: Id) -> RouterState {
        let mut rs = RouterState::new(own, self.bits, self.half);
        for &id in &self.ids {
            rs.consider(id);
        }
        rs
    }
}

/// The id range `[base, base + span)` of all ids sharing the top
/// `digits_kept` digits with `of` (`digits_kept >= 1`).
fn prefix_range(of: u64, digits_kept: u32, bits: u32) -> (u64, u128) {
    debug_assert!(digits_kept >= 1 && digits_kept * bits <= ID_BITS);
    let shift = ID_BITS - bits * digits_kept;
    let span = 1u128 << shift;
    let low_mask = (span - 1) as u64;
    (of & !low_mask, span)
}

/// The id range of routing-table slot (row `r`, column `c`) for node `own`:
/// ids sharing exactly `r` digits with `own` whose digit `r` is `c`.
fn slot_range(own: u64, r: u32, c: u32, bits: u32) -> (u64, u128) {
    let shift = ID_BITS - bits * (r + 1);
    let span = 1u128 << shift;
    let keep = if r == 0 {
        0
    } else {
        let keep_mask = !(((1u128 << (ID_BITS - bits * r)) - 1) as u64);
        own & keep_mask
    };
    (keep | ((c as u64) << shift), span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefix_range_masks_low_bits() {
        let (base, span) = prefix_range(0xABCD_0000_0000_1234, 2, 4);
        assert_eq!(base, 0xAB00_0000_0000_0000);
        assert_eq!(span, 1u128 << 56);
        let (base, span) = prefix_range(0xFFFF_FFFF_FFFF_FFFF, 16, 4);
        assert_eq!(base, 0xFFFF_FFFF_FFFF_FFFF);
        assert_eq!(span, 1);
    }

    #[test]
    fn slot_range_combines_prefix_and_column() {
        // own = 0xAB.., row 1 col 0xC: ids 0xAC00.. to 0xACFF..
        let (base, span) = slot_range(0xAB00_0000_0000_0000, 1, 0xC, 4);
        assert_eq!(base, 0xAC00_0000_0000_0000);
        assert_eq!(span, 1u128 << 56);
        // row 0: keep nothing.
        let (base, _) = slot_range(0xAB00_0000_0000_0000, 0, 3, 4);
        assert_eq!(base, 0x3000_0000_0000_0000);
    }

    #[test]
    fn owner_is_numerically_closest() {
        let ring = Ring::from_ids([Id(10), Id(100), Id(1000)], 4);
        assert_eq!(ring.owner(Id(10)), Id(10));
        assert_eq!(ring.owner(Id(54)), Id(10)); // 44 vs 46
        assert_eq!(ring.owner(Id(56)), Id(100));
        assert_eq!(ring.owner(Id(u64::MAX)), Id(10)); // wraps
    }

    #[test]
    fn owner_tie_breaks_to_smaller_id() {
        let ring = Ring::from_ids([Id(10), Id(20)], 4);
        assert_eq!(ring.owner(Id(15)), Id(10));
    }

    #[test]
    fn add_remove_membership() {
        let mut ring = Ring::new(4);
        assert!(ring.add(Id(5)));
        assert!(!ring.add(Id(5)));
        assert!(ring.contains(Id(5)));
        assert!(ring.remove(Id(5)));
        assert!(!ring.remove(Id(5)));
        assert!(ring.is_empty());
    }

    #[test]
    fn single_node_is_root_of_everything() {
        let ring = Ring::from_ids([Id(42)], 4);
        assert_eq!(ring.next_hop(Id(42), Id(0)), None);
        assert_eq!(ring.route_path(Id(42), Id(999)), vec![Id(42)]);
    }

    #[test]
    fn routes_terminate_at_owner() {
        let ring = Ring::with_random_ids(200, 4, 3);
        let keys = [Id(0), Id(u64::MAX / 3), Id::of_attribute("ServiceX")];
        for key in keys {
            let owner = ring.owner(key);
            for &from in ring.ids().iter().step_by(17) {
                let path = ring.route_path(from, key);
                assert_eq!(*path.last().unwrap(), owner, "from {from} key {key}");
            }
        }
    }

    #[test]
    fn route_length_is_logarithmic() {
        let ring = Ring::with_random_ids(1024, 4, 9);
        let key = Id::of_attribute("CPU-Util");
        let max_hops = ring
            .ids()
            .iter()
            .map(|&f| ring.route_path(f, key).len() - 1)
            .max()
            .unwrap();
        // log_16(1024) ≈ 2.5; leaf hops and rare cases add a few.
        assert!(max_hops <= 10, "max hops {max_hops}");
    }

    proptest! {
        #[test]
        fn oracle_matches_explicit_router_state(
            seed in 0u64..500,
            n in 2usize..60,
            key in any::<u64>(),
        ) {
            let ring = Ring::with_random_ids(n, 4, seed).with_leaf_half(4);
            let key = Id(key);
            for &from in ring.ids().iter().take(12) {
                let explicit = ring.router_state(from).next_hop(key);
                let oracle = ring.next_hop(from, key);
                prop_assert_eq!(explicit, oracle, "from={} key={}", from, key);
            }
        }

        #[test]
        fn every_route_reaches_owner(seed in 0u64..100, n in 1usize..150, key in any::<u64>()) {
            let ring = Ring::with_random_ids(n, 4, seed);
            let key = Id(key);
            let owner = ring.owner(key);
            for &from in ring.ids().iter().step_by(7) {
                let path = ring.route_path(from, key);
                prop_assert_eq!(*path.last().unwrap(), owner);
                // No repeated nodes: loop-freedom.
                let set: std::collections::HashSet<_> = path.iter().collect();
                prop_assert_eq!(set.len(), path.len());
            }
        }

        #[test]
        fn membership_change_keeps_routing_sound(seed in 0u64..50, n in 3usize..80) {
            let mut ring = Ring::with_random_ids(n, 4, seed);
            let key = Id::of_attribute("Apache");
            let victim = ring.ids()[n / 2];
            ring.remove(victim);
            let owner = ring.owner(key);
            for &from in ring.ids().iter().step_by(5) {
                prop_assert_eq!(*ring.route_path(from, key).last().unwrap(), owner);
            }
        }
    }
}

//! Implicit DHT aggregation trees (paper Section 3.2, Figure 3).
//!
//! For a key `k`, the union of every node's overlay route toward `k` forms
//! a tree spanning all nodes, rooted at `k`'s owner. Because each node's
//! parent is simply its Pastry next hop toward `k`, the tree requires no
//! maintenance messages — it is *implicit* in the DHT routing state, which
//! is why the paper charges no maintenance cost to global trees.
//!
//! [`TreeTopology`] materializes this tree for the simulator: parents are
//! computed per node via [`Ring::next_hop`] and inverted into child lists.
//! On a real deployment the child lists are discovered lazily (a node
//! learns a child exists when the child's first status update or reply
//! arrives); materializing them up front is equivalent because the parent
//! relation itself is fully determined by the routing state.

use std::collections::HashMap;

use crate::id::Id;
use crate::ring::Ring;

/// The aggregation tree induced by DHT routing toward one key.
#[derive(Clone, Debug)]
pub struct TreeTopology {
    key: Id,
    root: Id,
    parent: HashMap<Id, Id>,
    children: HashMap<Id, Vec<Id>>,
    depth: HashMap<Id, u32>,
}

impl TreeTopology {
    /// Builds the tree for `key` over the given membership.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty, or (debug builds) if the induced parent
    /// relation is not a tree — which would indicate a routing bug.
    pub fn build(ring: &Ring, key: Id) -> TreeTopology {
        assert!(!ring.is_empty(), "cannot build a tree over an empty ring");
        let root = ring.owner(key);
        let mut parent: HashMap<Id, Id> = HashMap::with_capacity(ring.len());
        for &n in ring.ids() {
            if let Some(p) = ring.next_hop(n, key) {
                parent.insert(n, p);
            } else {
                debug_assert_eq!(n, root, "non-root node {n} has no next hop for {key}");
            }
        }
        // Compute depths. Routing is loop-free in all but pathological
        // id configurations (the prefix rule and the numeric fallback can
        // disagree about direction); if a cycle is found, re-parent the
        // cycle member numerically closest to the key directly to the root
        // — the moral equivalent of Pastry's final leaf-set delivery hop.
        let mut depth = HashMap::with_capacity(ring.len());
        depth.insert(root, 0u32);
        for &n in ring.ids() {
            loop {
                let mut chain = Vec::new();
                let mut cur = n;
                let mut cycled = false;
                while !depth.contains_key(&cur) {
                    if chain.contains(&cur) {
                        // Cycle: repair and restart this walk.
                        let fix = *chain
                            .iter()
                            .min_by(|a, b| {
                                if a.closer_to(key, **b) {
                                    std::cmp::Ordering::Less
                                } else {
                                    std::cmp::Ordering::Greater
                                }
                            })
                            .expect("non-empty cycle");
                        parent.insert(fix, root);
                        cycled = true;
                        break;
                    }
                    chain.push(cur);
                    cur = *parent
                        .get(&cur)
                        .unwrap_or_else(|| panic!("orphan node {cur} in tree for {key}"));
                }
                if cycled {
                    continue;
                }
                let mut d = depth[&cur];
                for &link in chain.iter().rev() {
                    d += 1;
                    depth.insert(link, d);
                }
                break;
            }
        }
        // Invert to child lists only after any cycle repairs.
        let mut children: HashMap<Id, Vec<Id>> = HashMap::with_capacity(ring.len());
        for (&c, &p) in &parent {
            children.entry(p).or_default().push(c);
        }
        for c in children.values_mut() {
            c.sort_unstable();
        }
        TreeTopology {
            key,
            root,
            parent,
            children,
            depth,
        }
    }

    /// The key this tree aggregates toward.
    pub fn key(&self) -> Id {
        self.key
    }

    /// The tree root (the key's owner).
    pub fn root(&self) -> Id {
        self.root
    }

    /// Number of nodes in the tree (== ring size at build time).
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// True if the tree is empty (never: `build` panics on an empty ring).
    pub fn is_empty(&self) -> bool {
        self.depth.is_empty()
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: Id) -> Option<Id> {
        self.parent.get(&node).copied()
    }

    /// The children of `node` (empty for leaves).
    pub fn children(&self, node: Id) -> &[Id] {
        self.children.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Depth of `node` (root = 0), or `None` if not a member.
    pub fn depth_of(&self, node: Id) -> Option<u32> {
        self.depth.get(&node).copied()
    }

    /// The height of the tree.
    pub fn max_depth(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }

    /// Iterates over all member ids.
    pub fn nodes(&self) -> impl Iterator<Item = Id> + '_ {
        self.depth.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tree_spans_all_nodes_and_roots_at_owner() {
        let ring = Ring::with_random_ids(128, 4, 21);
        let key = Id::of_attribute("ServiceX");
        let tree = TreeTopology::build(&ring, key);
        assert_eq!(tree.len(), 128);
        assert_eq!(tree.root(), ring.owner(key));
        assert_eq!(tree.parent(tree.root()), None);
        assert_eq!(tree.depth_of(tree.root()), Some(0));
    }

    #[test]
    fn children_invert_parents() {
        let ring = Ring::with_random_ids(64, 4, 5);
        let tree = TreeTopology::build(&ring, Id(12345));
        let mut via_children = 0;
        for n in ring.ids() {
            for &c in tree.children(*n) {
                assert_eq!(tree.parent(c), Some(*n));
                via_children += 1;
            }
        }
        assert_eq!(via_children, 63); // every non-root appears exactly once
    }

    #[test]
    fn depth_increases_along_parent_edges() {
        let ring = Ring::with_random_ids(100, 4, 77);
        let tree = TreeTopology::build(&ring, Id(999));
        for &n in ring.ids() {
            if let Some(p) = tree.parent(n) {
                assert_eq!(tree.depth_of(n).unwrap(), tree.depth_of(p).unwrap() + 1);
            }
        }
        assert!(tree.max_depth() >= 1);
    }

    #[test]
    fn one_bit_prefix_tree_matches_paper_figure3_shape() {
        // Paper Figure 3: 8 nodes with 3-bit ids 000..111, one-bit digits,
        // key prefix 000. With ids spread across the top octants of the
        // space, the root is the 000-prefixed node.
        let ids: Vec<Id> = (0u64..8).map(|i| Id(i << 61)).collect();
        let ring = Ring::from_ids(ids.clone(), 1).with_leaf_half(1);
        let key = Id(0); // prefix 000...
        let tree = TreeTopology::build(&ring, key);
        assert_eq!(tree.root(), Id(0));
        // All 8 nodes present, and the tree respects prefix routing: a
        // node's parent always shares at least as long a prefix with the
        // key (strictly longer unless reached via a leaf-set hop).
        assert_eq!(tree.len(), 8);
        for id in ids {
            if let Some(p) = tree.parent(id) {
                assert!(
                    p.prefix_len(key, 1) >= id.prefix_len(key, 1)
                        || p.ring_distance(key) < id.ring_distance(key)
                );
            }
        }
    }

    proptest! {
        #[test]
        fn tree_property_holds_for_random_rings(seed in 0u64..200, n in 1usize..120, key in any::<u64>()) {
            let ring = Ring::with_random_ids(n, 4, seed);
            let tree = TreeTopology::build(&ring, Id(key));
            prop_assert_eq!(tree.len(), n);
            // Exactly one root, everyone else has a parent, no cycles
            // (build() would have panicked), depths bounded.
            let roots = ring.ids().iter().filter(|&&id| tree.parent(id).is_none()).count();
            prop_assert_eq!(roots, 1);
            prop_assert!(tree.max_depth() as usize <= n);
        }

        #[test]
        fn rebuild_after_failure_excludes_failed_node(seed in 0u64..50, n in 3usize..80) {
            let mut ring = Ring::with_random_ids(n, 4, seed);
            let key = Id::of_attribute("Mem-Free");
            let victim = ring.ids()[1];
            ring.remove(victim);
            let tree = TreeTopology::build(&ring, key);
            prop_assert_eq!(tree.len(), n - 1);
            prop_assert!(tree.depth_of(victim).is_none());
            for &id in ring.ids() {
                prop_assert!(tree.parent(id) != Some(victim));
            }
        }
    }
}

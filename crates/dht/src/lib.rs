//! # moara-dht
//!
//! A from-scratch Pastry-style structured overlay, providing exactly the
//! mechanisms Moara builds on (paper Section 3.2):
//!
//! * 64-bit ring identifiers with configurable bits-per-digit prefix
//!   routing ([`Id`], [`RouterState`]) — the substrate FreePastry provided
//!   for the prototype;
//! * MD-5 hashing of group-attribute names to ring IDs ([`md5`], as in
//!   "Moara uses MD-5 to hash the group-attribute field");
//! * membership management with incremental join/leave maintenance
//!   ([`Ring`]) — the stand-in for FreePastry's join and repair protocols;
//! * implicit **DHT trees**: for any key, the union of every node's route
//!   toward that key forms a tree rooted at the key's owner
//!   ([`TreeTopology`]), which is how Moara obtains an aggregation tree per
//!   group at zero maintenance cost.
//!
//! # Example
//!
//! ```
//! use moara_dht::{Id, Ring, TreeTopology};
//!
//! // A 32-node overlay with deterministic ids.
//! let ring = Ring::with_random_ids(32, 4, 7);
//! let key = Id::of_attribute("ServiceX");
//! let tree = TreeTopology::build(&ring, key);
//! // Every node reaches the root; the structure is a tree.
//! assert_eq!(tree.root(), ring.owner(key));
//! assert_eq!(tree.len(), 32);
//! ```

mod id;
pub mod md5;
mod ring;
mod routing;
mod tree;

pub use id::Id;
pub use ring::Ring;
pub use routing::{LeafSet, RouterState, RoutingTable};
pub use tree::TreeTopology;

//! Ring identifiers and digit/prefix arithmetic.
//!
//! Pastry routes by correcting one *digit* (of `b` bits) of the key per
//! hop. We use a 64-bit identifier space — ample for the paper's largest
//! experiment (16 384 simulated nodes) while keeping arithmetic cheap.

use std::fmt;

use crate::md5;

/// A 64-bit identifier on the DHT ring.
///
/// Both nodes and keys (hashed group attributes) live in this space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub u64);

/// Number of bits in an [`Id`].
pub const ID_BITS: u32 = 64;

impl Id {
    /// Derives the ring ID of a group attribute by MD-5, as in the paper
    /// ("Moara uses MD-5 to hash the group-attribute field in p"). The top
    /// 64 bits of the digest form the ID.
    pub fn of_attribute(attribute: &str) -> Id {
        let d = md5::digest(attribute.as_bytes());
        Id(u64::from_be_bytes([
            d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7],
        ]))
    }

    /// The `i`-th digit (0 = most significant) with `bits` bits per digit.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0, does not divide 64, or `i` is out of range.
    pub fn digit(self, i: u32, bits: u32) -> u32 {
        assert!(
            bits > 0 && ID_BITS.is_multiple_of(bits),
            "bits must divide 64"
        );
        let digits = ID_BITS / bits;
        assert!(i < digits, "digit index out of range");
        let shift = ID_BITS - bits * (i + 1);
        ((self.0 >> shift) & ((1u64 << bits) - 1)) as u32
    }

    /// Length, in digits of `bits` bits, of the shared prefix of `self` and
    /// `other`.
    pub fn prefix_len(self, other: Id, bits: u32) -> u32 {
        let diff = self.0 ^ other.0;
        if diff == 0 {
            return ID_BITS / bits;
        }
        diff.leading_zeros() / bits
    }

    /// Distance going clockwise (increasing ids, wrapping) from `self` to
    /// `other`.
    pub fn clockwise_distance(self, other: Id) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Minimal ring distance between two ids (either direction).
    pub fn ring_distance(self, other: Id) -> u64 {
        let cw = self.clockwise_distance(other);
        cw.min(cw.wrapping_neg())
    }

    /// True if `self` is numerically closer to `key` than `other` is,
    /// breaking exact ties by smaller id (a total order, so exactly one of
    /// two distinct nodes is "closer" — this makes key ownership unique).
    pub fn closer_to(self, key: Id, other: Id) -> bool {
        let da = self.ring_distance(key);
        let db = other.ring_distance(key);
        da < db || (da == db && self.0 < other.0)
    }
}

impl fmt::Display for Id {
    /// Shows the full 16-hex-digit id (prefix routing is easiest to debug
    /// in hex).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl moara_wire::Wire for Id {
    fn encode(&self, out: &mut Vec<u8>) {
        moara_wire::Wire::encode(&self.0, out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, moara_wire::WireError> {
        <u64 as moara_wire::Wire>::decode(buf).map(Id)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_extract_msb_first() {
        let id = Id(0xABCD_0000_0000_0000);
        assert_eq!(id.digit(0, 4), 0xA);
        assert_eq!(id.digit(1, 4), 0xB);
        assert_eq!(id.digit(2, 4), 0xC);
        assert_eq!(id.digit(3, 4), 0xD);
        assert_eq!(id.digit(15, 4), 0);
        // One-bit digits.
        assert_eq!(Id(1 << 63).digit(0, 1), 1);
        assert_eq!(Id(1 << 62).digit(0, 1), 0);
        assert_eq!(Id(1 << 62).digit(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "digit index out of range")]
    fn digit_out_of_range_panics() {
        Id(0).digit(16, 4);
    }

    #[test]
    fn prefix_len_counts_shared_digits() {
        let a = Id(0xAB00_0000_0000_0000);
        let b = Id(0xAB70_0000_0000_0000);
        assert_eq!(a.prefix_len(b, 4), 2);
        assert_eq!(a.prefix_len(a, 4), 16);
        assert_eq!(Id(0).prefix_len(Id(1 << 63), 4), 0);
    }

    #[test]
    fn ring_distance_wraps() {
        let a = Id(u64::MAX);
        let b = Id(5);
        assert_eq!(a.ring_distance(b), 6);
        assert_eq!(b.ring_distance(a), 6);
        assert_eq!(a.clockwise_distance(b), 6);
    }

    #[test]
    fn closer_to_is_total_for_distinct_ids() {
        let key = Id(100);
        let a = Id(96);
        let b = Id(104);
        // equidistant: tie broken toward smaller id.
        assert!(a.closer_to(key, b));
        assert!(!b.closer_to(key, a));
        assert!(Id(99).closer_to(key, a));
    }

    #[test]
    fn attribute_hash_spreads() {
        let ids: std::collections::HashSet<u64> = ["CPU-Util", "Mem-Free", "ServiceX", "Apache"]
            .iter()
            .map(|s| Id::of_attribute(s).0)
            .collect();
        assert_eq!(ids.len(), 4);
        // Stable across calls.
        assert_eq!(Id::of_attribute("CPU-Util"), Id::of_attribute("CPU-Util"));
    }
}

//! Pastry routing state: the per-node routing table and leaf set.
//!
//! A node's next hop for a key is chosen exactly as in Pastry (Rowstron &
//! Druschel, Middleware 2001):
//!
//! 1. If the key falls within the span of the leaf set, deliver to the
//!    numerically closest leaf (or to self, in which case the node is the
//!    key's root).
//! 2. Otherwise forward to the routing-table entry sharing one more digit
//!    with the key than the present node.
//! 3. Rare case: forward to any known node whose shared prefix with the key
//!    is at least as long and which is numerically strictly closer.
//!
//! [`RouterState`] encodes this decision procedure over explicitly
//! maintained tables. The companion [`crate::Ring`] computes the same
//! decision from global membership (the "oracle bootstrap" used for large
//! simulations); agreement between the two is property-tested.

use crate::id::{Id, ID_BITS};

/// The anchor point of routing-table slot (row, col) for node `own`: the
/// slot's id range with the owner's low bits mapped in. Both the explicit
/// [`RoutingTable`] and the oracle `Ring` pick, as the slot representative,
/// the member of the range closest to this anchor (ties toward the smaller
/// id) — deterministic, order-independent, and different per owner.
pub(crate) fn slot_anchor(own: u64, row: u32, col: u32, bits: u32) -> u64 {
    let shift = ID_BITS - bits * (row + 1);
    let low_mask = if shift == 0 { 0 } else { (1u64 << shift) - 1 };
    let keep_mask = if row == 0 {
        0
    } else {
        !(((1u128 << (ID_BITS - bits * row)) - 1) as u64)
    };
    (own & keep_mask) | ((col as u64) << shift) | (own & low_mask)
}

/// True if `a` is at least as close to `anchor` as `b` (tie: smaller id).
pub(crate) fn closer_anchor(a: Id, b: Id, anchor: u64) -> bool {
    let da = a.0.abs_diff(anchor);
    let db = b.0.abs_diff(anchor);
    da < db || (da == db && a.0 <= b.0)
}

/// A Pastry routing table: `64/bits` rows of `2^bits` columns.
///
/// `rows[r][c]` holds a node that shares exactly `r` leading digits with
/// the owner and whose digit `r` is `c`.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    own: Id,
    bits: u32,
    rows: Vec<Vec<Option<Id>>>,
}

impl RoutingTable {
    /// An empty table for node `own` with `bits` bits per digit.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` divides 64.
    pub fn new(own: Id, bits: u32) -> RoutingTable {
        assert!(
            bits > 0 && ID_BITS.is_multiple_of(bits),
            "bits must divide 64"
        );
        let digits = (ID_BITS / bits) as usize;
        let cols = 1usize << bits;
        RoutingTable {
            own,
            bits,
            rows: vec![vec![None; cols]; digits],
        }
    }

    /// Bits per digit.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The table entry at (row, column), if populated.
    pub fn entry(&self, row: u32, col: u32) -> Option<Id> {
        self.rows[row as usize][col as usize]
    }

    /// Offers a candidate node for inclusion. The candidate lands in the
    /// slot determined by its shared prefix with the owner; an occupied
    /// slot keeps the candidate closest to the slot's *anchor point* (the
    /// owner's low bits mapped into the slot's id range). Real Pastry
    /// prefers the proximally closest node, which differs per owner — the
    /// anchor rule reproduces that per-owner diversity deterministically,
    /// so different nodes pick different representatives and interior tree
    /// load spreads instead of collapsing onto one hub. Construction is
    /// order-independent.
    pub fn consider(&mut self, candidate: Id) {
        if candidate == self.own {
            return;
        }
        let row = self.own.prefix_len(candidate, self.bits);
        let col = candidate.digit(row, self.bits);
        let anchor = slot_anchor(self.own.0, row, col, self.bits);
        let slot = &mut self.rows[row as usize][col as usize];
        match *slot {
            Some(existing) if closer_anchor(existing, candidate, anchor) => {}
            _ => *slot = Some(candidate),
        }
    }

    /// Removes a departed node from any slot holding it.
    pub fn remove(&mut self, node: Id) {
        for row in &mut self.rows {
            for slot in row.iter_mut() {
                if *slot == Some(node) {
                    *slot = None;
                }
            }
        }
    }

    /// All populated entries.
    pub fn entries(&self) -> impl Iterator<Item = Id> + '_ {
        self.rows.iter().flatten().filter_map(|s| *s)
    }
}

/// The `2*half` nodes numerically closest to the owner: `half` on each side
/// of the ring.
#[derive(Clone, Debug)]
pub struct LeafSet {
    own: Id,
    half: usize,
    /// Counter-clockwise neighbors, nearest first.
    left: Vec<Id>,
    /// Clockwise neighbors, nearest first.
    right: Vec<Id>,
}

impl LeafSet {
    /// An empty leaf set holding up to `half` nodes on each side.
    pub fn new(own: Id, half: usize) -> LeafSet {
        assert!(half > 0, "leaf set must hold at least one node per side");
        LeafSet {
            own,
            half,
            left: Vec::new(),
            right: Vec::new(),
        }
    }

    /// Capacity per side.
    pub fn half(&self) -> usize {
        self.half
    }

    fn insert_sorted(list: &mut Vec<Id>, id: Id, dist: impl Fn(Id) -> u64, cap: usize) {
        if list.contains(&id) {
            return;
        }
        let pos = list
            .iter()
            .position(|&x| dist(x) > dist(id))
            .unwrap_or(list.len());
        list.insert(pos, id);
        list.truncate(cap);
    }

    /// Offers a candidate node for inclusion on whichever sides it is among
    /// the `half` closest.
    pub fn consider(&mut self, candidate: Id) {
        if candidate == self.own {
            return;
        }
        let own = self.own;
        Self::insert_sorted(
            &mut self.right,
            candidate,
            |x| own.clockwise_distance(x),
            self.half,
        );
        Self::insert_sorted(
            &mut self.left,
            candidate,
            |x| x.clockwise_distance(own),
            self.half,
        );
    }

    /// Removes a departed node.
    pub fn remove(&mut self, node: Id) {
        self.left.retain(|&x| x != node);
        self.right.retain(|&x| x != node);
    }

    /// All distinct members (a node can be on both sides in small rings).
    pub fn members(&self) -> Vec<Id> {
        let mut v = self.left.clone();
        for &r in &self.right {
            if !v.contains(&r) {
                v.push(r);
            }
        }
        v
    }

    /// True if `key` falls within the ring span covered by the leaf set.
    ///
    /// A side that is not at capacity means there are no further nodes in
    /// that direction; overlapping sides mean the membership is smaller
    /// than the combined capacity. In both cases the set spans the whole
    /// ring.
    pub fn covers(&self, key: Id) -> bool {
        if self.left.len() < self.half || self.right.len() < self.half {
            return true;
        }
        if self.right.iter().any(|r| self.left.contains(r)) {
            return true;
        }
        let lo = *self.left.last().expect("left non-empty");
        let hi = *self.right.last().expect("right non-empty");
        // Clockwise from lo, through own, to hi.
        lo.clockwise_distance(key) <= lo.clockwise_distance(hi)
    }

    /// The member (or the owner itself) numerically closest to `key`.
    pub fn closest(&self, key: Id) -> Id {
        let mut best = self.own;
        for m in self.members() {
            if m.closer_to(key, best) {
                best = m;
            }
        }
        best
    }
}

/// Complete per-node routing state and the Pastry next-hop decision.
#[derive(Clone, Debug)]
pub struct RouterState {
    own: Id,
    table: RoutingTable,
    leaf: LeafSet,
}

impl RouterState {
    /// Empty state for node `own` with `bits` bits per digit and a leaf set
    /// of `half` nodes per side.
    pub fn new(own: Id, bits: u32, half: usize) -> RouterState {
        RouterState {
            own,
            table: RoutingTable::new(own, bits),
            leaf: LeafSet::new(own, half),
        }
    }

    /// This node's ring id.
    pub fn own(&self) -> Id {
        self.own
    }

    /// Read access to the routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Read access to the leaf set.
    pub fn leaf(&self) -> &LeafSet {
        &self.leaf
    }

    /// Incorporates knowledge of another live node.
    pub fn consider(&mut self, candidate: Id) {
        self.table.consider(candidate);
        self.leaf.consider(candidate);
    }

    /// Drops a departed node from all state.
    pub fn remove(&mut self, node: Id) {
        self.table.remove(node);
        self.leaf.remove(node);
    }

    /// Every node this router knows about.
    pub fn known(&self) -> Vec<Id> {
        let mut v = self.leaf.members();
        for e in self.table.entries() {
            if !v.contains(&e) {
                v.push(e);
            }
        }
        v
    }

    /// The Pastry next-hop decision. `None` means this node is the key's
    /// root (the rendezvous node for that key).
    pub fn next_hop(&self, key: Id) -> Option<Id> {
        if key == self.own {
            return None;
        }
        if self.leaf.covers(key) {
            let closest = self.leaf.closest(key);
            return if closest == self.own {
                None
            } else {
                Some(closest)
            };
        }
        let bits = self.table.bits();
        let row = self.own.prefix_len(key, bits);
        if let Some(e) = self.table.entry(row, key.digit(row, bits)) {
            return Some(e);
        }
        // Rare case: any known node with at least as long a shared prefix
        // with the key that is numerically strictly closer.
        let known = self.known();
        let mut best: Option<Id> = None;
        for &cand in &known {
            if cand.prefix_len(key, bits) >= row && cand.closer_to(key, self.own) {
                best = match best {
                    Some(b) if b.closer_to(key, cand) => Some(b),
                    _ => Some(cand),
                };
            }
        }
        if best.is_some() {
            return best;
        }
        // Last resort (as in FreePastry): drop the prefix requirement and
        // take any known node numerically strictly closer to the key. The
        // leaf set always contains one unless this node is the key's root.
        for &cand in &known {
            if cand.closer_to(key, self.own) {
                best = match best {
                    Some(b) if b.closer_to(key, cand) => Some(b),
                    _ => Some(cand),
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_table_slots_by_prefix() {
        let own = Id(0xAB00_0000_0000_0000);
        let mut rt = RoutingTable::new(own, 4);
        let other = Id(0xAC00_0000_0000_0000); // shares 1 digit, digit1 = C
        rt.consider(other);
        assert_eq!(rt.entry(1, 0xC), Some(other));
        assert_eq!(rt.entry(0, 0xA), None); // digit0 equal, not row 0
                                            // own is never inserted.
        rt.consider(own);
        assert_eq!(rt.entries().count(), 1);
    }

    #[test]
    fn routing_table_slot_choice_is_order_independent() {
        let own = Id(0x0000_0000_0000_1234);
        let a = Id(0x8000_0000_0000_0001);
        let b = Id(0x8000_0000_0000_2000);
        let mut rt1 = RoutingTable::new(own, 4);
        rt1.consider(a);
        rt1.consider(b);
        let mut rt2 = RoutingTable::new(own, 4);
        rt2.consider(b);
        rt2.consider(a);
        assert_eq!(rt1.entry(0, 8), rt2.entry(0, 8));
        // Anchor for (row 0, col 8) = 0x8000…1234: b (0x…2000) is closer
        // than a (0x…0001).
        assert_eq!(rt1.entry(0, 8), Some(b));
    }

    #[test]
    fn slot_anchor_maps_own_low_bits_into_slot_range() {
        let own = 0xAB00_0000_0000_0042u64;
        // row 1, col 0xC for own 0xAB…: keep digit 'A', set digit 'C'.
        let anchor = slot_anchor(own, 1, 0xC, 4);
        assert_eq!(anchor, 0xAC00_0000_0000_0042);
        // row 0: nothing kept.
        assert_eq!(slot_anchor(own, 0, 0x3, 4), 0x3B00_0000_0000_0042);
    }

    #[test]
    fn closer_anchor_ties_to_smaller_id() {
        let anchor = 100u64;
        assert!(closer_anchor(Id(99), Id(102), anchor));
        assert!(!closer_anchor(Id(103), Id(98), anchor));
        // Equidistant: smaller id wins.
        assert!(closer_anchor(Id(98), Id(102), anchor));
        assert!(!closer_anchor(Id(102), Id(98), anchor));
    }

    #[test]
    fn routing_table_remove_clears_slot() {
        let own = Id(0);
        let a = Id(0x8000_0000_0000_0001);
        let mut rt = RoutingTable::new(own, 4);
        rt.consider(a);
        rt.remove(a);
        assert_eq!(rt.entry(0, 8), None);
    }

    #[test]
    fn leafset_orders_by_ring_proximity() {
        let own = Id(100);
        let mut ls = LeafSet::new(own, 2);
        for id in [Id(90), Id(95), Id(99), Id(101), Id(105), Id(110)] {
            ls.consider(id);
        }
        // right: nearest clockwise first.
        assert_eq!(ls.right, vec![Id(101), Id(105)]);
        // left: nearest counter-clockwise first.
        assert_eq!(ls.left, vec![Id(99), Id(95)]);
    }

    #[test]
    fn leafset_covers_whole_ring_when_not_full() {
        let own = Id(100);
        let mut ls = LeafSet::new(own, 4);
        ls.consider(Id(200));
        assert!(ls.covers(Id(0)));
        assert!(ls.covers(Id(u64::MAX)));
    }

    #[test]
    fn leafset_range_check_when_full() {
        let own = Id(100);
        let mut ls = LeafSet::new(own, 1);
        ls.consider(Id(90));
        ls.consider(Id(110));
        ls.consider(Id(50)); // farther, evicted
        ls.consider(Id(150));
        assert!(ls.covers(Id(100)));
        assert!(ls.covers(Id(95)));
        assert!(!ls.covers(Id(200)));
        assert!(!ls.covers(Id(40)));
    }

    #[test]
    fn leafset_closest_prefers_numerically_nearest() {
        let own = Id(100);
        let mut ls = LeafSet::new(own, 2);
        ls.consider(Id(90));
        ls.consider(Id(104));
        assert_eq!(ls.closest(Id(103)), Id(104));
        assert_eq!(ls.closest(Id(92)), Id(90));
        assert_eq!(ls.closest(Id(100)), own);
    }

    #[test]
    fn next_hop_none_for_own_key_and_for_root() {
        let own = Id(100);
        let mut rs = RouterState::new(own, 4, 2);
        rs.consider(Id(5000));
        assert_eq!(rs.next_hop(own), None);
        // key nearest to own: leaf covers (not full), closest is own.
        assert_eq!(rs.next_hop(Id(101)), None);
    }

    #[test]
    fn next_hop_uses_leafset_for_nearby_keys() {
        let own = Id(100);
        let mut rs = RouterState::new(own, 4, 2);
        rs.consider(Id(200));
        assert_eq!(rs.next_hop(Id(199)), Some(Id(200)));
    }

    #[test]
    fn next_hop_prefix_route_for_far_keys() {
        let own = Id(0x0000_0000_0000_0064);
        let far = Id(0x8000_0000_0000_0000);
        let mut rs = RouterState::new(own, 4, 1);
        // Fill leafset so that coverage is bounded.
        rs.consider(Id(0x0000_0000_0000_0060));
        rs.consider(Id(0x0000_0000_0000_0070));
        rs.consider(far);
        let key = Id(0x8000_0000_0000_1234);
        assert_eq!(rs.next_hop(key), Some(far));
    }
}

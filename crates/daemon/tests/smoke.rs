//! End-to-end multi-process smoke test: three real `moarad` processes on
//! localhost form a cluster over TCP, and `moara-cli` answers
//! `SELECT count(*) WHERE ServiceX = true` through one of them — the
//! issue's daemon acceptance scenario, with every hop crossing process
//! boundaries.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed asserts don't leak daemons.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> String {
    // Bind-then-drop: the kernel hands out a free ephemeral port. A small
    // race window exists but is fine for CI-scale tests.
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

fn spawn_moarad(listen: &str, join: Option<&str>, attrs: &str) -> Guard {
    spawn_moarad_with(listen, join, attrs, &[]).0
}

/// Like [`spawn_moarad`] with extra flags; also returns the boot banner
/// (it carries `http=ADDR` when the gateway is enabled).
fn spawn_moarad_with(
    listen: &str,
    join: Option<&str>,
    attrs: &str,
    extra: &[&str],
) -> (Guard, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_moarad"));
    cmd.args(["--listen", listen, "--attrs", attrs])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn moarad");

    // Wait for the boot banner so the control plane is definitely up.
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        // Keep draining so the daemon never blocks on a full pipe.
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad prints its banner");
    assert!(banner.starts_with("MOARAD"), "unexpected banner: {banner}");
    (Guard(child), banner)
}

/// One raw HTTP GET on a fresh connection; returns the whole response
/// (status line, headers, body).
fn http_get(addr: &str, path_query: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect gateway");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!("GET {path_query} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn cli(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(args)
        .output()
        .expect("run moara-cli");
    (
        String::from_utf8_lossy(&out.stdout).trim().to_owned(),
        out.status.success(),
    )
}

fn wait_for_members(ctrl: &str, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (out, ok) = cli(&["--connect", ctrl, "status"]);
        // `status` reports the full liveness view, e.g.
        // `node=n1 members=3 alive=3 dead=-`; everyone must both know
        // and believe-alive the whole cluster.
        if ok && out.contains(&format!("members={want} alive={want} dead=-")) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon {ctrl} never saw {want} live members (last: {out:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn three_moarad_processes_answer_a_query_via_moara_cli() {
    let a_ctrl = free_port();
    let b_ctrl = free_port();
    let c_ctrl = free_port();

    let _a = spawn_moarad(&a_ctrl, None, "ServiceX=true,CPU-Util=10");
    let _b = spawn_moarad(&b_ctrl, Some(&a_ctrl), "ServiceX=false,CPU-Util=90");
    let _c = spawn_moarad(&c_ctrl, Some(&a_ctrl), "ServiceX=true,CPU-Util=30");

    for ctrl in [&a_ctrl, &b_ctrl, &c_ctrl] {
        wait_for_members(ctrl, 3);
    }

    // The quickstart query, fronted by the daemon whose node is NOT in
    // the group — the answer must come over the wire from the others.
    let (answer, ok) = cli(&[
        "--connect",
        &b_ctrl,
        "query",
        "SELECT count(*) WHERE ServiceX = true",
    ]);
    assert!(ok, "query must complete");
    assert_eq!(answer, "2");

    // A numeric aggregate across processes.
    let (answer, ok) = cli(&[
        "--connect",
        &c_ctrl,
        "query",
        "SELECT avg(CPU-Util) WHERE ServiceX = true",
    ]);
    assert!(ok);
    assert_eq!(answer, "20");

    // Group churn via the control plane, observed from another daemon.
    let (out, ok) = cli(&["--connect", &b_ctrl, "set", "ServiceX=true"]);
    assert!(ok);
    assert_eq!(out, "ok");
    let (answer, ok) = cli(&[
        "--connect",
        &a_ctrl,
        "query",
        "SELECT count(*) WHERE ServiceX = true",
    ]);
    assert!(ok);
    assert_eq!(answer, "3");

    // Standing query through the streaming control plane: the watcher
    // gets the initial result, then a delta-driven update when a member
    // leaves the group — across real processes and sockets.
    let mut watch = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args([
            "--connect",
            &a_ctrl,
            "watch",
            "SELECT count(*) WHERE ServiceX = true",
            "--updates",
            "2",
            "--json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn watch");
    let watch_out = watch.stdout.take().expect("piped stdout");
    let (wtx, wrx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(watch_out).lines().map_while(Result::ok) {
            let _ = wtx.send(line);
        }
    });
    let first = wrx
        .recv_timeout(Duration::from_secs(30))
        .expect("initial watch update");
    assert_eq!(
        first, r#"{"result":"3","initial":true,"complete":true}"#,
        "initial standing result"
    );
    let (out, ok) = cli(&["--connect", &c_ctrl, "set", "ServiceX=false"]);
    assert!(ok);
    assert_eq!(out, "ok");
    let second = wrx
        .recv_timeout(Duration::from_secs(30))
        .expect("delta-driven watch update");
    assert_eq!(
        second, r#"{"result":"2","initial":false,"complete":true}"#,
        "standing result tracked the change without a re-query"
    );
    let status = watch.wait().expect("watch exits after --updates 2");
    assert!(status.success());
}

/// Graceful shutdown: SIGTERM must make a daemon stop accepting, cancel
/// its standing state — explicit watches AND the result cache's
/// auto-promoted subscriptions — and exit 0, not die on the signal
/// default or strand sub state on the survivors.
#[test]
fn sigterm_shuts_a_daemon_down_cleanly() {
    let a_ctrl = free_port();
    let b_ctrl = free_port();
    // A carries the gateway with a hair-trigger promotion threshold so
    // the test can warm its result cache with two GETs.
    let (mut a, banner) = spawn_moarad_with(
        &a_ctrl,
        None,
        "ServiceX=true",
        &["--http", "127.0.0.1:0", "--cache-promote-after", "2"],
    );
    let a_http = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .to_owned();
    assert_ne!(a_http, "-", "gateway must be enabled: {banner}");
    let _b = spawn_moarad(&b_ctrl, Some(&a_ctrl), "ServiceX=true");
    wait_for_members(&a_ctrl, 2);
    wait_for_members(&b_ctrl, 2);

    // Warm A's result cache until the hot query is served from the
    // standing subscription (the promotion installed and synced).
    let q = "/v1/query?q=SELECT%20count(*)%20WHERE%20ServiceX%20%3D%20true";
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = http_get(&a_http, q);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        if resp.contains("X-Moara-Cache: hit") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "result cache never warmed: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The cache's subscription spans the cluster: B must be holding
    // sub state for it before the kill, or the drain assert is vacuous.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (out, ok) = cli(&["--connect", &b_ctrl, "status"]);
        if ok && !out.contains("subs=0") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cache subscription never reached B: {out:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // A standing watch fronted by the daemon about to die: shutdown must
    // tear it down (stream closed, subscription cancelled), not strand it.
    let mut watch = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args([
            "--connect",
            &a_ctrl,
            "watch",
            "SELECT count(*) WHERE ServiceX = true",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn watch");
    let watch_out = watch.stdout.take().expect("piped stdout");
    let (wtx, wrx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(watch_out).lines().map_while(Result::ok) {
            let _ = wtx.send(line);
        }
    });
    wrx.recv_timeout(Duration::from_secs(30))
        .expect("initial watch update");

    let pid = a.0.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = a.0.try_wait().expect("poll moarad") {
            break status;
        }
        assert!(Instant::now() < deadline, "moarad ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        status.success(),
        "graceful shutdown must exit 0, got {status:?}"
    );
    // The watcher's stream ended with the daemon; the client exits too.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if watch.try_wait().expect("poll watch").is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watch client never noticed the shutdown"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // B keeps serving: the surviving cluster answers without the peer.
    let (_, ok) = cli(&["--connect", &b_ctrl, "status"]);
    assert!(ok, "survivor still serves its control plane");

    // The shutdown flushed SubCancels for the watch AND the cache's
    // promoted subscription: B's standing sub state drains to zero
    // rather than leaking until lease expiry.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (out, ok) = cli(&["--connect", &b_ctrl, "status"]);
        if ok && out.contains("subs=0") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "survivor still holds sub state after the shutdown flush: {out:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

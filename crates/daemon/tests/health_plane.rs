//! Cluster health-plane e2e: real `moarad` processes over real sockets.
//!
//! * Every daemon samples itself and gossips a health digest on its SWIM
//!   traffic; `GET /v1/cluster/health` on ANY daemon renders the merged
//!   member table with per-peer digests.
//! * `GET /v1/cluster/metrics` federates every peer's Prometheus scrape
//!   into one instance-labeled exposition that passes the lint.
//! * `kill -9` on a member: the survivors mark it `stale` (digest aged
//!   out) and then `dead` (SWIM confirm), the `dead_members` alert
//!   fires — visible in `/v1/alerts`, `/metrics`, and a stderr JSON
//!   line — and the federated scrape reports the peer as missing.
//! * `moara-cli top --once` renders the dashboard; `status --json`
//!   carries the latency-bucket trace exemplars.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed asserts don't leak daemons.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

/// Spawns a daemon with the gateway enabled plus any extra flags;
/// returns (guard, http addr, collected stderr lines). The control
/// address is the `listen` argument itself.
fn spawn_moarad(
    listen: &str,
    join: Option<&str>,
    extra: &[&str],
) -> (Guard, String, Arc<Mutex<Vec<String>>>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_moarad"));
    cmd.args([
        "--listen",
        listen,
        "--http",
        "127.0.0.1:0",
        "--attrs",
        "ServiceX=true",
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn moarad");
    let stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");
    let logs = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&logs);
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines().map_while(Result::ok) {
            sink.lock().unwrap().push(line);
        }
    });
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad prints its banner");
    let http_addr = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .to_owned();
    assert_ne!(http_addr, "-", "gateway must be enabled: {banner}");
    (Guard(child), http_addr, logs)
}

/// One raw HTTP round trip on a fresh connection.
fn get(addr: &str, path_query: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!("GET {path_query} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Polls `/healthz` until the daemon reports `want` live members.
fn wait_alive(addr: &str, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(addr, "/healthz");
        if resp.starts_with("HTTP/1.1 200") && body_of(&resp).contains(&format!("\"alive\":{want}"))
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gateway {addr} never reported {want} alive members (last: {resp:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The status string of member `node` in a `/v1/cluster/health` body
/// (`None` until the member appears).
fn member_status(body: &str, node: u32) -> Option<String> {
    let needle = format!("{{\"node\":{node},\"status\":\"");
    let at = body.find(&needle)? + needle.len();
    Some(body[at..].split('"').next().unwrap_or("").to_owned())
}

/// Polls `/v1/cluster/health` on `addr` until every listed member shows
/// status `ok` with a gossiped summary.
fn wait_health_table_ok(addr: &str, members: &[u32]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(addr, "/v1/cluster/health");
        let body = body_of(&resp);
        let all_ok = resp.starts_with("HTTP/1.1 200")
            && members
                .iter()
                .all(|&n| member_status(body, n).as_deref() == Some("ok"))
            && !body.contains("\"summary\":null");
        if all_ok {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "health table on {addr} never converged: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The full plane on a healthy cluster: gossiped digests populate every
/// daemon's member table, a single daemon federates the whole cluster's
/// metrics into one lint-clean instance-labeled exposition, `/v1/alerts`
/// answers, `moara-cli top --once` renders the table, and `status
/// --json` carries trace exemplars.
#[test]
fn single_daemon_serves_cluster_wide_health_and_metrics() {
    let a_ctrl = free_port();
    let swim = ["--swim-period-ms", "200"];
    let (_a, a_http, _) = spawn_moarad(&a_ctrl, None, &swim);
    let (_b, b_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), &swim);
    let (_c, c_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), &swim);
    for addr in [&a_http, &b_http, &c_http] {
        wait_alive(addr, 3);
    }

    // Digests ride SWIM gossip; every daemon's merged table fills in.
    wait_health_table_ok(&a_http, &[0, 1, 2]);
    let resp = get(&a_http, "/v1/cluster/health");
    let body = body_of(&resp);
    assert!(body.contains("\"tick_p99_us\":"), "{body}");
    assert!(body.contains("\"rss_bytes\":"), "{body}");
    assert!(body.contains("\"alerts\":["), "{body}");

    // One scrape, cluster-wide series: every member under its own
    // `instance` label, and the merged text is exposition-conformant.
    let resp = get(&a_http, "/v1/cluster/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let fed = body_of(&resp);
    moara_gateway::lint_exposition(fed).unwrap_or_else(|e| panic!("federated lint: {e}\n{fed}"));
    for inst in ["n0", "n1", "n2"] {
        assert!(
            fed.contains(&format!("moara_up{{instance=\"{inst}\"}} 1")),
            "missing {inst} in federated scrape:\n{fed}"
        );
    }
    assert_eq!(fed.matches("moara_build_info{").count(), 3, "{fed}");
    assert!(fed.contains("moara_process_resident_bytes{"), "{fed}");
    assert!(fed.contains("moara_open_fds{"), "{fed}");
    assert!(!fed.contains("moara_federation_missing"), "{fed}");

    // The local scrape carries the new process/build and alert series
    // (and stays lint-clean with them).
    let resp = get(&a_http, "/metrics");
    let m = body_of(&resp);
    moara_gateway::lint_exposition(m).unwrap_or_else(|e| panic!("local lint: {e}"));
    assert!(m.contains("moara_build_info{version=\""), "{m}");
    assert!(m.contains("moara_uptime_seconds "), "{m}");
    assert!(
        m.contains("moara_alerts_firing{rule=\"dead_members\"} 0"),
        "{m}"
    );
    assert!(m.contains("moara_event_loop_stalled_ticks_total "), "{m}");
    assert!(m.contains("moara_gateway_queued_jobs "), "{m}");

    // Nothing is on fire on a healthy cluster.
    let resp = get(&a_http, "/v1/alerts");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(body_of(&resp).contains("\"firing\":[]"), "{resp}");

    // The dashboard, one frame, through the control plane.
    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["--connect", &a_ctrl, "top", "--once"])
        .output()
        .expect("run moara-cli top");
    assert!(out.status.success(), "{out:?}");
    let frame = String::from_utf8_lossy(&out.stdout);
    assert!(frame.contains("moara top"), "{frame}");
    for row in ["n0", "n1", "n2"] {
        assert!(frame.contains(row), "missing {row} in:\n{frame}");
    }
    assert!(frame.contains("3/3 members"), "{frame}");
    assert!(
        !frame.contains("\x1b["),
        "--once must not emit ANSI: {frame:?}"
    );

    // status --json surfaces the slow-bucket exemplars object.
    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["--connect", &a_ctrl, "status", "--json"])
        .output()
        .expect("run moara-cli status");
    assert!(out.status.success(), "{out:?}");
    let status = String::from_utf8_lossy(&out.stdout);
    assert!(status.contains("\"exemplars\":{"), "{status}");
}

/// The acceptance kill: `kill -9` one of three daemons. The survivor's
/// table marks it `stale` once its digest ages out, then `dead` when
/// SWIM confirms; the `dead_members` alert fires (endpoint, metrics
/// gauge, stderr JSON line); the federated scrape reports the peer as
/// a `moara_federation_missing` series instead of silence.
#[test]
fn kill_dash_nine_goes_stale_then_dead_and_fires_the_alert() {
    let a_ctrl = free_port();
    // Suspicion long enough (200 ms × 25) that the digest staleness
    // window (max(10 × period, 2 s) = 2 s) elapses before the confirm:
    // the table must demonstrably pass through `stale` on its way to
    // `dead`, exactly the ordering an operator watching `top` sees.
    let swim = ["--swim-period-ms", "200", "--swim-suspect-periods", "25"];
    let (_a, a_http, a_logs) = spawn_moarad(&a_ctrl, None, &swim);
    let (_b, b_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), &swim);
    let (mut c, c_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), &swim);
    for addr in [&a_http, &b_http, &c_http] {
        wait_alive(addr, 3);
    }
    wait_health_table_ok(&a_http, &[0, 1, 2]);

    // kill -9: no shutdown handler runs, frames just stop.
    c.0.kill().expect("SIGKILL daemon c");
    let killed_at = Instant::now();

    let mut saw_stale = false;
    let deadline = killed_at + Duration::from_secs(30);
    loop {
        let resp = get(&a_http, "/v1/cluster/health");
        let body = body_of(&resp);
        match member_status(body, 2).as_deref() {
            Some("stale") => saw_stale = true,
            Some("dead") => {
                assert!(
                    saw_stale,
                    "the table must pass through stale before dead: {body}"
                );
                // The last gossiped digest is retained for post-mortems.
                assert!(!body.contains("\"node\":2,\"status\":\"dead\",\"age_ms\":null"));
                break;
            }
            _ => {}
        }
        assert!(
            Instant::now() < deadline,
            "survivor never marked the killed daemon dead (stale={saw_stale}): {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The dead-member alert fires on the survivor, everywhere it should.
    let alert_deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let resp = get(&a_http, "/v1/alerts");
        let body = body_of(&resp);
        if body.contains("\"rule\":\"dead_members\"") {
            break;
        }
        assert!(
            Instant::now() < alert_deadline,
            "dead_members never fired: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let resp = get(&a_http, "/metrics");
    let m = body_of(&resp);
    assert!(
        m.contains("moara_alerts_firing{rule=\"dead_members\"} 1"),
        "{m}"
    );
    let lines = a_logs.lock().unwrap().clone();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"alert\":\"firing\"") && l.contains("\"rule\":\"dead_members\"")),
        "no firing JSON line on stderr: {lines:#?}"
    );

    // Federation survives the death: the merged scrape still lints and
    // the lost peer is an explicit series.
    let resp = get(&a_http, "/v1/cluster/metrics");
    let fed = body_of(&resp);
    moara_gateway::lint_exposition(fed).unwrap_or_else(|e| panic!("federated lint: {e}"));
    assert!(fed.contains("moara_up{instance=\"n0\"} 1"), "{fed}");
    assert!(fed.contains("moara_up{instance=\"n1\"} 1"), "{fed}");
    assert!(
        fed.contains("moara_federation_missing{instance=\"n2\"} 1"),
        "{fed}"
    );
}

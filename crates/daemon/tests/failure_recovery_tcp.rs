//! The issue's acceptance scenario in real time over real sockets: three
//! daemons (one per thread, exactly the `moarad` event loop) form a TCP
//! cluster; one is killed — its sockets drop, nobody is told — and the
//! survivors' SWIM detectors confirm the failure, prune the member, and
//! answer queries with the surviving count. The dead daemon then
//! restarts with `--rejoin-as` semantics (same node id, higher
//! incarnation, fresh ports), re-enters its groups' trees, and reappears
//! in both `status` and query results.
//!
//! Run single-threaded (the chaos CI job does): the test kills and
//! rebinds listeners, and parallel socket tests could mask failures as
//! flaky port reuse.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use moara_daemon::{ctrl_roundtrip, parse_attrs, CtrlReply, CtrlRequest, Daemon, DaemonOpts};
use moara_membership::SwimConfig;
use moara_simnet::SimDuration;

fn free_port() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

fn fast_swim() -> SwimConfig {
    // Quick enough to confirm a kill in a few seconds, tolerant enough
    // that scheduler starvation under a parallel `cargo test` run (many
    // busy daemon threads) does not condemn a live-but-slow daemon
    // before its refutation lands.
    SwimConfig {
        period: SimDuration::from_millis(400),
        ping_timeout: SimDuration::from_millis(130),
        suspect_periods: 6,
        ..SwimConfig::default()
    }
}

/// A daemon running on its own thread until killed (dropping the daemon
/// closes its peer listener and connections — a process crash, minus the
/// process).
struct RunningDaemon {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RunningDaemon {
    fn spawn(listen: SocketAddr, join: Option<String>, rejoin: Option<u32>, attrs: &str) -> Self {
        let attrs = parse_attrs(attrs).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut d = Daemon::start(DaemonOpts {
                join,
                rejoin,
                attrs,
                swim: fast_swim(),
                ..DaemonOpts::new(listen)
            })
            .expect("daemon boots");
            while !stop2.load(Ordering::SeqCst) {
                d.step(Duration::from_millis(2));
            }
        });
        RunningDaemon {
            stop,
            thread: Some(thread),
        }
    }

    fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RunningDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn status(ctrl: SocketAddr) -> Option<(u32, u32, u32, Vec<u32>)> {
    match ctrl_roundtrip(
        &ctrl.to_string(),
        &CtrlRequest::Status,
        Duration::from_secs(5),
    ) {
        Ok(CtrlReply::Status {
            node,
            members,
            alive,
            dead,
            ..
        }) => Some((node, members, alive, dead)),
        _ => None,
    }
}

fn wait_for_status(
    deadline: Instant,
    what: &str,
    ctrl: SocketAddr,
    pred: impl Fn(&(u32, u32, u32, Vec<u32>)) -> bool,
) {
    let mut last: Option<(u32, u32, u32, Vec<u32>)> = None;
    loop {
        let s = status(ctrl);
        if let Some(st) = &s {
            if pred(st) {
                return;
            }
        }
        last = s.or(last);
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what} at {ctrl} (last status: {last:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn count_query(ctrl: SocketAddr) -> (String, bool) {
    match ctrl_roundtrip(
        &ctrl.to_string(),
        &CtrlRequest::Query {
            text: "SELECT count(*) WHERE ServiceX = true".into(),
        },
        Duration::from_secs(30),
    ) {
        Ok(CtrlReply::Answer { result, complete }) => (result, complete),
        other => panic!("unexpected query reply {other:?}"),
    }
}

#[test]
fn killed_daemon_is_detected_pruned_and_rejoins() {
    let seed_ctrl = free_port();
    let b_ctrl = free_port();
    let c_ctrl = free_port();
    let seed_str = seed_ctrl.to_string();

    let _a = RunningDaemon::spawn(seed_ctrl, None, None, "ServiceX=true");
    let _b = RunningDaemon::spawn(b_ctrl, Some(seed_str.clone()), None, "ServiceX=true");
    let c = RunningDaemon::spawn(c_ctrl, Some(seed_str.clone()), None, "ServiceX=true");

    let deadline = Instant::now() + Duration::from_secs(120);
    for ctrl in [seed_ctrl, b_ctrl, c_ctrl] {
        wait_for_status(deadline, "cluster formation", ctrl, |&(_, m, a, _)| {
            m == 3 && a == 3
        });
    }
    // B and C join concurrently, so which of them got node id 1 vs 2 is
    // a race — ask C which one it is before killing it.
    let c_id = status(c_ctrl).expect("c answers status").0;
    let (result, complete) = count_query(b_ctrl);
    assert!(complete);
    assert_eq!(result, "3");

    // Kill daemon C: its listeners and connections drop. No component is
    // told — the survivors' detectors must conclude the failure on their
    // own, prune the member, and repair the trees.
    c.kill();
    let deadline = Instant::now() + Duration::from_secs(120);
    for ctrl in [seed_ctrl, b_ctrl] {
        // A survivor transiently (and wrongly) suspected under load
        // self-heals by refutation, so wait for the *stable* predicate:
        // the killed daemon confirmed dead and everyone else back alive.
        wait_for_status(
            deadline,
            "failure confirmation",
            ctrl,
            |(_, _, alive, dead)| *alive == 2 && *dead == vec![c_id],
        );
    }
    let (result, complete) = count_query(b_ctrl);
    assert!(complete, "post-repair query must not hang on the dead peer");
    assert_eq!(result, "2", "the crashed member leaves the answers");

    // Restart C under its old identity (fresh ports, preserved attrs —
    // what `moarad --rejoin-as 2` does after a crash).
    let c2_ctrl = free_port();
    let _c2 = RunningDaemon::spawn(c2_ctrl, Some(seed_str), Some(c_id), "ServiceX=true");
    let deadline = Instant::now() + Duration::from_secs(120);
    for ctrl in [seed_ctrl, b_ctrl, c2_ctrl] {
        wait_for_status(deadline, "rejoin propagation", ctrl, |(_, m, a, dead)| {
            *m == 3 && *a == 3 && dead.is_empty()
        });
    }
    let (result, complete) = count_query(seed_ctrl);
    assert!(complete);
    assert_eq!(result, "3", "the returnee reappears in query results");
}

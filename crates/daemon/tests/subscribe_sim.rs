//! The continuous-query acceptance scenario under deterministic
//! simulation: a daemon-shaped cluster (engine + SWIM detector + private
//! directory per node) where a front-end installs a standing query once
//! and the full lifecycle plays out —
//!
//!   subscribe → initial result → a local attribute change propagates as
//!   an incremental delta (no re-query, no size probes) → a member crash
//!   shrinks the standing result within one SWIM confirm → its rejoin
//!   restores it → the subscriber's crash stops renewals and lease
//!   expiry garbage-collects every per-node subscription entry —
//!
//! and the whole story replays byte-for-byte under the same seed.

use moara_core::{DeliveryPolicy, MoaraConfig};
use moara_daemon::SimSwarm;
use moara_membership::SwimConfig;
use moara_simnet::{NodeId, SimDuration};

const Q: &str = "SELECT count(*) WHERE ServiceX = true";
const LEASE: SimDuration = SimDuration(20_000_000); // 20 s

fn service_swarm(n: usize, seed: u64) -> SimSwarm {
    let mut s = SimSwarm::new(n, MoaraConfig::default(), SwimConfig::fast(), seed);
    for i in 0..n as u32 {
        s.set_attr(NodeId(i), "ServiceX", true);
    }
    s.run_periods(5);
    s
}

/// Runs the full lifecycle and returns every observation a client could
/// make, so determinism can be asserted run-against-run.
fn lifecycle(seed: u64) -> Vec<String> {
    let mut log = Vec::new();
    let mut s = service_swarm(5, seed);
    let origin = NodeId(0);
    let wid = s.subscribe(origin, Q, DeliveryPolicy::OnChange, LEASE);

    // Initial sync: one update carrying the full group count.
    s.run_periods(10);
    for u in s.take_sub_updates(origin, wid) {
        log.push(format!("initial={} complete={}", u.result, u.complete));
    }

    // Group churn at one member: the change flows root-ward as an
    // incremental delta — no size probes, no query fan-out.
    s.stats_mut().reset();
    s.set_attr(NodeId(3), "ServiceX", false);
    s.run_periods(10);
    for u in s.take_sub_updates(origin, wid) {
        log.push(format!("after-leave={}", u.result));
    }
    log.push(format!(
        "deltas>0={} probes={}",
        s.stats().counter("sub_deltas") > 0,
        s.stats().counter("size_probes"),
    ));

    // A member crashes. Within one SWIM confirm (suspect_periods + the
    // probe round, plus delta propagation) the standing result shrinks.
    s.crash(NodeId(2));
    let mut confirmed_at = None;
    for period in 0..100u64 {
        s.run_periods(1);
        if !s.believes_alive(NodeId(0), NodeId(2)) {
            confirmed_at = Some(period);
            break;
        }
    }
    assert!(confirmed_at.is_some(), "origin never confirmed the crash");
    // One more period for the retraction delta to reach the front-end.
    s.run_periods(2);
    let ups = s.take_sub_updates(origin, wid);
    log.push(format!(
        "after-crash={}",
        ups.last().map(|u| u.result.to_string()).unwrap_or_default()
    ));

    // The crashed member rejoins (state preserved, higher incarnation):
    // the repair wave re-pins it and the standing result recovers.
    s.restart(NodeId(2));
    s.run_periods(40);
    let ups = s.take_sub_updates(origin, wid);
    log.push(format!(
        "after-rejoin={}",
        ups.last().map(|u| u.result.to_string()).unwrap_or_default()
    ));

    // The subscriber itself crashes: renewals stop, and within one lease
    // every per-node subscription entry is garbage collected.
    assert!(s.sub_entries_total() > 0, "entries pinned while alive");
    s.crash(origin);
    s.run(SimDuration::from_micros(
        LEASE.as_micros() + 5 * 1_000_000, // one lease + slack
    ));
    log.push(format!("entries-after-lease={}", s.sub_entries_total()));
    log
}

#[test]
fn full_subscription_lifecycle_under_swim_churn() {
    let log = lifecycle(42);
    assert_eq!(
        log,
        vec![
            "initial=5 complete=true".to_owned(),
            "after-leave=4".to_owned(),
            "deltas>0=true probes=0".to_owned(),
            "after-crash=3".to_owned(),
            "after-rejoin=4".to_owned(),
            "entries-after-lease=0".to_owned(),
        ],
        "lifecycle observations"
    );
}

#[test]
fn the_lifecycle_is_deterministic() {
    assert_eq!(lifecycle(7), lifecycle(7), "same seed, same story");
}

#[test]
fn crash_shrinks_within_one_confirm_window() {
    // Tighter timing claim: from the moment the origin's detector
    // confirms the death, at most two SWIM periods pass before the
    // standing result reflects it (on_peer_failed retracts the summary
    // in the same callback; the deltas only need to cross the tree).
    let mut s = service_swarm(6, 91);
    let origin = NodeId(1);
    let wid = s.subscribe(origin, Q, DeliveryPolicy::OnChange, LEASE);
    s.run_periods(10);
    assert_eq!(
        s.take_sub_updates(origin, wid)
            .last()
            .map(|u| u.result.to_string()),
        Some("6".into())
    );
    s.crash(NodeId(4));
    for _ in 0..100 {
        s.run_periods(1);
        if !s.believes_alive(origin, NodeId(4)) {
            break;
        }
    }
    assert!(!s.believes_alive(origin, NodeId(4)), "never confirmed");
    s.run_periods(2);
    assert_eq!(
        s.take_sub_updates(origin, wid)
            .last()
            .map(|u| u.result.to_string()),
        Some("5".into()),
        "result must shrink within one confirm (+2 periods propagation)"
    );
}

//! The issue's acceptance scenario under deterministic simulation: a
//! daemon-shaped cluster (engine + SWIM detector + private directory per
//! node) where one node crashes at the *network* level, the survivors'
//! detectors confirm it without omniscient help, queries return the
//! surviving members' count, and a restart with a higher incarnation
//! rejoins and reappears in query results — replayable byte-for-byte.

use moara_core::MoaraConfig;
use moara_daemon::SimSwarm;
use moara_membership::SwimConfig;
use moara_simnet::NodeId;

fn outcome_count(out: &moara_core::QueryOutcome) -> i64 {
    match &out.result {
        moara_aggregation::AggResult::Value(moara_attributes::Value::Int(x)) => *x,
        moara_aggregation::AggResult::Empty => 0,
        other => panic!("unexpected result {other:?}"),
    }
}

fn service_swarm(n: usize, seed: u64) -> SimSwarm {
    let mut s = SimSwarm::new(n, MoaraConfig::default(), SwimConfig::fast(), seed);
    for i in 0..n as u32 {
        s.set_attr(NodeId(i), "ServiceX", true);
    }
    s.run_periods(5);
    s
}

#[test]
fn crash_is_confirmed_queries_shrink_and_rejoin_restores() {
    let mut s = service_swarm(3, 42);
    let q = "SELECT count(*) WHERE ServiceX = true";
    assert_eq!(outcome_count(&s.query(NodeId(0), q)), 3);

    // Crash node 2 at the network level: frames stop, nobody is told.
    s.crash(NodeId(2));
    s.run_periods(40);
    for survivor in [0u32, 1] {
        assert!(
            !s.believes_alive(NodeId(survivor), NodeId(2)),
            "survivor {survivor} must confirm the crash via its own detector"
        );
    }
    let out = s.query(NodeId(0), q);
    assert_eq!(
        outcome_count(&out),
        2,
        "the crashed member must leave query answers"
    );
    assert!(
        out.complete,
        "post-repair trees must not wait on the dead node"
    );

    // Restart with preserved attributes and a bumped incarnation: the
    // revival spreads by gossip, survivors reintegrate it, and it
    // reappears in query results.
    s.restart(NodeId(2));
    s.run_periods(40);
    for survivor in [0u32, 1] {
        assert!(
            s.believes_alive(NodeId(survivor), NodeId(2)),
            "survivor {survivor} must see the rejoin"
        );
    }
    let out = s.query(NodeId(1), q);
    assert_eq!(outcome_count(&out), 3, "the returnee re-enters its trees");
    assert!(out.complete);
}

#[test]
fn the_whole_failure_recovery_story_is_deterministic() {
    let run = || {
        let mut s = service_swarm(4, 7);
        let q = "SELECT count(*) WHERE ServiceX = true";
        let a = s.query(NodeId(1), q);
        s.crash(NodeId(3));
        s.run_periods(40);
        let b = s.query(NodeId(0), q);
        s.restart(NodeId(3));
        s.run_periods(40);
        let c = s.query(NodeId(2), q);
        (
            outcome_count(&a),
            outcome_count(&b),
            outcome_count(&c),
            format!("{:?}", (a.latency(), b.latency(), c.latency())),
        )
    };
    let first = run();
    assert_eq!(first, run(), "same seed ⇒ identical trace");
    assert_eq!((first.0, first.1, first.2), (4, 3, 4));
}

#[test]
fn health_digests_gossip_on_swim_traffic_with_zero_extra_messages() {
    // Two identical swarms, same seed and workload; one piggybacks
    // health digests on its SWIM traffic. Piggybacking must add ZERO
    // messages — the digests ride frames the detector sends anyway —
    // and every node must learn every peer's digest from gossip alone.
    let run = |gossip: bool| {
        let mut s = service_swarm(4, 23);
        if gossip {
            s.enable_health_gossip();
        }
        s.stats_mut().reset();
        s.run_periods(10);
        (s.stats().total_messages(), s.stats().total_bytes(), s)
    };
    let (base_msgs, base_bytes, _) = run(false);
    let (gossip_msgs, gossip_bytes, s) = run(true);
    assert_eq!(
        gossip_msgs, base_msgs,
        "digests must piggyback, never add messages"
    );
    assert!(
        gossip_bytes > base_bytes,
        "digest payloads must actually be on the wire"
    );
    for at in 0..4u32 {
        for about in 0..4u32 {
            if at == about {
                continue;
            }
            let d = s
                .peer_digest(NodeId(at), NodeId(about))
                .unwrap_or_else(|| panic!("node {at} never heard node {about}'s digest"));
            assert_eq!(d.node, about, "digest must describe its sender");
        }
    }
}

#[test]
fn interior_crash_does_not_lose_group_members() {
    // 8 daemons, 3 in the group; crash a *non*-member (which may be an
    // interior node of the group's tree): after confirmation the group
    // count must be intact.
    let mut s = SimSwarm::new(8, MoaraConfig::default(), SwimConfig::fast(), 11);
    for i in 0..3u32 {
        s.set_attr(NodeId(i), "ServiceX", true);
    }
    for i in 3..8u32 {
        s.set_attr(NodeId(i), "ServiceX", false);
    }
    s.run_periods(5);
    let q = "SELECT count(*) WHERE ServiceX = true";
    assert_eq!(outcome_count(&s.query(NodeId(4), q)), 3);
    s.crash(NodeId(6));
    s.run_periods(50);
    let out = s.query(NodeId(4), q);
    assert_eq!(outcome_count(&out), 3, "members must survive tree repair");
    assert!(out.complete);
}

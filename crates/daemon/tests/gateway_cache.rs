//! End-to-end tests for the gateway result cache across real `moarad`
//! processes: cross-daemon coherence (a write through one daemon's
//! gateway must invalidate another daemon's cached standing result via
//! SubDelta, not TTL) and single-flight request coalescing (N identical
//! concurrent queries cost one tree walk).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed asserts don't leak daemons.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

/// Spawns a daemon with the gateway enabled plus extra flags; returns
/// (guard, http addr).
fn spawn_moarad(listen: &str, join: Option<&str>, attrs: &str, extra: &[&str]) -> (Guard, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_moarad"));
    cmd.args([
        "--listen",
        listen,
        "--http",
        "127.0.0.1:0",
        "--attrs",
        attrs,
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::inherit());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn moarad");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad prints its banner");
    let http_addr = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .to_owned();
    assert_ne!(http_addr, "-", "gateway must be enabled: {banner}");
    (Guard(child), http_addr)
}

/// One raw HTTP round trip on a fresh connection; returns (status code,
/// `X-Moara-Cache` header if present, body).
fn request(addr: &str, raw: &str) -> (u16, Option<String>, String) {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {out:?}"));
    let (head, body) = out.split_once("\r\n\r\n").unwrap_or((out.as_str(), ""));
    let cache = head.lines().find_map(|l| {
        l.to_ascii_lowercase()
            .strip_prefix("x-moara-cache:")
            .map(|v| v.trim().to_owned())
    });
    (status, cache, body.to_owned())
}

fn get(addr: &str, path_query: &str) -> (u16, Option<String>, String) {
    request(
        addr,
        &format!("GET {path_query} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
}

fn post_attrs(addr: &str, body: &str) {
    let (status, _, resp) = request(
        addr,
        &format!(
            "POST /v1/attrs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 200, "attr write failed: {resp}");
}

/// Polls `/healthz` until the daemon reports `want` live members.
fn wait_alive(addr: &str, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = get(addr, "/healthz");
        if status == 200 && body.contains(&format!("\"alive\":{want}")) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gateway {addr} never reported {want} alive members (last: {body:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn enc(q: &str) -> String {
    q.replace('%', "%25")
        .replace(' ', "%20")
        .replace('=', "%3D")
        .replace('<', "%3C")
}

/// Reads one named counter out of a daemon's `/metrics` exposition.
fn metric(addr: &str, name: &str) -> u64 {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no {name} in metrics of {addr}"))
}

/// The tentpole's coherence story, across processes: daemon A serves a
/// hot query from a cache backed by a standing subscription; a write
/// through daemon B's gateway must flow back as a SubDelta that flips
/// A's next answer to a fresh walk (`hit → miss`), after which the
/// revalidated entry serves hits again with the NEW value — and at no
/// point may a cache hit carry a value the cluster never held.
#[test]
fn write_via_peer_invalidates_cached_read() {
    let a_ctrl = free_port();
    let (_a, a_http) = spawn_moarad(
        &a_ctrl,
        None,
        "ServiceX=true,CPU-Util=10",
        &["--cache-promote-after", "2"],
    );
    let (_b, b_http) = spawn_moarad(
        &free_port(),
        Some(&a_ctrl),
        "ServiceX=false,CPU-Util=90",
        &[],
    );
    let (_c, _c_http) = spawn_moarad(
        &free_port(),
        Some(&a_ctrl),
        "ServiceX=true,CPU-Util=30",
        &[],
    );
    for addr in [&a_http, &b_http] {
        wait_alive(addr, 3);
    }

    let path = format!(
        "/v1/query?q={}",
        enc("SELECT count(*) WHERE ServiceX = true")
    );

    // Warm A: repeat the query until it crosses the promotion threshold,
    // the subscription installs and syncs, and A answers from memory.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, cache, body) = get(&a_http, &path);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"result\":\"2\""), "wrong answer: {body}");
        if cache.as_deref() == Some("hit") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cache never warmed (last marker {cache:?})"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(metric(&a_http, "moara_gateway_cache_promotions_total") >= 1);

    // Write through B's gateway: B joins the group, the count becomes 3.
    post_attrs(&b_http, "ServiceX=true");

    // A's next answers: stale hits ("2") are permitted only until the
    // SubDelta lands; the FIRST response carrying "3" must be a walk
    // ("miss" — the delta invalidated the entry), and afterwards the
    // revalidated entry must serve "3" as hits. No response may carry
    // any other value, and a hit may never show "3" before a walk did.
    let deadline = Instant::now() + Duration::from_secs(30);
    let first_fresh = loop {
        let (status, cache, body) = get(&a_http, &path);
        assert_eq!(status, 200, "{body}");
        if body.contains("\"result\":\"3\"") {
            break cache;
        }
        assert!(
            body.contains("\"result\":\"2\""),
            "incoherent answer: {body}"
        );
        assert_eq!(
            cache.as_deref(),
            Some("hit"),
            "a stale '2' after the write can only come from the cache"
        );
        assert!(
            Instant::now() < deadline,
            "write never reached A's read path"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        first_fresh.as_deref(),
        Some("miss"),
        "the first fresh answer must be a walk forced by the SubDelta"
    );
    assert!(metric(&a_http, "moara_gateway_cache_invalidations_total") >= 1);

    // The revalidated standing result serves hits again — with the new
    // value this time.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, cache, body) = get(&a_http, &path);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"result\":\"3\""), "regressed: {body}");
        if cache.as_deref() == Some("hit") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cache never re-warmed after invalidation"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Single-flight dedup: N identical queries arriving together must cost
/// one tree walk — one `miss`, N−1 `coalesced` — and all N clients get
/// the same correct answer. Promotion is pushed out of reach so the
/// volley exercises dedup, not the cache.
#[test]
fn concurrent_identical_queries_walk_once() {
    let a_ctrl = free_port();
    let (_a, a_http) = spawn_moarad(
        &a_ctrl,
        None,
        "ServiceX=true,CPU-Util=10",
        &["--cache-promote-after", "1000"],
    );
    let (_b, _b_http) = spawn_moarad(
        &free_port(),
        Some(&a_ctrl),
        "ServiceX=false,CPU-Util=90",
        &[],
    );
    let (_c, _c_http) = spawn_moarad(
        &free_port(),
        Some(&a_ctrl),
        "ServiceX=true,CPU-Util=30",
        &[],
    );
    wait_alive(&a_http, 3);

    const CLIENTS: usize = 8;
    // A volley can split into two walks if a straggler arrives after the
    // first walk finished; retry with a fresh query text (a fresh cache
    // key) until one volley lands in a single walk.
    for attempt in 0..5 {
        // CPU-Util 10 and 30 pass any threshold 40..=49; 90 never does —
        // each attempt is a distinct query text with the same answer.
        let q = format!("SELECT count(*) WHERE CPU-Util < {}", 40 + attempt);
        let path = format!("/v1/query?q={}", enc(&q));
        let raw = format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");

        // Pre-connect all clients, then release them together.
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let mut workers = Vec::new();
        for _ in 0..CLIENTS {
            let addr = a_http.clone();
            let raw = raw.clone();
            let barrier = barrier.clone();
            workers.push(std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                barrier.wait();
                s.write_all(raw.as_bytes()).unwrap();
                let mut out = String::new();
                let _ = s.read_to_string(&mut out);
                out
            }));
        }
        let mut misses = 0;
        let mut coalesced = 0;
        for w in workers {
            let resp = w.join().expect("client thread");
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("\"result\":\"2\""), "wrong answer: {resp}");
            match resp {
                r if r.contains("X-Moara-Cache: miss") => misses += 1,
                r if r.contains("X-Moara-Cache: coalesced") => coalesced += 1,
                r => panic!("no cache marker in {r}"),
            }
        }
        assert_eq!(misses + coalesced, CLIENTS);
        assert!(misses >= 1, "someone must have walked");
        if misses == 1 {
            assert_eq!(coalesced, CLIENTS - 1, "all others share the one walk");
            return;
        }
    }
    panic!("five volleys of {CLIENTS} identical queries never coalesced into one walk");
}

//! End-to-end tests for the gateway's epoll reactor and middleware
//! stack against real `moarad` processes: request-smuggling rejection
//! (with a pipelined-desync proof), per-peer rate limiting (429),
//! per-request deadlines (408), ten thousand idle keep-alive
//! connections on one daemon, and SSE hang-up draining standing watch
//! state across a cluster.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed asserts don't leak daemons.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

/// Spawns a daemon with the gateway enabled plus any extra flags;
/// returns (guard, http addr).
fn spawn_moarad(listen: &str, join: Option<&str>, extra: &[&str]) -> (Guard, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_moarad"));
    cmd.args([
        "--listen",
        listen,
        "--http",
        "127.0.0.1:0",
        "--attrs",
        "ServiceX=true",
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::inherit());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn moarad");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad prints its banner");
    let http_addr = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .to_owned();
    assert_ne!(http_addr, "-", "gateway must be enabled: {banner}");
    (Guard(child), http_addr)
}

/// One raw HTTP round trip on a fresh connection; returns the full
/// response bytes read until the server closes.
fn http(addr: &str, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn get(addr: &str, path_query: &str) -> String {
    http(
        addr,
        &format!("GET {path_query} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// One gauge/counter value out of a `/metrics` exposition.
fn metric(exposition: &str, name: &str) -> Option<f64> {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
}

/// The smuggling surface, end to end: `Transfer-Encoding` answers 501
/// and closes (so the chunked body's embedded request is never parsed),
/// conflicting `Content-Length` answers 400 and closes, and a rejected
/// request's body is drained so the keep-alive connection stays in sync.
#[test]
fn smuggling_vectors_are_rejected_end_to_end() {
    let (_d, addr) = spawn_moarad(&free_port(), None, &[]);

    // TE desync proof: with the old ignore-the-header behavior, the
    // chunked body stayed in the buffer and the embedded
    // `GET /v1/query?q=evil` would have executed as a second request.
    let resp = http(
        &addr,
        "POST /v1/attrs HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
         5\r\nA=1&B\r\n0\r\n\r\n\
         GET /v1/query?q=evil HTTP/1.1\r\nHost: x\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 501 "), "{resp}");
    assert_eq!(
        resp.matches("HTTP/1.1").count(),
        1,
        "connection must close after 501, no second response: {resp}"
    );

    // CL.CL: conflicting duplicate Content-Length is a hard 400 + close.
    let resp = http(
        &addr,
        "POST /v1/attrs HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\nContent-Length: 30\r\n\r\nA=1",
    );
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
    assert_eq!(resp.matches("HTTP/1.1").count(), 1, "{resp}");

    // A rejected-by-routing request's body must not desync the next
    // pipelined request.
    let resp = http(
        &addr,
        "POST /nope HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello\
         GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");
    assert!(resp.contains("HTTP/1.1 200 OK\r\n"), "{resp}");
    assert!(body_of(&resp).contains("\"status\":\"ok\""), "{resp}");

    // The smuggled query never reached the router, let alone the daemon.
    let resp = get(&addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    let m = body_of(&resp);
    assert_eq!(
        metric(m, "moara_gateway_requests_total{endpoint=\"query\"}"),
        Some(0.0),
        "smuggled query must never execute:\n{m}"
    );
}

/// `--gw-rate-limit` answers 429 once the peer's burst is spent, and the
/// rejection is counted in `/metrics`.
#[test]
fn rate_limit_answers_429_over_real_daemon() {
    let (_d, addr) = spawn_moarad(&free_port(), None, &["--gw-rate-limit", "5"]);

    // Burst auto-sizes to 2×rate = 10 tokens; 14 rapid requests must
    // spill past it.
    let mut ok = 0;
    let mut limited = 0;
    for _ in 0..14 {
        let resp = get(&addr, "/healthz");
        if resp.starts_with("HTTP/1.1 200 ") {
            ok += 1;
        } else if resp.starts_with("HTTP/1.1 429 ") {
            limited += 1;
        } else {
            panic!("unexpected response: {resp}");
        }
    }
    assert!(ok >= 1, "the burst must admit something (ok={ok})");
    assert!(
        limited >= 1,
        "the bucket must reject past the burst (ok={ok})"
    );

    // Let the bucket refill enough to admit the scrape, then check the
    // counter surfaced.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let resp = get(&addr, "/metrics");
        if resp.starts_with("HTTP/1.1 200 ") {
            let m = body_of(&resp);
            let counted = metric(m, "moara_gateway_rate_limited_total").unwrap_or(0.0);
            assert!(counted >= f64::from(limited), "{counted} < {limited}:\n{m}");
            break;
        }
        assert!(Instant::now() < deadline, "metrics never admitted: {resp}");
    }
}

/// `--gw-request-timeout-ms 1` expires a real query round trip: the
/// daemon's event loop polls on a multi-millisecond cadence, so a 1 ms
/// deadline fires and the gateway answers 408.
#[test]
fn request_deadline_answers_408_over_real_daemon() {
    let (_d, addr) = spawn_moarad(&free_port(), None, &["--gw-request-timeout-ms", "1"]);

    // Fresh query text each attempt (no cache/coalescing short-cuts);
    // one of a handful of attempts must cross the 1 ms deadline.
    let mut saw_408 = false;
    for i in 0..10 {
        let resp = get(
            &addr,
            &format!("/v1/query?q=SELECT%20count(*)%20WHERE%20Attempt%20%3D%20{i}"),
        );
        if resp.starts_with("HTTP/1.1 408 ") {
            saw_408 = true;
            break;
        }
    }
    assert!(saw_408, "a 1 ms deadline must expire some real round trip");
}

/// The reactor's reason to exist: one daemon holds 10k idle keep-alive
/// connections and stays responsive on `/healthz` throughout — and the
/// parked connections themselves still serve when spoken to.
#[test]
fn ten_thousand_idle_connections_stay_responsive() {
    // Idle timeout raised above the test's worst-case runtime so a slow
    // machine cannot get the early waves reaped before the sample.
    let (_d, addr) = spawn_moarad(&free_port(), None, &["--gw-idle-timeout-ms", "600000"]);

    let mut idle: Vec<TcpStream> = Vec::with_capacity(10_000);
    for wave in 0..20 {
        for _ in 0..500 {
            idle.push(TcpStream::connect(&addr).expect("connect idle"));
        }
        // After every wave the gateway must still answer promptly.
        let resp = get(&addr, "/healthz");
        assert!(resp.starts_with("HTTP/1.1 200 "), "wave {wave}: {resp}");
    }
    assert_eq!(idle.len(), 10_000);

    // The parked connections are live state machines, not just open fds:
    // a sample of them serves requests.
    for i in [0usize, 2_500, 5_000, 7_500, 9_999] {
        let s = &mut idle[i];
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 200 "), "conn {i}: {out}");
    }

    // The gauge saw them all (5 sampled conns closed above).
    let resp = get(&addr, "/metrics");
    let m = body_of(&resp);
    let open = metric(m, "moara_gateway_open_connections").unwrap_or(0.0);
    assert!(open >= 9_000.0, "open_connections={open}\n");
    let accepted = metric(m, "moara_gateway_connections_accepted_total").unwrap_or(0.0);
    assert!(accepted >= 10_000.0, "accepted={accepted}");
}

/// Abrupt SSE hang-ups under the reactor still tear standing watch state
/// down to zero on every daemon (the `concurrent_ctrl` invariant, over
/// HTTP): the daemon notices the dead sink, cancels the subscription,
/// and peers GC their entries.
#[test]
fn sse_hangup_drains_watch_state_across_the_cluster() {
    let seed_ctrl = free_port();
    // --no-query-cache so cache-promoted standing subscriptions cannot
    // muddy the zero-watches assertion.
    let (_a, a_http) = spawn_moarad(&seed_ctrl, None, &["--no-query-cache"]);
    let (_b, b_http) = spawn_moarad(&free_port(), Some(&seed_ctrl), &["--no-query-cache"]);
    let (_c, c_http) = spawn_moarad(&free_port(), Some(&seed_ctrl), &["--no-query-cache"]);
    let daemons = [&a_http, &b_http, &c_http];

    // Wait for full membership.
    let deadline = Instant::now() + Duration::from_secs(30);
    for addr in daemons {
        loop {
            let resp = get(addr, "/healthz");
            if body_of(&resp).contains("\"alive\":3") {
                break;
            }
            assert!(Instant::now() < deadline, "cluster never formed: {resp}");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // One SSE stream per daemon; each must deliver its initial frame
    // (proving the standing query is installed) before we hang up.
    let mut streams = Vec::new();
    for addr in daemons {
        let mut s = TcpStream::connect(addr).expect("connect watch");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(
            b"GET /v1/watch?q=SELECT%20count(*)%20WHERE%20ServiceX%20%3D%20true&lease_ms=5000 \
              HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();
        let mut reader = BufReader::new(s);
        let frame_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("SSE read");
            if line.starts_with("data: ") {
                assert!(line.contains("\"initial\":true"), "{line}");
                break;
            }
            assert!(Instant::now() < frame_deadline, "no initial frame");
        }
        streams.push(reader);
    }

    // Abrupt hang-up: drop all three sockets without any protocol nicety.
    drop(streams);

    // Every daemon must drain to zero watches and zero standing entries.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    for addr in daemons {
        loop {
            let resp = get(addr, "/metrics");
            let m = body_of(&resp);
            let watches = metric(m, "moara_subscribe_watches");
            let entries = metric(m, "moara_subscribe_entries");
            if watches == Some(0.0) && entries == Some(0.0) {
                break;
            }
            assert!(
                Instant::now() < drain_deadline,
                "daemon {addr} leaked watches={watches:?} entries={entries:?}"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
        // And the gateway's stream gauge agrees.
        let resp = get(addr, "/metrics");
        assert_eq!(
            metric(body_of(&resp), "moara_gateway_open_streams"),
            Some(0.0)
        );
    }
}

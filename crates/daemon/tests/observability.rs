//! Observability-plane e2e: real `moarad` processes over real sockets.
//!
//! * A composite query through a 3-daemon TCP cluster yields one trace
//!   whose merged span tree covers all three daemons with parse / plan /
//!   fan-out / fold phases and per-hop queue vs service time, rendered
//!   both by `GET /v1/trace/{id}` and by `moara-cli trace`.
//! * `/metrics` is a conformant Prometheus exposition carrying at least
//!   four histogram families.
//! * `--access-log` and `--slow-query-ms` emit one JSON line per event
//!   on stderr.
//! * A trace cut by a crashed daemon still renders, with the lost
//!   subtree in the `missing` list, within bounded time — no hang.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed asserts don't leak daemons.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

/// Spawns a daemon with the gateway enabled plus any extra flags;
/// returns (guard, http addr, collected stderr lines).
fn spawn_moarad(
    listen: &str,
    join: Option<&str>,
    attrs: &str,
    extra: &[&str],
) -> (Guard, String, Arc<Mutex<Vec<String>>>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_moarad"));
    cmd.args([
        "--listen",
        listen,
        "--http",
        "127.0.0.1:0",
        "--attrs",
        attrs,
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn moarad");
    let stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");
    let logs = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&logs);
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines().map_while(Result::ok) {
            sink.lock().unwrap().push(line);
        }
    });
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad prints its banner");
    let http_addr = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .to_owned();
    assert_ne!(http_addr, "-", "gateway must be enabled: {banner}");
    (Guard(child), http_addr, logs)
}

/// One raw HTTP round trip on a fresh connection.
fn http(addr: &str, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn get(addr: &str, path_query: &str) -> String {
    http(
        addr,
        &format!("GET {path_query} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Polls `/healthz` until the daemon reports `want` live members.
fn wait_alive(addr: &str, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(addr, "/healthz");
        if resp.starts_with("HTTP/1.1 200") && body_of(&resp).contains(&format!("\"alive\":{want}"))
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gateway {addr} never reported {want} alive members (last: {resp:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn enc(q: &str) -> String {
    q.replace('%', "%25")
        .replace(' ', "%20")
        .replace('=', "%3D")
}

/// Runs the quickstart composite query through `http_addr` and returns
/// the trace id the front-end assigned it, discovered via `/v1/traces`.
fn run_traced_query(http_addr: &str, expect_count: &str) -> String {
    let q = enc("SELECT count(*) WHERE a = true AND b = true");
    let resp = get(http_addr, &format!("/v1/query?q={q}"));
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(
        body_of(&resp).contains(&format!("\"result\":\"{expect_count}\",\"complete\":true")),
        "{resp}"
    );
    // The front-end's own store lists the trace; query traces have a
    // `parse` root phase (SWIM ping traces also live here — skip them).
    let resp = get(http_addr, "/v1/traces?limit=100");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let body = body_of(&resp);
    body.split("{\"trace_id\":\"")
        .skip(1)
        .filter_map(|item| {
            let id = item.split('"').next()?;
            item.contains("\"phase\":\"parse\"").then(|| id.to_owned())
        })
        .last()
        .unwrap_or_else(|| panic!("no query trace in /v1/traces: {body}"))
}

#[test]
fn composite_query_trace_spans_all_three_daemons() {
    let a_ctrl = free_port();
    let b_ctrl = free_port();
    let (_a, _a_http, _) = spawn_moarad(&a_ctrl, None, "a=true,b=true", &[]);
    let (_b, b_http, _) = spawn_moarad(&b_ctrl, Some(&a_ctrl), "a=true,b=true", &[]);
    let (_c, c_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), "a=true,b=true", &[]);
    for addr in [&_a_http, &b_http, &c_http] {
        wait_alive(addr, 3);
    }

    let trace_id = run_traced_query(&b_http, "3");

    // The merged span tree (gathered over control sockets from all
    // daemons) must cover every node with the full phase ladder. Remote
    // spans are recorded as replies arrive, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(20);
    let body = loop {
        let resp = get(&b_http, &format!("/v1/trace/{trace_id}"));
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let body = body_of(&resp).to_owned();
        let all_nodes = (0..3).all(|n| body.contains(&format!("\"node\":{n},")));
        let all_phases = ["parse", "plan", "fan-out", "fold"]
            .iter()
            .all(|p| body.contains(&format!("\"phase\":\"{p}\"")));
        if body.contains("\"complete\":true") && all_nodes && all_phases {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "merged trace never covered the cluster: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    // Per-hop cost split: both sides of queue-wait vs service time.
    assert!(body.contains("\"queue_us\":"), "{body}");
    assert!(body.contains("\"service_us\":"), "{body}");
    assert!(
        body.contains(&format!("\"trace_id\":\"{trace_id}\"")),
        "{body}"
    );
    assert!(body.contains("\"missing\":[]"), "{body}");

    // `moara-cli trace` renders the same tree as a text waterfall — and
    // the gather works from a daemon that was NOT the front-end.
    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["--connect", &a_ctrl, "trace", &trace_id])
        .output()
        .expect("run moara-cli trace");
    assert!(out.status.success(), "{out:?}");
    let waterfall = String::from_utf8_lossy(&out.stdout);
    assert!(waterfall.contains(&trace_id), "{waterfall}");
    for phase in ["parse", "plan", "fan-out", "fold"] {
        assert!(
            waterfall.contains(phase),
            "missing {phase} in:\n{waterfall}"
        );
    }

    // `moara-cli traces` lists it, and `status --json` carries the
    // metrics snapshot.
    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["--connect", &b_ctrl, "traces"])
        .output()
        .expect("run moara-cli traces");
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains(&trace_id),
        "{out:?}"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["--connect", &b_ctrl, "status", "--json"])
        .output()
        .expect("run moara-cli status");
    assert!(out.status.success(), "{out:?}");
    let status = String::from_utf8_lossy(&out.stdout);
    assert!(status.contains("\"metrics\":{"), "{status}");
    assert!(status.contains("\"event_loop_ticks_total\":"), "{status}");
    assert!(status.contains("\"trace_spans\":"), "{status}");
}

#[test]
fn metrics_exposition_is_conformant_and_has_histograms() {
    let (_a, a_http, _) = spawn_moarad(&free_port(), None, "a=true,b=true", &[]);
    wait_alive(&a_http, 1);
    // Drive every latency family at least once before scraping.
    let q = enc("SELECT count(*) WHERE a = true");
    assert!(get(&a_http, &format!("/v1/query?q={q}")).starts_with("HTTP/1.1 200"));
    assert!(get(&a_http, "/v1/traces").starts_with("HTTP/1.1 200"));

    let resp = get(&a_http, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let metrics = body_of(&resp);

    // The whole scrape must pass the exposition-format lint: HELP/TYPE
    // exactly once per family, monotone cumulative buckets, a +Inf
    // bucket equal to _count, no duplicate samples.
    moara_gateway::lint_exposition(metrics).unwrap_or_else(|e| {
        panic!("non-conformant exposition: {e}\n{metrics}");
    });

    let histogram_families: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("# TYPE") && l.ends_with("histogram"))
        .collect();
    assert!(
        histogram_families.len() >= 4,
        "expected >=4 histogram families, got {histogram_families:?}"
    );
    for family in [
        "moara_query_phase_latency_us",
        "moara_gateway_request_latency_us",
        "moara_event_loop_tick_us",
        "moara_event_loop_jobs_per_tick",
        "moara_subscribe_delta_lag_us",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} histogram")),
            "missing histogram family {family} in:\n{metrics}"
        );
    }
    // The phase histograms carry labelled series with live counts.
    assert!(
        metrics.contains("moara_query_phase_latency_us_count{phase=\"parse\"}"),
        "{metrics}"
    );
    // The tick histogram must have observed real event-loop work.
    let ticks: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("moara_event_loop_tick_us_count "))
        .expect("tick histogram count")
        .parse()
        .unwrap();
    assert!(ticks > 0, "event loop must have profiled ticks");
}

#[test]
fn slow_query_and_access_logs_emit_json_lines() {
    let (_a, a_http, logs) = spawn_moarad(
        &free_port(),
        None,
        "a=true,b=true",
        &["--slow-query-ms", "0", "--access-log"],
    );
    wait_alive(&a_http, 1);
    let q = enc("SELECT count(*) WHERE a = true");
    assert!(get(&a_http, &format!("/v1/query?q={q}")).starts_with("HTTP/1.1 200"));

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let lines = logs.lock().unwrap().clone();
        let slow = lines
            .iter()
            .find(|l| l.contains("\"slow_query\":true") && l.contains("\"q\":\"SELECT count(*)"));
        let access = lines.iter().find(|l| {
            l.contains("\"method\":\"GET\"")
                && l.contains("\"path\":\"/v1/query\"")
                && l.contains("\"status\":200")
        });
        if let (Some(slow), Some(access)) = (slow, access) {
            // Threshold 0 logs every query; a traced one links its id.
            assert!(slow.contains("\"trace_id\":\"0x"), "{slow}");
            assert!(slow.contains("\"duration_us\":"), "{slow}");
            assert!(access.contains("\"duration_us\":"), "{access}");
            assert!(access.contains("\"peer\":\"127.0.0.1:"), "{access}");
            return;
        }
        assert!(
            Instant::now() < deadline,
            "expected slow-query + access log lines, got {lines:#?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn crashed_daemon_marks_trace_subtree_missing_without_hanging() {
    let a_ctrl = free_port();
    let (_a, a_http, _) = spawn_moarad(&a_ctrl, None, "a=true,b=true", &[]);
    let (_b, b_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), "a=true,b=true", &[]);
    let (c, c_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), "a=true,b=true", &[]);
    for addr in [&a_http, &b_http, &c_http] {
        wait_alive(addr, 3);
    }

    let trace_id = run_traced_query(&a_http, "3");

    // Kill the third daemon: its span store (and the subtree it held)
    // is gone. The merge must come back quickly with that node in
    // `missing` — never hang on the dead control socket.
    drop(c);
    let started = Instant::now();
    let deadline = started + Duration::from_secs(20);
    loop {
        let resp = get(&a_http, &format!("/v1/trace/{trace_id}"));
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let body = body_of(&resp).to_owned();
        if body.contains("\"complete\":false") && body.contains("\"missing\":[2]") {
            // The surviving daemons' spans still render the cut tree.
            assert!(body.contains("\"phase\":\"parse\""), "{body}");
            assert!(body.contains("\"phase\":\"fan-out\""), "{body}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "trace merge never marked the crashed daemon missing: {body}"
        );
        std::thread::sleep(Duration::from_millis(200));
    }

    // The CLI renders the partial waterfall and signals partiality via
    // exit code 3 (distinct from hard failure).
    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["--connect", &a_ctrl, "trace", &trace_id])
        .output()
        .expect("run moara-cli trace");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let waterfall = String::from_utf8_lossy(&out.stdout);
    assert!(waterfall.contains(&trace_id), "{waterfall}");
}

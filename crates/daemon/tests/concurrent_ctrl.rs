//! Concurrency coverage for the control plane: one daemon serving many
//! simultaneous CLI-style connections (status + query + watch), plus a
//! watcher that hangs up mid-stream *while* deltas are being pushed.
//! Asserts no panic, every request answered, and — the leak check — no
//! standing watch or subscription entry left anywhere after the hang-up
//! is noticed and lease GC runs.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use moara_attributes::Value;
use moara_core::DeliveryPolicy;
use moara_daemon::{ctrl_roundtrip, CtrlReply, CtrlRequest, Daemon, DaemonOpts};
use moara_wire::{read_frame, write_msg, Wire};

fn free_port() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

fn spawn_daemon(listen: SocketAddr, join: Option<String>, attrs: Vec<(String, Value)>) {
    std::thread::spawn(move || {
        let mut d = Daemon::start(DaemonOpts {
            join,
            attrs,
            ..DaemonOpts::new(listen)
        })
        .expect("daemon boots");
        loop {
            d.step(Duration::from_millis(2));
        }
    });
}

fn status(ctrl: &str) -> Option<(u32, u32, u32)> {
    match ctrl_roundtrip(ctrl, &CtrlRequest::Status, Duration::from_secs(5)) {
        Ok(CtrlReply::Status {
            members,
            watches,
            sub_entries,
            ..
        }) => Some((members, watches, sub_entries)),
        _ => None,
    }
}

fn wait_members(ctrl: &str, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while status(ctrl).map(|(m, _, _)| m) != Some(want) {
        assert!(Instant::now() < deadline, "cluster never converged");
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn many_clients_and_a_mid_stream_hangup_leak_nothing() {
    let seed_ctrl = free_port();
    let b_ctrl = free_port();
    let c_ctrl = free_port();
    let attrs = |v: bool| vec![("ServiceX".to_owned(), Value::Bool(v))];
    spawn_daemon(seed_ctrl, None, attrs(true));
    spawn_daemon(b_ctrl, Some(seed_ctrl.to_string()), attrs(false));
    spawn_daemon(c_ctrl, Some(seed_ctrl.to_string()), attrs(true));
    for ctrl in [seed_ctrl, b_ctrl, c_ctrl] {
        wait_members(&ctrl.to_string(), 3);
    }

    let query_text = "SELECT count(*) WHERE ServiceX = true";

    // Wave 1: simultaneous status and query clients against ONE daemon.
    let mut clients = Vec::new();
    for i in 0..6 {
        let ctrl = seed_ctrl.to_string();
        clients.push(std::thread::spawn(move || {
            for _ in 0..5 {
                if i % 2 == 0 {
                    let (m, _, _) = status(&ctrl).expect("status answers under load");
                    assert_eq!(m, 3);
                } else {
                    let reply = ctrl_roundtrip(
                        &ctrl,
                        &CtrlRequest::Query {
                            text: query_text.into(),
                        },
                        Duration::from_secs(30),
                    )
                    .expect("query answers under load");
                    match reply {
                        CtrlReply::Answer { result, .. } => {
                            // Concurrent churn below flips membership of
                            // the group; any count in range is sound.
                            let n: u64 = result.parse().expect("numeric count");
                            assert!(n <= 3, "impossible count {n}");
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
            }
        }));
    }

    // Two well-behaved watchers stream from the same daemon meanwhile,
    // with a short lease so GC evidence arrives fast.
    let open_watch = |ctrl: SocketAddr| -> TcpStream {
        let mut s = TcpStream::connect(ctrl).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        write_msg(
            &mut s,
            &CtrlRequest::Watch {
                text: query_text.into(),
                policy: DeliveryPolicy::OnChange,
                lease_us: 1_000_000,
            },
        )
        .unwrap();
        s
    };
    let read_update = |s: &mut TcpStream| -> String {
        // Keepalive probes are swallowed daemon-side; only updates and
        // errors reach the socket.
        let payload = read_frame(s).expect("watch frame").expect("stream open");
        match CtrlReply::from_bytes(&payload).expect("decodable reply") {
            CtrlReply::Update { result, .. } => result,
            CtrlReply::Error(e) => panic!("watch failed: {e}"),
            other => panic!("unexpected streaming reply {other:?}"),
        }
    };
    let mut keeper = open_watch(seed_ctrl);
    let mut doomed = open_watch(seed_ctrl);
    let first = read_update(&mut keeper);
    assert!(!first.is_empty());
    let _ = read_update(&mut doomed);

    // Churn attributes from another daemon to force delta pushes, and
    // hang the doomed watcher up abruptly mid-burst — the race the
    // daemon must survive: updates already queued for a stream whose
    // socket just died.
    let churner = {
        let ctrl = b_ctrl.to_string();
        std::thread::spawn(move || {
            for i in 0..10 {
                let reply = ctrl_roundtrip(
                    &ctrl,
                    &CtrlRequest::SetAttr {
                        attr: "ServiceX".into(),
                        value: Value::Bool(i % 2 == 0),
                    },
                    Duration::from_secs(5),
                )
                .expect("set answers under churn");
                assert_eq!(reply, CtrlReply::Ok);
                std::thread::sleep(Duration::from_millis(40));
            }
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    drop(doomed); // mid-stream hang-up, racing the delta pushes
    let _ = read_update(&mut keeper); // the surviving stream keeps flowing
    churner.join().expect("churner lives");
    for c in clients {
        c.join().expect("client lives");
    }
    drop(keeper);

    // Leak check: once the hang-ups are noticed (keepalive probe) and
    // the 1 s leases GC, every daemon must report zero watches and zero
    // standing entries — and still answer queries (no panic took the
    // loop down).
    let deadline = Instant::now() + Duration::from_secs(30);
    for ctrl in [seed_ctrl, b_ctrl, c_ctrl] {
        loop {
            let (_, watches, subs) = status(&ctrl.to_string()).expect("status after the storm");
            if watches == 0 && subs == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "daemon {ctrl} leaked watches={watches} sub_entries={subs}"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    let reply = ctrl_roundtrip(
        &seed_ctrl.to_string(),
        &CtrlRequest::Query {
            text: query_text.into(),
        },
        Duration::from_secs(30),
    )
    .expect("daemon healthy after the storm");
    assert!(matches!(reply, CtrlReply::Answer { .. }));
}

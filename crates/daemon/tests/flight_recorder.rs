//! Flight-recorder e2e: real `moarad` processes over real sockets.
//!
//! * Every daemon samples itself into in-memory history rings once a
//!   second and journals structured events; `GET /v1/history` serves a
//!   window of one metric, `GET /v1/cluster/history` federates it
//!   across the cluster, `GET /v1/events` pages the journal, and
//!   `moara-cli events` renders it.
//! * `kill -9` forensics: a daemon with `--crash-dump-dir` rewrites a
//!   blackbox dump every second, so SIGKILL — no handler runs — still
//!   leaves its final history window and journal tail on disk, and
//!   `moara-cli postmortem` renders them offline.
//! * `for <duration>` hold-downs: a rule that holds for 3s ignores a
//!   sub-3s blip but fires on a sustained condition.
//! * `moara-cli top --once` and `events` exit non-zero with a clear
//!   message when the daemon is unreachable.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed asserts don't leak daemons.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

/// Spawns a daemon with the gateway enabled plus any extra flags;
/// returns (guard, http addr, collected stderr lines). The control
/// address is the `listen` argument itself.
fn spawn_moarad(
    listen: &str,
    join: Option<&str>,
    extra: &[&str],
) -> (Guard, String, Arc<Mutex<Vec<String>>>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_moarad"));
    cmd.args([
        "--listen",
        listen,
        "--http",
        "127.0.0.1:0",
        "--attrs",
        "ServiceX=true",
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn moarad");
    let stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");
    let logs = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&logs);
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines().map_while(Result::ok) {
            sink.lock().unwrap().push(line);
        }
    });
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad prints its banner");
    let http_addr = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .to_owned();
    assert_ne!(http_addr, "-", "gateway must be enabled: {banner}");
    (Guard(child), http_addr, logs)
}

/// One raw HTTP round trip on a fresh connection.
fn get(addr: &str, path_query: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!("GET {path_query} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Polls `/healthz` until the daemon reports `want` live members.
fn wait_alive(addr: &str, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(addr, "/healthz");
        if resp.starts_with("HTTP/1.1 200") && body_of(&resp).contains(&format!("\"alive\":{want}"))
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gateway {addr} never reported {want} alive members (last: {resp:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Polls `path` on `addr` until the body contains `needle`.
fn wait_body_contains(addr: &str, path: &str, needle: &str, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(addr, path);
        let body = body_of(&resp);
        if body.contains(needle) {
            return body.to_owned();
        }
        assert!(
            Instant::now() < deadline,
            "{what}: {path} on {addr} never contained {needle:?} (last: {body})"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A scratch dir under the target-tmp the harness owns; unique per test.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("moara-fr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The history and events read paths, local and federated: per-second
/// samples land in the rings and come back as `[ts, value]` pairs; the
/// journal records subscription churn and serves it filtered; the CLI
/// renders both.
#[test]
fn history_and_events_endpoints_serve_recorded_data() {
    let a_ctrl = free_port();
    let swim = ["--swim-period-ms", "200"];
    let (_a, a_http, _) = spawn_moarad(&a_ctrl, None, &swim);
    let (_b, b_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), &swim);
    for addr in [&a_http, &b_http] {
        wait_alive(addr, 2);
    }

    // The rings fill at one sample per second; wait for real points.
    let body = wait_body_contains(
        &a_http,
        "/v1/history?metric=tick_p99_us&range=60",
        "[[",
        "history never accumulated samples",
    );
    assert!(body.contains("\"metric\":\"tick_p99_us\""), "{body}");
    assert!(body.contains("\"res_s\":1"), "{body}");

    // Parameter errors are client errors, not empty series.
    let resp = get(&a_http, "/v1/history?metric=no_such_metric&range=60");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    let resp = get(&a_http, "/v1/history?range=60");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    let resp = get(&a_http, "/v1/history?metric=tick_p99_us&range=0s");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // One daemon answers for the cluster: both members under their own
    // `instance` labels, fetched over the control plane.
    let body = wait_body_contains(
        &a_http,
        "/v1/cluster/history?metric=tick_p99_us&range=60",
        "\"instance\":\"n1\"",
        "federated history never saw the peer",
    );
    assert!(body.contains("\"instance\":\"n0\""), "{body}");
    assert!(body.contains("\"missing\":[]"), "{body}");

    // Subscription churn lands in the journal: install a watch, then
    // read it back through the endpoint, the kind filter, and the CLI.
    let mut watch = Guard(
        Command::new(env!("CARGO_BIN_EXE_moara-cli"))
            .args([
                "--connect",
                &a_ctrl,
                "watch",
                "SELECT count(*) WHERE ServiceX = true",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn watch client"),
    );
    let body = wait_body_contains(
        &a_http,
        "/v1/events",
        "\"kind\":\"sub_install\"",
        "journal never recorded the watch install",
    );
    assert!(body.contains("\"events\":["), "{body}");
    assert!(body.contains("\"detail\":"), "{body}");
    let resp = get(&a_http, "/v1/events?kind=sub_install&limit=5");
    let body = body_of(&resp);
    assert!(body.contains("\"kind\":\"sub_install\""), "{body}");
    assert!(!body.contains("\"kind\":\"swim_"), "filter leaked: {body}");
    let _ = watch.0.kill();

    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["--connect", &a_ctrl, "events", "--kind", "sub_install"])
        .output()
        .expect("run moara-cli events");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sub_install"), "{text}");

    // The journal feeds the scrape's own counters.
    let resp = get(&a_http, "/metrics");
    let m = body_of(&resp);
    moara_gateway::lint_exposition(m).unwrap_or_else(|e| panic!("lint: {e}"));
    assert!(m.contains("moara_events_recorded_total "), "{m}");
    assert!(m.contains("moara_events_dropped_total 0"), "{m}");
}

/// The acceptance kill: a victim daemon with `--crash-dump-dir` watches
/// a peer die (journaling SWIM suspect/confirm and the alert firing),
/// then is itself `kill -9`ed. No handler runs — but the every-second
/// blackbox rewrite means its final history window and journal tail
/// are on disk, and `moara-cli postmortem` renders them without any
/// daemon.
#[test]
fn kill_dash_nine_leaves_a_renderable_blackbox_dump() {
    let dump_dir = scratch_dir("dump");
    let a_ctrl = free_port();
    let swim = ["--swim-period-ms", "200", "--swim-suspect-periods", "25"];
    let (_a, a_http, _) = spawn_moarad(&a_ctrl, None, &swim);
    let (mut b, b_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), &swim);
    let dump_flag = dump_dir.to_str().unwrap().to_owned();
    let mut victim_flags: Vec<&str> = swim.to_vec();
    victim_flags.extend(["--crash-dump-dir", &dump_flag]);
    let (mut c, c_http, _) = spawn_moarad(&free_port(), Some(&a_ctrl), &victim_flags);
    for addr in [&a_http, &b_http, &c_http] {
        wait_alive(addr, 3);
    }

    // Kill a peer so the victim's journal fills with the story the
    // postmortem must tell: suspect → confirm → dead_members firing.
    b.0.kill().expect("SIGKILL daemon b");
    wait_body_contains(
        &c_http,
        "/v1/events",
        "\"kind\":\"swim_confirm\"",
        "victim never journaled the confirm",
    );
    wait_body_contains(
        &c_http,
        "/v1/events",
        "\"kind\":\"alert_firing\"",
        "victim never journaled the alert",
    );

    // The blackbox is rewritten every second; wait until the on-disk
    // copy has caught up with the journal.
    let dump_path = dump_dir.join("moarad-n2.blackbox.jsonl");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let on_disk = std::fs::read_to_string(&dump_path).unwrap_or_default();
        if on_disk.contains("\"kind\":\"swim_confirm\"")
            && on_disk.contains("\"kind\":\"alert_firing\"")
            && on_disk.contains("\"metric\":\"tick_p99_us\"")
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "blackbox at {dump_path:?} never caught up (last: {on_disk:?})"
        );
        std::thread::sleep(Duration::from_millis(200));
    }

    // kill -9 the victim: no shutdown path runs, the dump is whatever
    // the last tick left behind — which must be enough.
    c.0.kill().expect("SIGKILL the victim");
    c.0.wait().expect("reap the victim");

    let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
        .args(["postmortem", dump_path.to_str().unwrap()])
        .output()
        .expect("run moara-cli postmortem");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("crash dump: n2"), "{text}");
    assert!(text.contains("reason blackbox"), "{text}");
    assert!(text.contains("metrics (final window)"), "{text}");
    assert!(text.contains("tick_p99_us"), "{text}");
    assert!(
        text.chars().any(|ch| "▁▂▃▄▅▆▇█".contains(ch)),
        "no sparkline in postmortem output: {text}"
    );
    assert!(text.contains("journal tail"), "{text}");
    assert!(text.contains("swim_confirm"), "{text}");
    assert!(text.contains("alert_firing"), "{text}");

    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// `for 3s` hold-down semantics, end to end: a watch that lives under
/// two seconds never fires the rule; one held past the window does —
/// with the firing visible in `/v1/alerts` and as a `ts_ms`-stamped
/// JSON line on stderr.
#[test]
fn for_hold_down_suppresses_blips_but_fires_when_sustained() {
    let rules_dir = scratch_dir("rules");
    let rules_path = rules_dir.join("alerts.rules");
    std::fs::write(&rules_path, "standing_watch: watches > 0 for 3s\n").unwrap();
    let a_ctrl = free_port();
    let extra = [
        "--swim-period-ms",
        "200",
        "--alert-rules",
        rules_path.to_str().unwrap(),
    ];
    let (_a, a_http, a_logs) = spawn_moarad(&a_ctrl, None, &extra);
    wait_alive(&a_http, 1);

    let watch_args = |lease: &str| {
        vec![
            "--connect".to_owned(),
            a_ctrl.clone(),
            "watch".to_owned(),
            "SELECT count(*) WHERE ServiceX = true".to_owned(),
            "--lease-ms".to_owned(),
            lease.to_owned(),
        ]
    };

    // Blip: the watch exists for well under the 3s hold (the client
    // dies and its 1500ms lease expires unrenewed), so the rule's
    // pending state must drain without ever firing.
    let mut blip = Guard(
        Command::new(env!("CARGO_BIN_EXE_moara-cli"))
            .args(watch_args("1500"))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn blip watch"),
    );
    wait_body_contains(
        &a_http,
        "/metrics",
        "moara_subscribe_watches 1",
        "blip watch never installed",
    );
    blip.0.kill().expect("kill blip watch client");
    std::thread::sleep(Duration::from_secs(6));
    let resp = get(&a_http, "/v1/alerts");
    assert!(
        !body_of(&resp).contains("standing_watch"),
        "a sub-hold blip fired the rule: {resp}"
    );
    assert!(
        !a_logs
            .lock()
            .unwrap()
            .iter()
            .any(|l| l.contains("\"rule\":\"standing_watch\"")),
        "a sub-hold blip reached stderr"
    );

    // Sustained: the watch outlives the hold window; the rule fires.
    let _sustained = Guard(
        Command::new(env!("CARGO_BIN_EXE_moara-cli"))
            .args(watch_args("30000"))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sustained watch"),
    );
    wait_body_contains(
        &a_http,
        "/v1/alerts",
        "\"rule\":\"standing_watch\"",
        "sustained watch never fired the held rule",
    );
    let lines = a_logs.lock().unwrap().clone();
    let fired = lines
        .iter()
        .find(|l| l.contains("\"alert\":\"firing\"") && l.contains("\"rule\":\"standing_watch\""))
        .unwrap_or_else(|| panic!("no firing line on stderr: {lines:#?}"));
    assert!(fired.contains("\"ts_ms\":"), "{fired}");

    let _ = std::fs::remove_dir_all(&rules_dir);
}

/// An unreachable daemon is an error, not a hang or a zero exit: both
/// `top --once` and `events` say what they could not reach and exit
/// non-zero.
#[test]
fn cli_exits_nonzero_with_clear_message_when_daemon_unreachable() {
    // Bound then dropped: nothing listens here.
    let gone = free_port();
    for cmd in [&["top", "--once"][..], &["events"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_moara-cli"))
            .args(["--connect", &gone, "--timeout", "5"])
            .args(cmd)
            .output()
            .expect("run moara-cli");
        assert!(
            !out.status.success(),
            "{cmd:?} must fail against a dead daemon: {out:?}"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("cannot reach daemon at"),
            "{cmd:?} stderr lacks the reach error: {err}"
        );
    }
}

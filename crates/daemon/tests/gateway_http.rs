//! End-to-end HTTP edge test: three real `moarad` processes with
//! `--http` form a cluster, and everything is exercised over raw
//! sockets speaking HTTP/1.1 — queries, attribute writes, an SSE watch
//! stream fed by attribute churn, health, and the Prometheus exposition.
//! No HTTP client library, no curl: CI runs this as the gateway gate.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so failed asserts don't leak daemons.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn free_port() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

/// Spawns a daemon with the gateway enabled; returns (guard, http addr).
fn spawn_moarad(listen: &str, http: &str, join: Option<&str>, attrs: &str) -> (Guard, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_moarad"));
    cmd.args(["--listen", listen, "--http", http, "--attrs", attrs])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn moarad");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad prints its banner");
    let http_addr = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .to_owned();
    assert_ne!(http_addr, "-", "gateway must be enabled: {banner}");
    (Guard(child), http_addr)
}

/// One raw HTTP round trip on a fresh connection; returns the full
/// response (status line, headers, body).
fn http(addr: &str, raw: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn get(addr: &str, path_query: &str) -> String {
    http(
        addr,
        &format!("GET {path_query} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// Polls `/healthz` until the daemon reports `want` live members.
fn wait_alive(addr: &str, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = get(addr, "/healthz");
        if resp.starts_with("HTTP/1.1 200") && body_of(&resp).contains(&format!("\"alive\":{want}"))
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gateway {addr} never reported {want} alive members (last: {resp:?})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Percent-encoding for the quickstart query (spaces, `*`, `=` survive
/// raw in practice but encode the spaces to stay well-formed).
fn enc(q: &str) -> String {
    q.replace('%', "%25")
        .replace(' ', "%20")
        .replace('=', "%3D")
}

#[test]
fn http_cluster_serves_query_attrs_watch_and_metrics() {
    let a_ctrl = free_port();
    let (_a, a_http) = spawn_moarad(&a_ctrl, "127.0.0.1:0", None, "ServiceX=true,CPU-Util=10");
    let (_b, b_http) = spawn_moarad(
        &free_port(),
        "127.0.0.1:0",
        Some(&a_ctrl),
        "ServiceX=false,CPU-Util=90",
    );
    let (_c, c_http) = spawn_moarad(
        &free_port(),
        "127.0.0.1:0",
        Some(&a_ctrl),
        "ServiceX=true,CPU-Util=30",
    );
    for addr in [&a_http, &b_http, &c_http] {
        wait_alive(addr, 3);
    }

    // --- GET /v1/query through the non-member daemon: the answer must
    // come over the wire from the other two.
    let q = enc("SELECT count(*) WHERE ServiceX = true");
    let resp = get(&b_http, &format!("/v1/query?q={q}"));
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(
        body_of(&resp).contains("\"result\":\"2\",\"complete\":true"),
        "{resp}"
    );

    // --- POST /v1/attrs: B joins the group over HTTP; any daemon now
    // counts three members.
    let body = "ServiceX=true";
    let resp = http(
        &b_http,
        &format!(
            "POST /v1/attrs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(body_of(&resp).contains("\"set\":1"), "{resp}");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let resp = get(&c_http, &format!("/v1/query?q={q}"));
        if body_of(&resp).contains("\"result\":\"3\"") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "attribute change never reached the query plane: {resp}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // --- GET /v1/watch: an SSE stream that must push one frame per
    // standing-query change while attributes churn over HTTP.
    let mut watch = TcpStream::connect(&c_http).expect("connect watch");
    watch
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    watch
        .write_all(
            format!("GET /v1/watch?q={q}&lease_ms=5000 HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut reader = BufReader::new(watch);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("HTTP/1.1 200"), "{line}");
    loop {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        if l == "\r\n" {
            break; // headers done
        }
        if l.to_ascii_lowercase().starts_with("content-type:") {
            assert!(l.contains("text/event-stream"), "{l}");
        }
    }
    // First frame: the initial standing result (3).
    let read_data_frame = |reader: &mut BufReader<TcpStream>| -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "no SSE frame in time");
            let mut l = String::new();
            match reader.read_line(&mut l) {
                Ok(0) => panic!("SSE stream closed early"),
                Ok(_) => {
                    if let Some(data) = l.strip_prefix("data: ") {
                        return data.trim_end().to_owned();
                    }
                    // keepalive comments and blank separators fall through
                }
                Err(e) => panic!("SSE read error: {e}"),
            }
        }
    };
    let initial = read_data_frame(&mut reader);
    assert!(initial.contains("\"initial\":true"), "{initial}");
    assert!(initial.contains("\"result\":\"3\""), "{initial}");

    // Two attribute churns → at least two more SSE frames.
    for (value, expect) in [("false", "\"result\":\"2\""), ("true", "\"result\":\"3\"")] {
        let body = format!("ServiceX={value}");
        let resp = http(
            &b_http,
            &format!(
                "POST /v1/attrs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let frame = read_data_frame(&mut reader);
        assert!(frame.contains("\"initial\":false"), "{frame}");
        assert!(frame.contains(expect), "{frame}");
    }
    drop(reader); // hang up: the daemon must cancel the subscription

    // --- GET /metrics: live counters from at least four subsystems.
    let resp = get(&c_http, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
    let metrics = body_of(&resp);
    for series in [
        "moara_transport_messages_sent_total ",
        "moara_sched_probe_cache_hits_total ",
        "moara_membership_alive 3",
        "moara_subscribe_deltas_total ",
        "moara_gateway_requests_total{endpoint=\"query\"}",
        "moara_up 1",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }
    // The cluster has been exchanging traffic for seconds; the transport
    // counter must be live, not a rendered zero.
    let sent: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("moara_transport_messages_sent_total "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(sent > 0, "transport counters must be live");

    // --- The cancelled watch must drain: no standing watches left on C.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let resp = get(&c_http, "/metrics");
        let m = body_of(&resp);
        let watches = m
            .lines()
            .find_map(|l| l.strip_prefix("moara_subscribe_watches "))
            .and_then(|v| v.parse::<u64>().ok());
        if watches == Some(0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "hung-up watch never cancelled: {watches:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // --- Error surface: unknown endpoint and bad query both answer 4xx.
    assert!(get(&a_http, "/nope").starts_with("HTTP/1.1 404"));
    let resp = get(&a_http, "/v1/query?q=%28%28%28");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
}

//! The flight recorder: bounded on-daemon history of what just
//! happened, so a 2 a.m. incident is still diagnosable at 9 a.m.
//!
//! Three pieces, all dependency-free and all bounded:
//!
//! * [`MetricsHistory`] — the daemon's health sample down-sampled into
//!   two fixed-size in-memory rings (1 s resolution for the last two
//!   minutes, 10 s resolution for `--history-retention`). RSS is fixed
//!   at construction; the sample path writes into preallocated slots
//!   and never allocates. Served at `GET /v1/history` and federated
//!   cluster-wide at `GET /v1/cluster/history`.
//! * [`EventJournal`] — a lock-sharded bounded ring of structured
//!   events (SWIM transitions, subscription churn, cache
//!   promote/demote, alert edges, slow queries, reactor errors) behind
//!   the daemon's `record_event()`. Served at `GET /v1/events` and
//!   `moara-cli events`.
//! * Crash forensics — [`Recorder::render_dump`] serializes the last
//!   history window + journal tail + peer digests + trace exemplars as
//!   flat JSONL. The daemon writes it as a continuously-refreshed
//!   *blackbox* file every sample period (atomic rename, so even a
//!   `kill -9` or segfault leaves the final window on disk) and as
//!   tagged `crash-<reason>` dumps on panic and stall-watchdog trips.
//!   `moara-cli postmortem` renders any of these files.
//!
//! Everything in a dump is a *flat* JSON object per line (scalar values
//! only — series render as `"ts:value ts:value …"` strings) so the
//! renderer needs nothing beyond [`parse_flat_json`].

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use moara_wire::{Wire, WireError};

/// Tier-1 ring: 1-second resolution, two minutes deep — enough to see
/// the shape of the incident that just happened.
pub const TIER1_SLOTS: usize = 120;
/// Tier-1 resolution in seconds.
pub const TIER1_RES_S: u64 = 1;
/// Tier-2 resolution in seconds (each slot is the mean of the ten
/// tier-1 samples it covers).
pub const TIER2_RES_S: u64 = 10;
/// Default `--history-retention` in seconds (1 h of tier-2 slots).
pub const DEFAULT_RETENTION_S: u32 = 3600;

/// Journal capacity across all shards.
const JOURNAL_CAP: usize = 4096;
/// Lock shards in the journal (recording threads contend per shard).
const JOURNAL_SHARDS: usize = 4;
/// Most journal events rendered into one crash dump.
const DUMP_EVENTS: usize = 256;

/// One metric's two-tier ring storage. Slots are preallocated; `NaN`
/// marks a slot whose sample was unknown (e.g. cache ratio before any
/// traffic).
struct Tier {
    /// Unix-ms timestamps per slot; 0 = never written.
    stamps: Vec<u64>,
    /// `metrics × slots` values, row-major per metric.
    values: Vec<f64>,
    /// Next slot to write (ring cursor).
    next: usize,
    /// Slots written so far, saturating at capacity.
    filled: usize,
    slots: usize,
}

impl Tier {
    fn new(metrics: usize, slots: usize) -> Tier {
        Tier {
            stamps: vec![0; slots],
            values: vec![f64::NAN; metrics * slots],
            next: 0,
            filled: 0,
            slots,
        }
    }

    fn push(&mut self, ts_ms: u64, row: impl Iterator<Item = f64>) {
        let slot = self.next;
        self.stamps[slot] = ts_ms;
        for (m, v) in row.enumerate() {
            self.values[m * self.slots + slot] = v;
        }
        self.next = (self.next + 1) % self.slots;
        self.filled = (self.filled + 1).min(self.slots);
    }

    /// Points of metric `m` with `stamp >= since_ms`, oldest first,
    /// NaN slots skipped.
    fn series(&self, m: usize, since_ms: u64) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        for i in 0..self.filled {
            // Oldest-first walk: start just past the cursor.
            let slot = (self.next + self.slots - self.filled + i) % self.slots;
            let ts = self.stamps[slot];
            let v = self.values[m * self.slots + slot];
            if ts >= since_ms && !v.is_nan() {
                out.push((ts, v));
            }
        }
        out
    }

    /// Newest point of metric `m` with `stamp <= ts_ms`.
    fn at_or_before(&self, m: usize, ts_ms: u64) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for i in 0..self.filled {
            let slot = (self.next + self.slots - self.filled + i) % self.slots;
            let ts = self.stamps[slot];
            let v = self.values[m * self.slots + slot];
            if ts <= ts_ms && !v.is_nan() && best.is_none_or(|(bt, _)| ts >= bt) {
                best = Some((ts, v));
            }
        }
        best
    }
}

/// Fixed-size two-tier metrics history (see module docs). The metric
/// name set is frozen on the first [`MetricsHistory::record`]; rings
/// are allocated then and the sample path never allocates again.
pub struct MetricsHistory {
    names: Vec<&'static str>,
    tier1: Tier,
    tier2: Tier,
    /// Per-metric (sum, count-of-known) accumulator toward the next
    /// tier-2 slot.
    acc: Vec<(f64, u32)>,
    acc_pushes: u32,
    tier2_slots: usize,
}

impl MetricsHistory {
    /// `retention_s` bounds how far back tier-2 reaches (rounded up to
    /// whole tier-2 slots, at least one).
    pub fn new(retention_s: u32) -> MetricsHistory {
        let tier2_slots = (u64::from(retention_s).div_ceil(TIER2_RES_S)).max(1) as usize;
        MetricsHistory {
            names: Vec::new(),
            tier1: Tier::new(0, TIER1_SLOTS),
            tier2: Tier::new(0, tier2_slots),
            acc: Vec::new(),
            acc_pushes: 0,
            tier2_slots,
        }
    }

    /// The recorded metric names (empty until the first sample).
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Records one full sample row. The first call fixes the metric
    /// set; later calls must pass the same metrics in the same order.
    pub fn record(&mut self, ts_ms: u64, sample: &[(&'static str, f64)]) {
        if self.names.is_empty() {
            self.names = sample.iter().map(|&(k, _)| k).collect();
            self.tier1 = Tier::new(self.names.len(), TIER1_SLOTS);
            self.tier2 = Tier::new(self.names.len(), self.tier2_slots);
            self.acc = vec![(0.0, 0); self.names.len()];
        }
        debug_assert_eq!(sample.len(), self.names.len(), "sample shape changed");
        self.tier1.push(ts_ms, sample.iter().map(|&(_, v)| v));
        for (slot, &(_, v)) in self.acc.iter_mut().zip(sample) {
            if !v.is_nan() {
                slot.0 += v;
                slot.1 += 1;
            }
        }
        self.acc_pushes += 1;
        if u64::from(self.acc_pushes) >= TIER2_RES_S / TIER1_RES_S {
            let acc = std::mem::take(&mut self.acc);
            self.tier2.push(
                ts_ms,
                acc.iter()
                    .map(|&(sum, n)| if n == 0 { f64::NAN } else { sum / f64::from(n) }),
            );
            self.acc = acc;
            for slot in &mut self.acc {
                *slot = (0.0, 0);
            }
            self.acc_pushes = 0;
        }
    }

    fn index_of(&self, metric: &str) -> Option<usize> {
        self.names.iter().position(|&n| n == metric)
    }

    /// The series for `metric` covering the last `range_s` seconds:
    /// tier-1 points while the range fits, tier-2 beyond. `None` for an
    /// unknown metric. Returns `(resolution_s, points)`.
    pub fn series(
        &self,
        metric: &str,
        range_s: u32,
        now_ms: u64,
    ) -> Option<(u64, Vec<(u64, f64)>)> {
        let m = self.index_of(metric)?;
        let since = now_ms.saturating_sub(u64::from(range_s).saturating_mul(1000));
        if u64::from(range_s) <= TIER1_SLOTS as u64 * TIER1_RES_S {
            Some((TIER1_RES_S, self.tier1.series(m, since)))
        } else {
            Some((TIER2_RES_S, self.tier2.series(m, since)))
        }
    }

    /// Newest recorded value of `metric`.
    pub fn latest(&self, metric: &str) -> Option<(u64, f64)> {
        let m = self.index_of(metric)?;
        self.tier1.at_or_before(m, u64::MAX)
    }

    /// Newest value of `metric` recorded at or before `ts_ms`, looking
    /// through tier-1 first and falling back to tier-2 for windows that
    /// outlive it. `None` until history reaches back that far — rate
    /// rules stay silent instead of firing on a half-seen window.
    pub fn at_or_before(&self, metric: &str, ts_ms: u64) -> Option<(u64, f64)> {
        let m = self.index_of(metric)?;
        self.tier1
            .at_or_before(m, ts_ms)
            .or_else(|| self.tier2.at_or_before(m, ts_ms))
    }
}

/// One structured journal event, as stored and as carried on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct EventWire {
    /// Global record order (gaps mean ring eviction).
    pub seq: u64,
    /// Unix milliseconds at record time.
    pub ts_ms: u64,
    /// The recording daemon.
    pub node: u32,
    /// Event kind — one of the `kind::*` vocabulary.
    pub kind: String,
    /// Free-form `k=v` detail (kept flat for the crash-dump format).
    pub detail: String,
}

impl Wire for EventWire {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.ts_ms.encode(out);
        self.node.encode(out);
        self.kind.encode(out);
        self.detail.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(EventWire {
            seq: Wire::decode(buf)?,
            ts_ms: Wire::decode(buf)?,
            node: Wire::decode(buf)?,
            kind: Wire::decode(buf)?,
            detail: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + 4 + self.kind.encoded_len() + self.detail.encoded_len()
    }
}

/// The journal's event-kind vocabulary (stable strings: filters, JSON,
/// and dumps all carry these verbatim).
pub mod kind {
    pub const SWIM_SUSPECT: &str = "swim_suspect";
    pub const SWIM_CONFIRM: &str = "swim_confirm";
    pub const SWIM_REFUTE: &str = "swim_refute";
    pub const SUB_INSTALL: &str = "sub_install";
    pub const SUB_CANCEL: &str = "sub_cancel";
    pub const SUB_LEASE_GC: &str = "sub_lease_gc";
    pub const CACHE_PROMOTE: &str = "cache_promote";
    pub const CACHE_DEMOTE: &str = "cache_demote";
    pub const ALERT_FIRING: &str = "alert_firing";
    pub const ALERT_RESOLVED: &str = "alert_resolved";
    pub const SLOW_QUERY: &str = "slow_query";
    pub const GW_ERROR: &str = "gw_error";
    pub const GW_PANIC: &str = "gw_panic";
    pub const STALL: &str = "stall";
    pub const CRASH_DUMP: &str = "crash_dump";
    pub const PANIC: &str = "panic";
}

struct Shard {
    events: Mutex<VecDeque<EventWire>>,
}

/// Lock-sharded bounded event ring. Any thread may record (the panic
/// hook does); the per-shard mutexes are held only for a push/pop.
pub struct EventJournal {
    shards: Vec<Shard>,
    seq: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    per_shard_cap: usize,
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::new(JOURNAL_CAP)
    }
}

impl EventJournal {
    /// A journal holding at most `cap` events across its shards.
    pub fn new(cap: usize) -> EventJournal {
        EventJournal {
            shards: (0..JOURNAL_SHARDS)
                .map(|_| Shard {
                    events: Mutex::new(VecDeque::new()),
                })
                .collect(),
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            per_shard_cap: cap.div_ceil(JOURNAL_SHARDS).max(1),
        }
    }

    /// Records one event; evicts the shard's oldest when full.
    pub fn record(&self, ts_ms: u64, node: u32, kind: &str, detail: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(seq % JOURNAL_SHARDS as u64) as usize];
        let Ok(mut events) = shard.events.lock() else {
            return; // poisoned by a panicking recorder: drop, don't double-panic
        };
        if events.len() >= self.per_shard_cap {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(EventWire {
            seq,
            ts_ms,
            node,
            kind: kind.to_owned(),
            detail,
        });
    }

    /// Events recorded since boot (evicted ones included).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The newest `limit` events (optionally of one `kind`), in record
    /// order — shards are merged by sequence number.
    pub fn snapshot(&self, kind_filter: Option<&str>, limit: usize) -> Vec<EventWire> {
        let mut all: Vec<EventWire> = Vec::new();
        for shard in &self.shards {
            if let Ok(events) = shard.events.lock() {
                all.extend(
                    events
                        .iter()
                        .filter(|e| kind_filter.is_none_or(|k| e.kind == k))
                        .cloned(),
                );
            }
        }
        all.sort_by_key(|e| e.seq);
        if all.len() > limit {
            all.drain(..all.len() - limit);
        }
        all
    }
}

/// Unix time in milliseconds (0 if the clock is before the epoch).
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The shared flight-recorder state: history + journal + the crash-dump
/// writer. Lives behind an `Arc` so the panic hook can reach it from
/// any thread while the event loop keeps recording.
pub struct Recorder {
    /// The metrics rings (locked: sampled by the loop, read by HTTP
    /// serving and the panic hook).
    pub history: Mutex<MetricsHistory>,
    /// The event journal (internally sharded; no outer lock).
    pub journal: EventJournal,
    /// Pre-rendered cluster-context dump lines (peer digests, firing
    /// alerts, trace exemplars), refreshed by the loop each sample so
    /// a dump never has to reach into loop-owned state.
    context: Mutex<String>,
    dump_dir: Option<PathBuf>,
    node: AtomicU64,
}

impl Recorder {
    pub fn new(retention_s: u32, dump_dir: Option<PathBuf>) -> Recorder {
        Recorder {
            history: Mutex::new(MetricsHistory::new(retention_s)),
            journal: EventJournal::default(),
            context: Mutex::new(String::new()),
            dump_dir,
            node: AtomicU64::new(0),
        }
    }

    /// Set once the daemon knows its node id (after join).
    pub fn set_node(&self, node: u32) {
        self.node.store(u64::from(node), Ordering::Relaxed);
    }

    fn node_id(&self) -> u32 {
        self.node.load(Ordering::Relaxed) as u32
    }

    /// Whether a `--crash-dump-dir` was configured.
    pub fn dumps_enabled(&self) -> bool {
        self.dump_dir.is_some()
    }

    /// Records one structured event into the journal, stamped now and
    /// tagged with this daemon's node id — the single entry point every
    /// subsystem hook calls.
    pub fn record_event(&self, kind: &str, detail: String) {
        self.journal
            .record(now_unix_ms(), self.node_id(), kind, detail);
    }

    /// Replaces the pre-rendered context lines (see [`Recorder`]).
    pub fn set_context(&self, lines: String) {
        if let Ok(mut ctx) = self.context.lock() {
            *ctx = lines;
        }
    }

    /// Renders the full dump: meta line, every metric's last tier-1
    /// window, the journal tail, then the pre-rendered context lines.
    /// Flat JSONL throughout (see module docs).
    pub fn render_dump(&self, reason: &str, ts_ms: u64) -> String {
        use moara_gateway::json::escape;
        let mut out = String::with_capacity(16 * 1024);
        out.push_str(&format!(
            "{{\"t\":\"meta\",\"node\":{},\"reason\":{},\"ts_ms\":{ts_ms},\
             \"version\":{},\"events_recorded\":{},\"events_dropped\":{}}}\n",
            self.node_id(),
            escape(reason),
            escape(env!("CARGO_PKG_VERSION")),
            self.journal.recorded(),
            self.journal.dropped(),
        ));
        if let Ok(history) = self.history.lock() {
            for name in history.names() {
                let Some((res_s, points)) =
                    history.series(name, (TIER1_SLOTS as u64 * TIER1_RES_S) as u32, ts_ms)
                else {
                    continue;
                };
                let rendered: Vec<String> =
                    points.iter().map(|&(ts, v)| format!("{ts}:{v}")).collect();
                out.push_str(&format!(
                    "{{\"t\":\"series\",\"metric\":{},\"res_s\":{res_s},\"points\":{}}}\n",
                    escape(name),
                    escape(&rendered.join(" ")),
                ));
            }
        }
        for e in self.journal.snapshot(None, DUMP_EVENTS) {
            out.push_str(&format!(
                "{{\"t\":\"event\",\"seq\":{},\"ts_ms\":{},\"node\":{},\"kind\":{},\"detail\":{}}}\n",
                e.seq,
                e.ts_ms,
                e.node,
                escape(&e.kind),
                escape(&e.detail),
            ));
        }
        if let Ok(ctx) = self.context.lock() {
            out.push_str(&ctx);
        }
        out
    }

    /// Writes a dump named for `reason` into the dump dir via a temp
    /// file + atomic rename, so readers never see a torn file and the
    /// dir holds at most one file per reason (bounded). Returns the
    /// path written, `None` when dumps are disabled or the write fails
    /// (crash paths must never panic over a full disk).
    pub fn write_dump(&self, reason: &str, ts_ms: u64) -> Option<PathBuf> {
        let dir = self.dump_dir.as_ref()?;
        let name = format!("moarad-n{}.{}.jsonl", self.node_id(), reason);
        let tmp = dir.join(format!(".{name}.tmp"));
        let path = dir.join(name);
        let body = self.render_dump(reason, ts_ms);
        std::fs::create_dir_all(dir).ok()?;
        std::fs::write(&tmp, body).ok()?;
        std::fs::rename(&tmp, &path).ok()?;
        Some(path)
    }
}

/// One scalar of a flat dump line.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonScalar {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl JsonScalar {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one *flat* JSON object — string/number/bool/null values only,
/// no nesting — as the crash-dump format guarantees. Returns `None` on
/// anything else; `moara-cli postmortem` skips such lines rather than
/// guessing.
pub fn parse_flat_json(line: &str) -> Option<Vec<(String, JsonScalar)>> {
    let s = line.trim();
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let b = inner.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Option<String> {
        if b.get(*i) != Some(&b'"') {
            return None;
        }
        *i += 1;
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Some(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = inner.get(*i + 1..*i + 5)?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            *i += 4;
                        }
                        _ => return None,
                    }
                    *i += 1;
                }
                c => {
                    // Multi-byte UTF-8 passes through byte-wise; the
                    // final String::from_utf8 on raw bytes is avoided by
                    // collecting chars from the validated source str.
                    let ch_start = *i;
                    let ch = inner[ch_start..].chars().next()?;
                    out.push(ch);
                    *i += ch.len_utf8();
                    let _ = c;
                }
            }
        }
        None
    };
    loop {
        skip_ws(&mut i);
        if i >= b.len() {
            break;
        }
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if b.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        let value = match b.get(i)? {
            b'"' => JsonScalar::Str(parse_string(&mut i)?),
            b't' => {
                if !inner[i..].starts_with("true") {
                    return None;
                }
                i += 4;
                JsonScalar::Bool(true)
            }
            b'f' => {
                if !inner[i..].starts_with("false") {
                    return None;
                }
                i += 5;
                JsonScalar::Bool(false)
            }
            b'n' => {
                if !inner[i..].starts_with("null") {
                    return None;
                }
                i += 4;
                JsonScalar::Null
            }
            _ => {
                let start = i;
                while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                JsonScalar::Num(inner[start..i].parse().ok()?)
            }
        };
        out.push((key, value));
        skip_ws(&mut i);
        match b.get(i) {
            Some(b',') => i += 1,
            None => break,
            _ => return None,
        }
    }
    Some(out)
}

/// Parses a `"ts:v ts:v …"` series string from a dump line.
pub fn parse_points(s: &str) -> Vec<(u64, f64)> {
    s.split_whitespace()
        .filter_map(|pair| {
            let (ts, v) = pair.split_once(':')?;
            Some((ts.parse().ok()?, v.parse().ok()?))
        })
        .collect()
}

/// Renders a unicode sparkline of `points` (shared by `moara-cli top`
/// and `postmortem`). Empty input renders as "-".
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let known: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if known.is_empty() {
        return "-".to_owned();
    }
    let (min, max) = known
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                ' '
            } else {
                let idx = (((v - min) / span) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

/// Helper for dump context rendering: one peer digest as a flat line.
pub fn peer_context_line(
    node: u32,
    status: &str,
    age_ms: u64,
    tick_p99_us: u64,
    stalled_ticks: u64,
    alerts_firing: u32,
) -> String {
    use moara_gateway::json::escape;
    format!(
        "{{\"t\":\"peer\",\"node\":{node},\"status\":{},\"age_ms\":{age_ms},\
         \"tick_p99_us\":{tick_p99_us},\"stalled_ticks\":{stalled_ticks},\
         \"alerts_firing\":{alerts_firing}}}\n",
        escape(status),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: f64) -> Vec<(&'static str, f64)> {
        vec![("a", v), ("b", v * 2.0), ("c", f64::NAN)]
    }

    #[test]
    fn history_records_two_tiers_and_serves_ranges() {
        let mut h = MetricsHistory::new(600);
        for i in 0..30u64 {
            h.record(1_000_000 + i * 1000, &sample(i as f64));
        }
        assert_eq!(h.names(), &["a", "b", "c"]);
        // Tier-1 range: all 30 one-second points.
        let (res, pts) = h.series("a", 60, 1_000_000 + 29_000).unwrap();
        assert_eq!(res, TIER1_RES_S);
        assert_eq!(pts.len(), 30);
        assert_eq!(pts[0], (1_000_000, 0.0));
        assert_eq!(pts[29], (1_029_000, 29.0));
        // A narrower range trims old points.
        let (_, pts) = h.series("a", 10, 1_000_000 + 29_000).unwrap();
        assert_eq!(pts.len(), 11, "{pts:?}"); // 19..=29 inclusive
                                              // Tier-2: 30 pushes → 3 slots of 10-sample means.
        let (res, pts) = h.series("b", 600, 1_000_000 + 29_000).unwrap();
        assert_eq!(res, TIER2_RES_S);
        assert_eq!(pts.len(), 3);
        assert_eq!(
            pts[0].1,
            (0..10).map(|i| i as f64 * 2.0).sum::<f64>() / 10.0
        );
        // The all-NaN metric has no points in either tier.
        let (_, pts) = h.series("c", 60, 1_030_000).unwrap();
        assert!(pts.is_empty());
        let (_, pts) = h.series("c", 600, 1_030_000).unwrap();
        assert!(pts.is_empty());
        // Unknown metric: None.
        assert!(h.series("nope", 60, 0).is_none());
    }

    #[test]
    fn history_rings_wrap_and_stay_bounded() {
        let mut h = MetricsHistory::new(60);
        for i in 0..500u64 {
            h.record(i * 1000, &sample(i as f64));
        }
        let (_, pts) = h.series("a", 120, 499_000).unwrap();
        assert_eq!(pts.len(), TIER1_SLOTS);
        assert_eq!(pts[0].1, (500 - TIER1_SLOTS as u64) as f64);
        assert_eq!(pts.last().unwrap().1, 499.0);
        // Tier-2 is capped by retention (60s → 6 slots).
        let (_, pts) = h.series("a", 100_000, 499_000).unwrap();
        assert_eq!(pts.len(), 6);
    }

    #[test]
    fn at_or_before_spans_both_tiers() {
        let mut h = MetricsHistory::new(3600);
        for i in 0..200u64 {
            h.record(i * 1000, &sample(i as f64));
        }
        // Inside tier-1 (last 120 samples: 80..200).
        assert_eq!(h.at_or_before("a", 150_000), Some((150_000, 150.0)));
        // Before tier-1's window: tier-2 answers (10s means).
        let (ts, _) = h.at_or_before("a", 30_000).unwrap();
        assert!(ts <= 30_000, "{ts}");
        // Before any history: None.
        assert!(h.at_or_before("a", 0).is_none() || h.at_or_before("a", 0).unwrap().0 == 0);
        assert_eq!(h.latest("a"), Some((199_000, 199.0)));
    }

    #[test]
    fn journal_keeps_order_filters_and_evicts() {
        let j = EventJournal::new(8);
        for i in 0..20u64 {
            let kind = if i % 2 == 0 {
                kind::SWIM_SUSPECT
            } else {
                kind::SLOW_QUERY
            };
            j.record(i, 1, kind, format!("i={i}"));
        }
        assert_eq!(j.recorded(), 20);
        assert!(j.dropped() > 0);
        let all = j.snapshot(None, 100);
        assert!(all.len() <= 8 + JOURNAL_SHARDS);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq), "merged order");
        let slow = j.snapshot(Some(kind::SLOW_QUERY), 100);
        assert!(slow.iter().all(|e| e.kind == kind::SLOW_QUERY));
        assert!(!slow.is_empty());
        // Limit takes the newest.
        let last2 = j.snapshot(None, 2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[1].seq, all.last().unwrap().seq);
    }

    #[test]
    fn event_wire_roundtrips() {
        let e = EventWire {
            seq: 42,
            ts_ms: 1_700_000_000_123,
            node: 7,
            kind: kind::SWIM_CONFIRM.into(),
            detail: "peer=3".into(),
        };
        assert_eq!(EventWire::from_bytes(&e.to_bytes()).unwrap(), e);
        assert_eq!(e.to_bytes().len(), e.encoded_len());
    }

    #[test]
    fn dump_renders_and_parses_flat_jsonl() {
        let r = Recorder::new(600, None);
        r.set_node(3);
        {
            let mut h = r.history.lock().unwrap();
            for i in 0..5u64 {
                h.record(1000 + i * 1000, &[("tick_p99_us", 100.0 + i as f64)]);
            }
        }
        r.journal
            .record(5000, 3, kind::SWIM_CONFIRM, "peer=1".into());
        r.set_context(peer_context_line(1, "dead", u64::MAX, 0, 0, 0));
        let dump = r.render_dump("blackbox", 5000);
        let mut metas = 0;
        let mut series = 0;
        let mut events = 0;
        let mut peers = 0;
        for line in dump.lines() {
            let fields = parse_flat_json(line).unwrap_or_else(|| panic!("unparsable: {line}"));
            let t = fields
                .iter()
                .find(|(k, _)| k == "t")
                .and_then(|(_, v)| v.as_str())
                .unwrap()
                .to_owned();
            match t.as_str() {
                "meta" => {
                    metas += 1;
                    assert!(fields
                        .iter()
                        .any(|(k, v)| k == "node" && v.as_num() == Some(3.0)));
                }
                "series" => {
                    series += 1;
                    let pts = fields
                        .iter()
                        .find(|(k, _)| k == "points")
                        .and_then(|(_, v)| v.as_str())
                        .map(parse_points)
                        .unwrap();
                    assert_eq!(pts.len(), 5);
                    assert_eq!(pts[0], (1000, 100.0));
                }
                "event" => {
                    events += 1;
                    assert!(fields
                        .iter()
                        .any(|(k, v)| k == "kind" && v.as_str() == Some(kind::SWIM_CONFIRM)));
                }
                "peer" => peers += 1,
                other => panic!("unexpected line type {other}"),
            }
        }
        assert_eq!((metas, series, events, peers), (1, 1, 1, 1));
    }

    #[test]
    fn dump_writes_atomically_into_the_dir() {
        let dir = std::env::temp_dir().join(format!("moara-dump-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = Recorder::new(600, Some(dir.clone()));
        r.set_node(9);
        r.journal.record(1, 9, kind::STALL, "tick_ms=400".into());
        let path = r.write_dump("blackbox", 1000).unwrap();
        assert!(path.ends_with("moarad-n9.blackbox.jsonl"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"t\":\"meta\""));
        assert!(body.contains("tick_ms=400"));
        // Re-writing replaces, never accumulates.
        r.write_dump("blackbox", 2000).unwrap();
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1, "{entries:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_json_parser_handles_escapes_and_rejects_nesting() {
        let fields =
            parse_flat_json(r#"{"a":"x\"y\n","b":-1.5e3,"c":true,"d":null,"e":"日本"}"#).unwrap();
        assert_eq!(fields[0].1, JsonScalar::Str("x\"y\n".into()));
        assert_eq!(fields[1].1, JsonScalar::Num(-1500.0));
        assert_eq!(fields[2].1, JsonScalar::Bool(true));
        assert_eq!(fields[3].1, JsonScalar::Null);
        assert_eq!(fields[4].1, JsonScalar::Str("日本".into()));
        assert_eq!(
            parse_flat_json(r#"{"u":"A"}"#).unwrap()[0].1,
            JsonScalar::Str("A".into())
        );
        assert!(parse_flat_json(r#"{"a":[1,2]}"#).is_none());
        assert!(parse_flat_json(r#"{"a":{"b":1}}"#).is_none());
        assert!(parse_flat_json("not json").is_none());
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
    }

    #[test]
    fn sparkline_scales_and_handles_gaps() {
        assert_eq!(sparkline(&[]), "-");
        assert_eq!(sparkline(&[f64::NAN]), "-");
        let s = sparkline(&[0.0, 5.0, 10.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        // Flat series renders low bars, not a panic on zero span.
        let flat = sparkline(&[3.0, 3.0]);
        assert_eq!(flat.chars().count(), 2);
        // NaN gaps render as spaces.
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]).chars().nth(1), Some(' '));
    }
}

//! Alert rules: the "react" layer of the health plane.
//!
//! A rule is a named threshold over one key of the daemon's health
//! sample (`<name>: <metric> <op> <value>`), optionally windowed:
//!
//! * `rate(<metric>, <window>)` evaluates the metric's per-second rate
//!   of change over `<window>`, read from the flight recorder's history
//!   rings — so counters (queries, rate-limit rejections) can alert on
//!   throughput rather than absolute totals.
//! * a trailing `for <duration>` is a hold-down: the condition must
//!   hold *continuously* for that long before the alert fires, so a
//!   single-tick blip (one slow maintenance pass, one GC-ish hiccup)
//!   no longer pages anyone.
//!
//! The engine evaluates all rules on the maintenance timer, tracks
//! firing state across evaluations, and reports transitions so the
//! daemon can journal them and log them as JSON lines next to the
//! slow-query log. For every raw sample key the engine also derives
//! `<key>_delta` — the change since the previous evaluation — so rules
//! can watch growth rates (watch leaks, rate-limit spikes) without the
//! engine hard-coding any particular metric.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use moara_gateway::json::JsonLine;

use crate::health::AlertWire;
use crate::recorder::MetricsHistory;

/// Comparison operator of a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertOp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl AlertOp {
    fn as_str(self) -> &'static str {
        match self {
            AlertOp::Gt => ">",
            AlertOp::Ge => ">=",
            AlertOp::Lt => "<",
            AlertOp::Le => "<=",
        }
    }
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            AlertOp::Gt => value > threshold,
            AlertOp::Ge => value >= threshold,
            AlertOp::Lt => value < threshold,
            AlertOp::Le => value <= threshold,
        }
    }
}

/// The left-hand side of a rule: a raw sample key, or a windowed rate
/// over the history rings.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricExpr {
    /// A key of the health sample (including derived `_delta` keys).
    Raw(String),
    /// `rate(metric, window)`: per-second change of `metric` over the
    /// trailing `window`, from the flight recorder. Unknown (no
    /// recorder, unknown metric, or history not yet spanning the
    /// window) until enough history exists — a half-seen window never
    /// fires.
    Rate { metric: String, window_ms: u64 },
}

impl MetricExpr {
    /// The canonical source form (`tick_p99_us`, `rate(queries, 30s)`).
    pub fn display(&self) -> String {
        match self {
            MetricExpr::Raw(key) => key.clone(),
            MetricExpr::Rate { metric, window_ms } => {
                format!("rate({metric}, {})", fmt_window(*window_ms))
            }
        }
    }
}

fn fmt_window(ms: u64) -> String {
    if ms >= 60_000 && ms.is_multiple_of(60_000) {
        format!("{}m", ms / 60_000)
    } else if ms >= 1000 && ms.is_multiple_of(1000) {
        format!("{}s", ms / 1000)
    } else {
        format!("{ms}ms")
    }
}

/// One alert rule: fire `name` once `expr op threshold` has held for
/// `hold_ms` (0 = immediately).
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    pub name: String,
    pub expr: MetricExpr,
    pub op: AlertOp,
    pub threshold: f64,
    pub hold_ms: u64,
}

impl AlertRule {
    fn new(name: &str, metric: &str, op: AlertOp, threshold: f64) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            expr: MetricExpr::Raw(metric.to_string()),
            op,
            threshold,
            hold_ms: 0,
        }
    }

    fn held_for(mut self, hold_ms: u64) -> AlertRule {
        self.hold_ms = hold_ms;
        self
    }
}

/// The rules every daemon ships with. A `--alert-rules` file may
/// override any of these by reusing the rule name.
pub fn builtin_rules() -> Vec<AlertRule> {
    vec![
        // Event loop spent >250ms of work inside a tick. Held for 3s so
        // one slow tick (a blip) stays off the pager; a sustained stall
        // keeps the delta positive across evaluations and fires.
        AlertRule::new("event_loop_stall", "stalled_ticks_delta", AlertOp::Gt, 0.0).held_for(3000),
        // SWIM confirmed at least one member dead.
        AlertRule::new("dead_members", "dead_members", AlertOp::Gt, 0.0),
        // Watch count grew by >256 between evaluations: a client is
        // opening watches faster than it closes them.
        AlertRule::new("watch_leak", "watches_delta", AlertOp::Gt, 256.0),
        // >100 requests rejected by the rate limiter since the last
        // evaluation.
        AlertRule::new("rate_limit_spike", "rate_limited_delta", AlertOp::Gt, 100.0),
        // Descriptor / memory ceilings: trouble before the kernel says so.
        AlertRule::new("fd_ceiling", "open_fds", AlertOp::Gt, 8192.0),
        AlertRule::new("rss_ceiling", "rss_bytes", AlertOp::Gt, 2e9),
    ]
}

/// Parse a `<window>` / `<duration>` token: integer + `ms`/`s`/`m`,
/// strictly positive.
fn parse_window(s: &str) -> Result<u64, &'static str> {
    let (digits, unit_ms) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1000)
    } else if let Some(d) = s.strip_suffix('m') {
        (d, 60_000)
    } else {
        return Err("duration needs a unit (ms, s, m)");
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| "duration is not '<integer><unit>'")?;
    if n == 0 {
        return Err("duration must be positive");
    }
    Ok(n.saturating_mul(unit_ms))
}

fn parse_expr(s: &str) -> Result<MetricExpr, String> {
    if let Some(inner) = s.strip_prefix("rate(").and_then(|r| r.strip_suffix(')')) {
        let (metric, window) = inner
            .split_once(',')
            .ok_or("rate() takes two arguments: rate(metric, window)")?;
        let metric = metric.trim();
        if metric.is_empty()
            || !metric
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err("rate() metric must be [A-Za-z0-9_]+".into());
        }
        let window_ms = parse_window(window.trim()).map_err(|e| format!("rate() window: {e}"))?;
        Ok(MetricExpr::Rate {
            metric: metric.to_string(),
            window_ms,
        })
    } else if !s.is_empty() && !s.contains(char::is_whitespace) {
        Ok(MetricExpr::Raw(s.to_string()))
    } else {
        Err(format!("bad metric expression {s:?}"))
    }
}

/// Parse an `--alert-rules` file.
///
/// Grammar, one rule per line:
///
/// ```text
/// name: <expr> <op> <value> [for <duration>]
/// <expr>     := metric | rate(metric, <duration>)
/// <op>       := > | >= | < | <=
/// <duration> := <integer>(ms|s|m)
/// ```
///
/// Blank lines and `#` comments are ignored.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err =
            |what: &str| format!("alert rules line {}: {} in {:?}", idx + 1, what, raw.trim());
        let (name, expr) = line.split_once(':').ok_or_else(|| err("missing ':'"))?;
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err("rule name must be [A-Za-z0-9_]+"));
        }
        let parts: Vec<&str> = expr.split_whitespace().collect();
        // The expression may contain spaces (`rate(x, 30s)`), so locate
        // the operator token and join everything before it.
        let op_idx = parts
            .iter()
            .position(|t| matches!(*t, ">" | ">=" | "<" | "<="))
            .ok_or_else(|| err("expected 'metric op value', op one of > >= < <="))?;
        let op = match parts[op_idx] {
            ">" => AlertOp::Gt,
            ">=" => AlertOp::Ge,
            "<" => AlertOp::Lt,
            "<=" => AlertOp::Le,
            _ => unreachable!(),
        };
        let expr = parse_expr(&parts[..op_idx].join(" ")).map_err(|e| err(&e))?;
        let value = *parts
            .get(op_idx + 1)
            .ok_or_else(|| err("missing threshold"))?;
        let threshold: f64 = value
            .parse()
            .map_err(|_| err("threshold is not a number"))?;
        let hold_ms = match &parts[op_idx + 2..] {
            [] => 0,
            ["for", dur] => parse_window(dur).map_err(|e| err(&format!("'for' {e}")))?,
            _ => {
                return Err(err(
                    "trailing tokens (expected nothing or 'for <duration>')",
                ))
            }
        };
        rules.push(AlertRule {
            name: name.to_string(),
            expr,
            op,
            threshold,
            hold_ms,
        });
    }
    Ok(rules)
}

/// Merge user rules over the built-ins: same name replaces, new name appends.
pub fn merge_rules(user: Vec<AlertRule>) -> Vec<AlertRule> {
    let mut rules = builtin_rules();
    for r in user {
        match rules.iter_mut().find(|b| b.name == r.name) {
            Some(slot) => *slot = r,
            None => rules.push(r),
        }
    }
    rules
}

/// A firing-state transition, reported once per edge for logging.
#[derive(Clone, Debug, PartialEq)]
pub enum AlertEvent {
    Fired {
        rule: String,
        metric: String,
        value: f64,
        threshold: f64,
    },
    Resolved {
        rule: String,
    },
}

struct Firing {
    value: f64,
    since: Instant,
}

/// Evaluates rules against successive health samples (plus, for `rate()`
/// rules, the flight recorder's history rings).
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    prev: HashMap<String, f64>,
    firing: HashMap<String, Firing>,
    /// Rules whose condition currently holds but whose `for` hold-down
    /// has not yet elapsed: rule name → when the condition started.
    pending: HashMap<String, Instant>,
}

impl AlertEngine {
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            rules,
            prev: HashMap::new(),
            firing: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluate every rule against `sample`, updating firing state and
    /// returning the transitions. `<key>_delta` keys are derived from
    /// the previous call's sample (first call: no deltas, so delta rules
    /// cannot fire spuriously at boot). `history`/`now_ms` back `rate()`
    /// expressions; pass `None` and rate rules simply never fire.
    pub fn evaluate(
        &mut self,
        sample: &[(&'static str, f64)],
        history: Option<&MetricsHistory>,
        now: Instant,
        now_ms: u64,
    ) -> Vec<AlertEvent> {
        let mut ctx: HashMap<String, f64> =
            sample.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        for &(k, v) in sample {
            if let Some(prev) = self.prev.get(k) {
                ctx.insert(format!("{k}_delta"), v - prev);
            }
        }
        self.prev = sample.iter().map(|&(k, v)| (k.to_string(), v)).collect();

        let value_of = |expr: &MetricExpr| -> Option<f64> {
            match expr {
                MetricExpr::Raw(key) => ctx.get(key).copied(),
                MetricExpr::Rate { metric, window_ms } => {
                    let h = history?;
                    let (t1, v1) = h.latest(metric)?;
                    let (t0, v0) = h.at_or_before(metric, now_ms.saturating_sub(*window_ms))?;
                    // Silent until the recorded span covers the whole
                    // window: a partial window would report a rate over
                    // less data than the rule asked for.
                    if t1 <= t0 || t1 - t0 < *window_ms {
                        return None;
                    }
                    Some((v1 - v0) / ((t1 - t0) as f64 / 1000.0))
                }
            }
        };

        let mut events = Vec::new();
        for rule in &self.rules {
            // An unknown metric (typo, a delta on the first round, or a
            // rate whose window history can't span yet) simply never
            // fires. NaN (e.g. cache ratio with no traffic) compares
            // false against everything, so it never fires either.
            let value = value_of(&rule.expr);
            let holds = value.is_some_and(|v| rule.op.holds(v, rule.threshold));
            let value = value.filter(|v| !v.is_nan()).unwrap_or(0.0);
            match (holds, self.firing.contains_key(&rule.name)) {
                (true, false) => {
                    let since = *self.pending.entry(rule.name.clone()).or_insert(now);
                    if now.saturating_duration_since(since) >= Duration::from_millis(rule.hold_ms) {
                        self.pending.remove(&rule.name);
                        self.firing
                            .insert(rule.name.clone(), Firing { value, since });
                        events.push(AlertEvent::Fired {
                            rule: rule.name.clone(),
                            metric: rule.expr.display(),
                            value,
                            threshold: rule.threshold,
                        });
                    }
                }
                (true, true) => {
                    if let Some(f) = self.firing.get_mut(&rule.name) {
                        f.value = value;
                    }
                }
                (false, true) => {
                    self.firing.remove(&rule.name);
                    events.push(AlertEvent::Resolved {
                        rule: rule.name.clone(),
                    });
                }
                (false, false) => {
                    // A blip shorter than the hold-down: forget it.
                    self.pending.remove(&rule.name);
                }
            }
        }
        events
    }

    /// Currently-firing alerts, in rule order, for `/v1/alerts` and the
    /// control plane.
    pub fn firing(&self, now: Instant) -> Vec<AlertWire> {
        self.rules
            .iter()
            .filter_map(|rule| {
                self.firing.get(&rule.name).map(|f| AlertWire {
                    rule: rule.name.clone(),
                    metric: rule.expr.display(),
                    value: f.value,
                    threshold: rule.threshold,
                    since_s: now.saturating_duration_since(f.since).as_secs(),
                })
            })
            .collect()
    }

    /// One JSON line per transition, matching the slow-query log shape.
    /// `ts_ms` is unix milliseconds, for correlation with the journal
    /// and the access log.
    pub fn event_line(node: u32, event: &AlertEvent, ts_ms: u64) -> String {
        match event {
            AlertEvent::Fired {
                rule,
                metric,
                value,
                threshold,
            } => JsonLine::new()
                .str("alert", "firing")
                .u64("ts_ms", ts_ms)
                .u64("node", u64::from(node))
                .str("rule", rule)
                .str("metric", metric)
                .f64("value", *value)
                .f64("threshold", *threshold)
                .finish(),
            AlertEvent::Resolved { rule } => JsonLine::new()
                .str("alert", "resolved")
                .u64("ts_ms", ts_ms)
                .u64("node", u64::from(node))
                .str("rule", rule)
                .finish(),
        }
    }
}

impl std::fmt::Display for AlertRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {} {}",
            self.name,
            self.expr.display(),
            self.op.as_str(),
            self.threshold
        )?;
        if self.hold_ms > 0 {
            write!(f, " for {}", fmt_window(self.hold_ms))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_rejects_garbage() {
        let rules = parse_rules(
            "# watch the loop\n\
             stall: tick_p99_us > 250000\n\
             \n\
             cold_cache: cache_hit_pct < 10  # inline comment\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(
            rules[0],
            AlertRule::new("stall", "tick_p99_us", AlertOp::Gt, 250000.0)
        );
        assert_eq!(
            rules[1],
            AlertRule::new("cold_cache", "cache_hit_pct", AlertOp::Lt, 10.0)
        );

        for bad in [
            "no colon here",
            "name: onlymetric >",
            "name: metric == 3",         // unknown operator
            "name: metric > notanumber", // non-numeric threshold
            "bad name!: metric > 1",
            "name: metric > 1 trailing junk",
        ] {
            assert!(parse_rules(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn comment_only_file_parses_to_no_rules() {
        let rules = parse_rules("# nothing here\n\n   # still nothing\n").unwrap();
        assert!(rules.is_empty());
    }

    #[test]
    fn parses_for_and_rate_grammar() {
        let rules = parse_rules(
            "stall: tick_p99_us > 250000 for 3s\n\
             busy: rate(queries_inflight, 30s) >= 5\n\
             both: rate(rate_limited, 2m) > 1.5 for 500ms\n",
        )
        .unwrap();
        assert_eq!(rules[0].hold_ms, 3000);
        assert_eq!(rules[0].expr, MetricExpr::Raw("tick_p99_us".into()));
        assert_eq!(
            rules[1].expr,
            MetricExpr::Rate {
                metric: "queries_inflight".into(),
                window_ms: 30_000
            }
        );
        assert_eq!(rules[1].hold_ms, 0);
        assert_eq!(
            rules[2].expr,
            MetricExpr::Rate {
                metric: "rate_limited".into(),
                window_ms: 120_000
            }
        );
        assert_eq!(rules[2].hold_ms, 500);
        // Display round-trips the source shape.
        assert_eq!(rules[0].to_string(), "stall: tick_p99_us > 250000 for 3s");
        assert_eq!(
            rules[1].to_string(),
            "busy: rate(queries_inflight, 30s) >= 5"
        );

        for bad in [
            "r: rate(x) > 1",            // missing window
            "r: rate(x, 0s) > 1",        // zero window
            "r: rate(x, bogus) > 1",     // bad window
            "r: rate(x, 5) > 1",         // missing unit
            "r: rate(bad name, 5s) > 1", // bad metric
            "r: metric > 1 for 0s",      // zero hold
            "r: metric > 1 for xyz",     // bad hold
            "r: metric > 1 hold 3s",     // unknown keyword
        ] {
            assert!(parse_rules(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn user_rules_override_builtins_by_name() {
        let rules =
            merge_rules(parse_rules("fd_ceiling: open_fds > 10\nmine: watches > 5").unwrap());
        let fd = rules.iter().find(|r| r.name == "fd_ceiling").unwrap();
        assert_eq!(fd.threshold, 10.0);
        assert!(rules.iter().any(|r| r.name == "mine"));
        assert_eq!(rules.len(), builtin_rules().len() + 1);
        // Within one file the later duplicate wins, same as user-over-builtin.
        let rules = merge_rules(parse_rules("mine: watches > 5\nmine: watches > 9").unwrap());
        let mine = rules.iter().find(|r| r.name == "mine").unwrap();
        assert_eq!(mine.threshold, 9.0);
        assert_eq!(rules.len(), builtin_rules().len() + 1);
    }

    fn eval(eng: &mut AlertEngine, sample: &[(&'static str, f64)], t: Instant) -> Vec<AlertEvent> {
        eng.evaluate(sample, None, t, 0)
    }

    #[test]
    fn engine_fires_resolves_and_reports_edges_once() {
        let mut eng = AlertEngine::new(parse_rules("hot: load > 10").unwrap());
        let t = Instant::now();
        assert!(eval(&mut eng, &[("load", 5.0)], t).is_empty());
        let events = eval(&mut eng, &[("load", 12.0)], t);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], AlertEvent::Fired { rule, value, .. } if rule == "hot" && *value == 12.0)
        );
        // Still firing: no new edge, but the reported value tracks.
        assert!(eval(&mut eng, &[("load", 20.0)], t).is_empty());
        let firing = eng.firing(t);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].value, 20.0);
        let events = eval(&mut eng, &[("load", 1.0)], t);
        assert!(matches!(&events[0], AlertEvent::Resolved { rule } if rule == "hot"));
        assert!(eng.firing(t).is_empty());
    }

    #[test]
    fn delta_rules_need_two_samples_and_diff_consecutive_ones() {
        let mut eng = AlertEngine::new(parse_rules("leak: watches_delta > 100").unwrap());
        let t = Instant::now();
        // First sample: no previous value, the delta key does not exist.
        assert!(eval(&mut eng, &[("watches", 5000.0)], t).is_empty());
        assert!(eval(&mut eng, &[("watches", 5050.0)], t).is_empty());
        let events = eval(&mut eng, &[("watches", 5200.0)], t);
        assert!(matches!(&events[0], AlertEvent::Fired { value, .. } if *value == 150.0));
    }

    #[test]
    fn hold_down_suppresses_blips_but_fires_on_sustained_breach() {
        let mut eng = AlertEngine::new(parse_rules("stall: load > 10 for 3s").unwrap());
        let t0 = Instant::now();
        let at = |s: u64| t0 + Duration::from_secs(s);
        // A one-evaluation blip: pending, then forgotten.
        assert!(eval(&mut eng, &[("load", 99.0)], at(0)).is_empty());
        assert!(eval(&mut eng, &[("load", 1.0)], at(1)).is_empty());
        assert!(eng.firing(at(1)).is_empty());
        // Breach again: the hold-down clock restarts from zero.
        assert!(eval(&mut eng, &[("load", 50.0)], at(2)).is_empty());
        assert!(eval(&mut eng, &[("load", 50.0)], at(3)).is_empty());
        assert!(eval(&mut eng, &[("load", 50.0)], at(4)).is_empty());
        // 3s after the breach started: fires, and `since` reflects the
        // breach start, not the fire edge.
        let events = eval(&mut eng, &[("load", 50.0)], at(5));
        assert!(matches!(&events[0], AlertEvent::Fired { rule, .. } if rule == "stall"));
        assert_eq!(eng.firing(at(5))[0].since_s, 3);
        // Resolves on one clear evaluation, no hold on the way down.
        let events = eval(&mut eng, &[("load", 1.0)], at(6));
        assert!(matches!(&events[0], AlertEvent::Resolved { .. }));
    }

    #[test]
    fn rate_rules_read_history_and_wait_for_a_full_window() {
        let mut eng = AlertEngine::new(parse_rules("surge: rate(reqs, 10s) > 5").unwrap());
        let mut h = MetricsHistory::new(600);
        let t = Instant::now();
        // Counter climbing 10/s from t=0: rate is 10 once the window is
        // spanned, but with only 5s of history the rule stays silent.
        for i in 0..=5u64 {
            h.record(i * 1000, &[("reqs", (i * 10) as f64)]);
        }
        assert!(eng.evaluate(&[("x", 0.0)], Some(&h), t, 5_000).is_empty());
        for i in 6..=20u64 {
            h.record(i * 1000, &[("reqs", (i * 10) as f64)]);
        }
        let events = eng.evaluate(&[("x", 0.0)], Some(&h), t, 20_000);
        assert!(
            matches!(&events[0], AlertEvent::Fired { metric, value, .. }
                if metric == "rate(reqs, 10s)" && (*value - 10.0).abs() < 0.5),
            "{events:?}"
        );
        // A flat counter resolves the alert.
        for i in 21..=40u64 {
            h.record(i * 1000, &[("reqs", 200.0)]);
        }
        let events = eng.evaluate(&[("x", 0.0)], Some(&h), t, 40_000);
        assert!(matches!(&events[0], AlertEvent::Resolved { .. }));
        // No history at all: rate rules never fire.
        let mut cold = AlertEngine::new(parse_rules("surge: rate(reqs, 10s) > 5").unwrap());
        assert!(cold.evaluate(&[("x", 9.0)], None, t, 0).is_empty());
    }

    #[test]
    fn nan_samples_never_fire() {
        let mut eng = AlertEngine::new(parse_rules("cold: cache_hit_pct < 10").unwrap());
        let t = Instant::now();
        assert!(eval(&mut eng, &[("cache_hit_pct", f64::NAN)], t).is_empty());
        assert!(eval(&mut eng, &[("cache_hit_pct", f64::NAN)], t).is_empty());
        assert!(eng.firing(t).is_empty());
    }

    #[test]
    fn event_lines_are_json_shaped() {
        let fired = AlertEngine::event_line(
            2,
            &AlertEvent::Fired {
                rule: "dead_members".into(),
                metric: "dead_members".into(),
                value: 1.0,
                threshold: 0.0,
            },
            1_700_000_000_123,
        );
        assert_eq!(
            fired,
            "{\"alert\":\"firing\",\"ts_ms\":1700000000123,\"node\":2,\"rule\":\"dead_members\",\"metric\":\"dead_members\",\"value\":1,\"threshold\":0}"
        );
        let resolved = AlertEngine::event_line(
            2,
            &AlertEvent::Resolved { rule: "x".into() },
            1_700_000_000_124,
        );
        assert_eq!(
            resolved,
            "{\"alert\":\"resolved\",\"ts_ms\":1700000000124,\"node\":2,\"rule\":\"x\"}"
        );
    }
}

//! Alert rules: the "react" layer of the health plane.
//!
//! A rule is a named threshold over one key of the daemon's health
//! sample (`<name>: <metric> <op> <value>`). The engine evaluates all
//! rules on the maintenance timer, tracks firing state across
//! evaluations, and reports transitions so the daemon can log them as
//! JSON lines next to the slow-query log. For every raw sample key the
//! engine also derives `<key>_delta` — the change since the previous
//! evaluation — so rules can watch growth rates (watch leaks, rate-limit
//! spikes) without the engine hard-coding any particular metric.

use std::collections::HashMap;
use std::time::Instant;

use crate::health::AlertWire;

/// Comparison operator of a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertOp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl AlertOp {
    fn as_str(self) -> &'static str {
        match self {
            AlertOp::Gt => ">",
            AlertOp::Ge => ">=",
            AlertOp::Lt => "<",
            AlertOp::Le => "<=",
        }
    }
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            AlertOp::Gt => value > threshold,
            AlertOp::Ge => value >= threshold,
            AlertOp::Lt => value < threshold,
            AlertOp::Le => value <= threshold,
        }
    }
}

/// One alert rule: fire `name` while `metric op threshold` holds.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    pub name: String,
    pub metric: String,
    pub op: AlertOp,
    pub threshold: f64,
}

impl AlertRule {
    fn new(name: &str, metric: &str, op: AlertOp, threshold: f64) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            op,
            threshold,
        }
    }
}

/// The rules every daemon ships with. A `--alert-rules` file may
/// override any of these by reusing the rule name.
pub fn builtin_rules() -> Vec<AlertRule> {
    vec![
        // Event loop spent >250ms of work inside a tick since the last
        // evaluation: queries and probes are visibly stalling.
        AlertRule::new("event_loop_stall", "stalled_ticks_delta", AlertOp::Gt, 0.0),
        // SWIM confirmed at least one member dead.
        AlertRule::new("dead_members", "dead_members", AlertOp::Gt, 0.0),
        // Watch count grew by >256 between evaluations: a client is
        // opening watches faster than it closes them.
        AlertRule::new("watch_leak", "watches_delta", AlertOp::Gt, 256.0),
        // >100 requests rejected by the rate limiter since the last
        // evaluation.
        AlertRule::new("rate_limit_spike", "rate_limited_delta", AlertOp::Gt, 100.0),
        // Descriptor / memory ceilings: trouble before the kernel says so.
        AlertRule::new("fd_ceiling", "open_fds", AlertOp::Gt, 8192.0),
        AlertRule::new("rss_ceiling", "rss_bytes", AlertOp::Gt, 2e9),
    ]
}

/// Parse an `--alert-rules` file.
///
/// Grammar, one rule per line: `name: metric op value` with `op` one of
/// `>`, `>=`, `<`, `<=`. Blank lines and `#` comments are ignored.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err =
            |what: &str| format!("alert rules line {}: {} in {:?}", idx + 1, what, raw.trim());
        let (name, expr) = line.split_once(':').ok_or_else(|| err("missing ':'"))?;
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err("rule name must be [A-Za-z0-9_]+"));
        }
        let parts: Vec<&str> = expr.split_whitespace().collect();
        let [metric, op, value] = parts[..] else {
            return Err(err("expected 'metric op value'"));
        };
        let op = match op {
            ">" => AlertOp::Gt,
            ">=" => AlertOp::Ge,
            "<" => AlertOp::Lt,
            "<=" => AlertOp::Le,
            _ => return Err(err("operator must be one of > >= < <=")),
        };
        let threshold: f64 = value
            .parse()
            .map_err(|_| err("threshold is not a number"))?;
        rules.push(AlertRule::new(name, metric, op, threshold));
    }
    Ok(rules)
}

/// Merge user rules over the built-ins: same name replaces, new name appends.
pub fn merge_rules(user: Vec<AlertRule>) -> Vec<AlertRule> {
    let mut rules = builtin_rules();
    for r in user {
        match rules.iter_mut().find(|b| b.name == r.name) {
            Some(slot) => *slot = r,
            None => rules.push(r),
        }
    }
    rules
}

/// A firing-state transition, reported once per edge for logging.
#[derive(Clone, Debug, PartialEq)]
pub enum AlertEvent {
    Fired {
        rule: String,
        metric: String,
        value: f64,
        threshold: f64,
    },
    Resolved {
        rule: String,
    },
}

struct Firing {
    value: f64,
    since: Instant,
}

/// Evaluates rules against successive health samples.
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    prev: HashMap<String, f64>,
    firing: HashMap<String, Firing>,
}

impl AlertEngine {
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            rules,
            prev: HashMap::new(),
            firing: HashMap::new(),
        }
    }

    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluate every rule against `sample`, updating firing state and
    /// returning the transitions. `<key>_delta` keys are derived from
    /// the previous call's sample (first call: no deltas, so delta rules
    /// cannot fire spuriously at boot).
    pub fn evaluate(&mut self, sample: &[(&'static str, f64)], now: Instant) -> Vec<AlertEvent> {
        let mut ctx: HashMap<String, f64> =
            sample.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        for &(k, v) in sample {
            if let Some(prev) = self.prev.get(k) {
                ctx.insert(format!("{k}_delta"), v - prev);
            }
        }
        self.prev = sample.iter().map(|&(k, v)| (k.to_string(), v)).collect();

        let mut events = Vec::new();
        for rule in &self.rules {
            // An unknown metric (typo, or a delta on the first round)
            // simply never fires.
            let holds = ctx
                .get(&rule.metric)
                .is_some_and(|&v| rule.op.holds(v, rule.threshold));
            let value = ctx.get(&rule.metric).copied().unwrap_or(0.0);
            match (holds, self.firing.contains_key(&rule.name)) {
                (true, false) => {
                    self.firing
                        .insert(rule.name.clone(), Firing { value, since: now });
                    events.push(AlertEvent::Fired {
                        rule: rule.name.clone(),
                        metric: rule.metric.clone(),
                        value,
                        threshold: rule.threshold,
                    });
                }
                (true, true) => {
                    if let Some(f) = self.firing.get_mut(&rule.name) {
                        f.value = value;
                    }
                }
                (false, true) => {
                    self.firing.remove(&rule.name);
                    events.push(AlertEvent::Resolved {
                        rule: rule.name.clone(),
                    });
                }
                (false, false) => {}
            }
        }
        events
    }

    /// Currently-firing alerts, in rule order, for `/v1/alerts` and the
    /// control plane.
    pub fn firing(&self, now: Instant) -> Vec<AlertWire> {
        self.rules
            .iter()
            .filter_map(|rule| {
                self.firing.get(&rule.name).map(|f| AlertWire {
                    rule: rule.name.clone(),
                    metric: rule.metric.clone(),
                    value: f.value,
                    threshold: rule.threshold,
                    since_s: now.saturating_duration_since(f.since).as_secs(),
                })
            })
            .collect()
    }

    /// One JSON line per transition, matching the slow-query log shape.
    pub fn event_line(node: u32, event: &AlertEvent) -> String {
        match event {
            AlertEvent::Fired { rule, metric, value, threshold } => format!(
                "{{\"alert\":\"firing\",\"node\":{node},\"rule\":\"{rule}\",\"metric\":\"{metric}\",\"value\":{value},\"threshold\":{threshold}}}"
            ),
            AlertEvent::Resolved { rule } => {
                format!("{{\"alert\":\"resolved\",\"node\":{node},\"rule\":\"{rule}\"}}")
            }
        }
    }
}

impl std::fmt::Display for AlertRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {} {}",
            self.name,
            self.metric,
            self.op.as_str(),
            self.threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_rejects_garbage() {
        let rules = parse_rules(
            "# watch the loop\n\
             stall: tick_p99_us > 250000\n\
             \n\
             cold_cache: cache_hit_pct < 10  # inline comment\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(
            rules[0],
            AlertRule::new("stall", "tick_p99_us", AlertOp::Gt, 250000.0)
        );
        assert_eq!(
            rules[1],
            AlertRule::new("cold_cache", "cache_hit_pct", AlertOp::Lt, 10.0)
        );

        for bad in [
            "no colon here",
            "name: onlymetric >",
            "name: metric == 3",
            "name: metric > notanumber",
            "bad name!: metric > 1",
        ] {
            assert!(parse_rules(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn user_rules_override_builtins_by_name() {
        let rules =
            merge_rules(parse_rules("fd_ceiling: open_fds > 10\nmine: watches > 5").unwrap());
        let fd = rules.iter().find(|r| r.name == "fd_ceiling").unwrap();
        assert_eq!(fd.threshold, 10.0);
        assert!(rules.iter().any(|r| r.name == "mine"));
        assert_eq!(rules.len(), builtin_rules().len() + 1);
    }

    #[test]
    fn engine_fires_resolves_and_reports_edges_once() {
        let mut eng = AlertEngine::new(parse_rules("hot: load > 10").unwrap());
        let t = Instant::now();
        assert!(eng.evaluate(&[("load", 5.0)], t).is_empty());
        let events = eng.evaluate(&[("load", 12.0)], t);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], AlertEvent::Fired { rule, value, .. } if rule == "hot" && *value == 12.0)
        );
        // Still firing: no new edge, but the reported value tracks.
        assert!(eng.evaluate(&[("load", 20.0)], t).is_empty());
        let firing = eng.firing(t);
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].value, 20.0);
        let events = eng.evaluate(&[("load", 1.0)], t);
        assert!(matches!(&events[0], AlertEvent::Resolved { rule } if rule == "hot"));
        assert!(eng.firing(t).is_empty());
    }

    #[test]
    fn delta_rules_need_two_samples_and_diff_consecutive_ones() {
        let mut eng = AlertEngine::new(parse_rules("leak: watches_delta > 100").unwrap());
        let t = Instant::now();
        // First sample: no previous value, the delta key does not exist.
        assert!(eng.evaluate(&[("watches", 5000.0)], t).is_empty());
        assert!(eng.evaluate(&[("watches", 5050.0)], t).is_empty());
        let events = eng.evaluate(&[("watches", 5200.0)], t);
        assert!(matches!(&events[0], AlertEvent::Fired { value, .. } if *value == 150.0));
    }

    #[test]
    fn event_lines_are_json_shaped() {
        let fired = AlertEngine::event_line(
            2,
            &AlertEvent::Fired {
                rule: "dead_members".into(),
                metric: "dead_members".into(),
                value: 1.0,
                threshold: 0.0,
            },
        );
        assert_eq!(
            fired,
            "{\"alert\":\"firing\",\"node\":2,\"rule\":\"dead_members\",\"metric\":\"dead_members\",\"value\":1,\"threshold\":0}"
        );
        let resolved = AlertEngine::event_line(2, &AlertEvent::Resolved { rule: "x".into() });
        assert_eq!(
            resolved,
            "{\"alert\":\"resolved\",\"node\":2,\"rule\":\"x\"}"
        );
    }
}

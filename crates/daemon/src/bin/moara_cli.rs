//! `moara-cli` — thin client for a `moarad` daemon's control plane.
//!
//! ```text
//! moara-cli --connect 127.0.0.1:7102 query "SELECT count(*) WHERE ServiceX = true"
//! moara-cli --connect 127.0.0.1:7102 set ServiceX=true
//! moara-cli --connect 127.0.0.1:7102 status
//! ```
//!
//! Prints the aggregate (or status) on stdout; exits non-zero on errors
//! and on incomplete query answers.

use std::time::Duration;

use moara_daemon::{ctrl_roundtrip, parse_value, CtrlReply, CtrlRequest};

const USAGE: &str = "usage: moara-cli --connect IP:PORT (query TEXT | set k=v | status) \
                     [--timeout SECS]";

fn fail(msg: &str) -> ! {
    eprintln!("moara-cli: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut connect = None;
    let mut timeout = Duration::from_secs(120);
    let mut command: Option<CtrlRequest> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--connect" => connect = Some(val("--connect")),
            "--timeout" => {
                timeout = Duration::from_secs(
                    val("--timeout")
                        .parse()
                        .unwrap_or_else(|_| fail("--timeout needs whole seconds")),
                );
            }
            "query" => command = Some(CtrlRequest::Query { text: val("query") }),
            "set" => {
                let kv = val("set");
                let Some((k, v)) = kv.split_once('=') else {
                    fail(&format!("`{kv}` is not k=v"));
                };
                command = Some(CtrlRequest::SetAttr {
                    attr: k.to_owned(),
                    value: parse_value(v),
                });
            }
            "status" => command = Some(CtrlRequest::Status),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    let connect = connect.unwrap_or_else(|| fail("--connect is required"));
    let command = command.unwrap_or_else(|| fail("a command is required"));

    match ctrl_roundtrip(&connect, &command, timeout) {
        Ok(CtrlReply::Answer { result, complete }) => {
            println!("{result}");
            if !complete {
                eprintln!("moara-cli: warning: answer incomplete (branch timeout or failure)");
                std::process::exit(3);
            }
        }
        Ok(CtrlReply::Ok) => println!("ok"),
        Ok(CtrlReply::Status {
            node,
            members,
            alive,
            dead,
        }) => {
            // Confirmed-dead peers keep their slot in the member list
            // (dense id space) but are pruned from the overlay; surface
            // them so operators see what the failure detector concluded.
            let dead = if dead.is_empty() {
                "-".to_owned()
            } else {
                dead.iter()
                    .map(|n| format!("n{n}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            println!("node=n{node} members={members} alive={alive} dead={dead}");
        }
        Ok(CtrlReply::Joined { .. }) => {
            // Only daemons send Join; a human shouldn't end up here.
            println!("joined");
        }
        Ok(CtrlReply::Error(e)) => {
            eprintln!("moara-cli: daemon error: {e}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("moara-cli: {e}");
            std::process::exit(1);
        }
    }
}

//! `moara-cli` — thin client for a `moarad` daemon's control plane.
//!
//! ```text
//! moara-cli --connect 127.0.0.1:7102 query "SELECT count(*) WHERE ServiceX = true"
//! moara-cli --connect 127.0.0.1:7102 set ServiceX=true
//! moara-cli --connect 127.0.0.1:7102 status [--json]
//! moara-cli --connect 127.0.0.1:7102 watch "SELECT avg(CPU-Util) WHERE ServiceX = true" \
//!           [--period SECS | --threshold X] [--lease-ms N] [--updates N] [--json]
//! moara-cli --connect 127.0.0.1:7102 traces [--limit N]
//! moara-cli --connect 127.0.0.1:7102 trace 0xID
//! moara-cli --connect 127.0.0.1:7102 top [--once] [--interval-ms N]
//! moara-cli --connect 127.0.0.1:7102 events [--kind K] [--limit N] [--json]
//! moara-cli postmortem /var/crash/moarad-n2.blackbox.jsonl
//! ```
//!
//! `watch` installs a standing query (the continuous-query subscription
//! plane, see `docs/continuous-queries.md`) and streams one line per
//! update until interrupted (or `--updates N` lines arrived). The default
//! delivery is on-change; `--period SECS` switches to periodic snapshots
//! and `--threshold X` to threshold-crossing alerts.
//!
//! `traces` lists the most recent sampled traces known to the daemon;
//! `trace ID` gathers the span tree for one trace from the whole cluster
//! and renders it as a text waterfall (unreachable nodes are flagged, so
//! a partition shows up as a marked-lost subtree instead of a hang).
//!
//! `top` renders a live cluster health dashboard (plain ANSI, no
//! dependencies): one row per member from the answering daemon's merged
//! gossip table — event-loop tick p99, stalls, connections, streams,
//! watches, cache hit ratio, RSS, fds, uptime — plus a per-member tick
//! p99 sparkline from the flight recorder's history rings and the
//! alerts the daemon has firing. The screen refreshes every
//! `--interval-ms` (default 2000); `--once` prints a single frame
//! without clearing, for scripts. `top --once` and `events` exit
//! non-zero with a clear message when the daemon is unreachable.
//!
//! `events` prints the newest entries of the daemon's structured event
//! journal (SWIM transitions, subscription churn, cache promotions,
//! alert transitions, slow queries, …); `--kind` filters one event
//! kind, `--json` emits one JSON object per line.
//!
//! `postmortem FILE` renders a crash dump written by `moarad
//! --crash-dump-dir` (blackbox, crash-panic, or crash-stall): the meta
//! header, each metric's final window as a sparkline, the journal
//! tail, and the peer/alert/exemplar context. Needs no daemon.
//!
//! `--json` makes `status` and `watch` output machine-readable (one JSON
//! object per line); `status --json` includes a `metrics` snapshot of
//! the daemon's headline counters and the latency-bucket trace
//! `exemplars`. Prints results on stdout; exits non-zero on errors and
//! on incomplete query answers.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use moara_core::DeliveryPolicy;
use moara_daemon::{ctrl_roundtrip, parse_value, CtrlReply, CtrlRequest};
use moara_gateway::json;
use moara_simnet::SimDuration;
use moara_wire::{read_frame, write_msg, Wire};

const USAGE: &str = "usage: moara-cli --connect IP:PORT \
                     (query TEXT | set k=v | status | watch TEXT | \
                     traces | trace ID | top | events) \
                     [--period SECS] [--threshold X] [--lease-ms N] \
                     [--updates N] [--limit N] [--kind KIND] [--json] \
                     [--timeout SECS] [--once] [--interval-ms N]\n\
                     \x20      moara-cli postmortem DUMP_FILE";

fn fail(msg: &str) -> ! {
    eprintln!("moara-cli: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

enum Command {
    Simple(CtrlRequest),
    Watch { text: String },
    Traces,
    Top,
    Events,
    Postmortem { file: String },
}

fn main() {
    let mut connect = None;
    let mut timeout = Duration::from_secs(120);
    let mut command: Option<Command> = None;
    let mut json = false;
    let mut period: Option<u64> = None;
    let mut threshold: Option<f64> = None;
    let mut lease_ms: u64 = 30_000;
    let mut max_updates: Option<u64> = None;
    let mut limit: u32 = 50;
    let mut once = false;
    let mut interval_ms: u64 = 2_000;
    let mut kind: Option<String> = None;
    // Remembered across the request/reply hop so the waterfall header can
    // name the trace even when the gather came back empty.
    let mut trace_id: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--connect" => connect = Some(val("--connect")),
            "--timeout" => {
                timeout = Duration::from_secs(
                    val("--timeout")
                        .parse()
                        .unwrap_or_else(|_| fail("--timeout needs whole seconds")),
                );
            }
            "--json" => json = true,
            "--period" => {
                let secs: u64 = val("--period")
                    .parse()
                    .unwrap_or_else(|_| fail("--period needs whole seconds"));
                if secs == 0 {
                    fail("--period must be positive");
                }
                period = Some(secs);
            }
            "--threshold" => {
                threshold = Some(
                    val("--threshold")
                        .parse()
                        .unwrap_or_else(|_| fail("--threshold needs a number")),
                );
            }
            "--lease-ms" => {
                lease_ms = val("--lease-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--lease-ms needs milliseconds"));
            }
            "--updates" => {
                max_updates = Some(
                    val("--updates")
                        .parse()
                        .unwrap_or_else(|_| fail("--updates needs a count")),
                );
            }
            "query" => command = Some(Command::Simple(CtrlRequest::Query { text: val("query") })),
            "set" => {
                let kv = val("set");
                let Some((k, v)) = kv.split_once('=') else {
                    fail(&format!("`{kv}` is not k=v"));
                };
                command = Some(Command::Simple(CtrlRequest::SetAttr {
                    attr: k.to_owned(),
                    value: parse_value(v),
                }));
            }
            "status" => command = Some(Command::Simple(CtrlRequest::Status)),
            "watch" => command = Some(Command::Watch { text: val("watch") }),
            "--limit" => {
                limit = val("--limit")
                    .parse()
                    .unwrap_or_else(|_| fail("--limit needs a count"));
            }
            "traces" => command = Some(Command::Traces),
            "top" => command = Some(Command::Top),
            "events" => command = Some(Command::Events),
            "postmortem" => {
                command = Some(Command::Postmortem {
                    file: val("postmortem"),
                });
            }
            "--kind" => kind = Some(val("--kind")),
            "--once" => once = true,
            "--interval-ms" => {
                interval_ms = val("--interval-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--interval-ms needs milliseconds"));
                if interval_ms == 0 {
                    fail("--interval-ms must be positive");
                }
            }
            "trace" => {
                let id = val("trace");
                trace_id = moara_trace::parse_trace_id(&id)
                    .unwrap_or_else(|| fail(&format!("`{id}` is not a trace id")));
                command = Some(Command::Simple(CtrlRequest::TraceGet { trace_id }));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    let command = command.unwrap_or_else(|| fail("a command is required"));
    if let Command::Postmortem { file } = &command {
        run_postmortem(file);
        return;
    }
    let connect = connect.unwrap_or_else(|| fail("--connect is required"));

    let request = match command {
        Command::Watch { text } => {
            let policy = match (period, threshold) {
                (Some(_), Some(_)) => fail("--period and --threshold are mutually exclusive"),
                (Some(s), None) => DeliveryPolicy::Periodic(SimDuration::from_secs(s)),
                (None, Some(v)) => DeliveryPolicy::Threshold { value: v },
                (None, None) => DeliveryPolicy::OnChange,
            };
            run_watch(&connect, text, policy, lease_ms, max_updates, json);
            return;
        }
        Command::Traces => CtrlRequest::TraceList { limit },
        Command::Top => {
            run_top(&connect, interval_ms, once, timeout);
            return;
        }
        Command::Events => CtrlRequest::EventsFetch { kind, limit },
        Command::Postmortem { .. } => unreachable!("handled above"),
        Command::Simple(req) => req,
    };

    match ctrl_roundtrip(&connect, &request, timeout) {
        Ok(CtrlReply::Answer { result, complete }) => {
            println!("{result}");
            if !complete {
                eprintln!("moara-cli: warning: answer incomplete (branch timeout or failure)");
                std::process::exit(3);
            }
        }
        Ok(CtrlReply::Ok) => println!("ok"),
        Ok(CtrlReply::Status {
            node,
            members,
            alive,
            dead,
            watches,
            sub_entries,
            metrics,
            exemplars,
        }) => {
            if json {
                let dead_json = dead
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                // Headline counters as a flat object; names come from the
                // daemon so new metrics appear here without a CLI change.
                let metrics_json = metrics
                    .iter()
                    .map(|(name, value)| format!("{}:{value}", json::escape(name)))
                    .collect::<Vec<_>>()
                    .join(",");
                // Slow-bucket trace ids: "<hist>/le/<bound>" -> trace id,
                // the bridge from a latency histogram into `trace ID`.
                let exemplars_json = exemplars
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json::escape(k), json::escape(v)))
                    .collect::<Vec<_>>()
                    .join(",");
                println!(
                    "{{\"node\":{node},\"members\":{members},\"alive\":{alive},\
                     \"dead\":[{dead_json}],\"watches\":{watches},\
                     \"sub_entries\":{sub_entries},\
                     \"metrics\":{{{metrics_json}}},\
                     \"exemplars\":{{{exemplars_json}}}}}"
                );
                return;
            }
            // Confirmed-dead peers keep their slot in the member list
            // (dense id space) but are pruned from the overlay; surface
            // them so operators see what the failure detector concluded.
            let dead = if dead.is_empty() {
                "-".to_owned()
            } else {
                dead.iter()
                    .map(|n| format!("n{n}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            println!(
                "node=n{node} members={members} alive={alive} dead={dead} \
                 watches={watches} subs={sub_entries}"
            );
        }
        Ok(CtrlReply::Trace { spans, missing }) => {
            print!(
                "{}",
                moara_trace::render_waterfall(trace_id, &spans, &missing)
            );
            if !missing.is_empty() {
                // Partial trace (a peer was unreachable): succeed so the
                // waterfall is usable, but flag it for scripts.
                std::process::exit(3);
            }
        }
        Ok(CtrlReply::Traces(list)) => {
            if list.is_empty() {
                eprintln!("moara-cli: no traces recorded (is tracing enabled?)");
                return;
            }
            for t in list {
                println!(
                    "{} phase={} node=n{} start_us={} duration_us={} spans={}",
                    moara_trace::format_trace_id(t.trace_id),
                    t.phase.as_str(),
                    t.node,
                    t.start_us,
                    t.duration_us,
                    t.spans,
                );
            }
        }
        Ok(CtrlReply::Spans(_)) => {
            // TraceFetch is daemon-to-daemon; the CLI never sends it.
            eprintln!("moara-cli: unexpected raw span reply");
            std::process::exit(1);
        }
        Ok(CtrlReply::Joined { .. }) => {
            // Only daemons send Join; a human shouldn't end up here.
            println!("joined");
        }
        Ok(CtrlReply::Update { .. }) => {
            eprintln!("moara-cli: unexpected streaming update outside watch");
            std::process::exit(1);
        }
        Ok(CtrlReply::Events(events)) => {
            if events.is_empty() {
                eprintln!("moara-cli: no events recorded (yet)");
                return;
            }
            for e in events {
                if json {
                    println!(
                        "{{\"seq\":{},\"ts_ms\":{},\"node\":{},\"kind\":{},\"detail\":{}}}",
                        e.seq,
                        e.ts_ms,
                        e.node,
                        json::escape(&e.kind),
                        json::escape(&e.detail),
                    );
                } else {
                    println!("{} n{} {:<14} {}", e.ts_ms, e.node, e.kind, e.detail);
                }
            }
        }
        Ok(
            CtrlReply::ClusterHealth { .. }
            | CtrlReply::MetricsText(_)
            | CtrlReply::History { .. }
            | CtrlReply::ClusterHistory { .. },
        ) => {
            // These answer ClusterHealth/MetricsFetch/HistoryFetch,
            // which `top` and the gateway's federation paths send — not
            // this match.
            eprintln!("moara-cli: unexpected health-plane reply");
            std::process::exit(1);
        }
        Ok(CtrlReply::Error(e)) => {
            eprintln!("moara-cli: daemon error: {e}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("moara-cli: cannot reach daemon at {connect}: {e}");
            std::process::exit(1);
        }
    }
}

/// The `top` loop: poll the daemon's merged health table and repaint.
/// One plain-ANSI clear per frame (`ESC[2J ESC[H`) — no terminal
/// library, no raw mode; ^C exits like any CLI. `--once` prints a
/// single frame with no clearing so scripts and tests can capture it.
fn run_top(connect: &str, interval_ms: u64, once: bool, timeout: Duration) {
    loop {
        match ctrl_roundtrip(connect, &CtrlRequest::ClusterHealth, timeout) {
            Ok(CtrlReply::ClusterHealth { node, rows, alerts }) => {
                let sparks = fetch_sparklines(connect, timeout);
                let frame = render_top(node, &rows, &alerts, &sparks);
                if once {
                    print!("{frame}");
                    return;
                }
                print!("\x1b[2J\x1b[H{frame}");
                let _ = std::io::stdout().flush();
            }
            Ok(CtrlReply::Error(e)) => {
                eprintln!("moara-cli: daemon error: {e}");
                std::process::exit(1);
            }
            Ok(other) => {
                eprintln!("moara-cli: unexpected reply {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("moara-cli: cannot reach daemon at {connect}: {e}");
                std::process::exit(1);
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Per-member tick-p99 sparklines from the cluster history federation.
/// Best-effort: a daemon predating the flight recorder (or a gather
/// that failed) just leaves rows sparkline-less rather than killing the
/// dashboard.
fn fetch_sparklines(connect: &str, timeout: Duration) -> std::collections::HashMap<u32, String> {
    let mut out = std::collections::HashMap::new();
    let req = CtrlRequest::ClusterHistory {
        metric: "tick_p99_us".to_owned(),
        range_s: 60,
    };
    if let Ok(CtrlReply::ClusterHistory { series, .. }) = ctrl_roundtrip(connect, &req, timeout) {
        for (node, points) in series {
            let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
            out.insert(node, moara_daemon::recorder::sparkline(&values));
        }
    }
    out
}

/// One `top` frame: a header, the member table, and any firing alerts.
fn render_top(
    node: u32,
    rows: &[moara_daemon::health::PeerHealthRow],
    alerts: &[moara_daemon::health::AlertWire],
    sparks: &std::collections::HashMap<u32, String>,
) -> String {
    use std::fmt::Write as _;
    let alive = rows
        .iter()
        .filter(|r| r.status != moara_daemon::health::HealthStatus::Dead)
        .count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "moara top — via n{node} · {alive}/{} members · {} alert(s) firing",
        rows.len(),
        alerts.len(),
    );
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>7} {:>9} {:>6} {:>6} {:>7} {:>7} {:>5} {:>6} {:>8} {:>5} {:>8} TICK-TREND",
        "NODE",
        "STATUS",
        "AGE",
        "TICKP99",
        "STALL",
        "CONNS",
        "STREAMS",
        "WATCHES",
        "SUBS",
        "CACHE%",
        "RSS",
        "FDS",
        "UPTIME",
    );
    for r in rows {
        let age = if r.age_ms == u64::MAX {
            "-".to_owned()
        } else if r.age_ms < 10_000 {
            format!("{}ms", r.age_ms)
        } else {
            format!("{}s", r.age_ms / 1_000)
        };
        let spark = sparks.get(&r.node).map_or("", |s| s.as_str());
        match &r.summary {
            Some(h) => {
                let _ = writeln!(
                    out,
                    "{:>5} {:>6} {:>7} {:>9} {:>6} {:>6} {:>7} {:>7} {:>5} {:>6} {:>8} {:>5} {:>8} {spark}",
                    format!("n{}", r.node),
                    r.status.as_str(),
                    age,
                    format!("{}us", h.tick_p99_us),
                    h.stalled_ticks,
                    h.open_conns,
                    h.open_streams,
                    h.watches,
                    h.sub_entries,
                    // `n/a`, not a number: the daemon had no cache traffic
                    // in the window, which is different from 0% hits.
                    h.cache_hit_pct()
                        .map_or("n/a".to_owned(), |p| format!("{p:.1}")),
                    fmt_bytes(h.rss_bytes),
                    h.open_fds,
                    fmt_secs(h.uptime_s),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:>5} {:>6} {:>7} {:>9} {:>6} {:>6} {:>7} {:>7} {:>5} {:>6} {:>8} {:>5} {:>8} {spark}",
                    format!("n{}", r.node),
                    r.status.as_str(),
                    age,
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                );
            }
        }
    }
    for a in alerts {
        let _ = writeln!(
            out,
            "ALERT {}: {} = {} (threshold {}, {}s)",
            a.rule, a.metric, a.value, a.threshold, a.since_s,
        );
    }
    out
}

/// `1.5G`-style byte rendering, `-` for the zero a digestless peer sends.
fn fmt_bytes(b: u64) -> String {
    if b == 0 {
        return "-".to_owned();
    }
    if b >= 1 << 30 {
        format!("{:.1}G", b as f64 / f64::from(1u32 << 30))
    } else if b >= 1 << 20 {
        format!("{}M", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}K", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Compact uptime: seconds, minutes, or hours.
fn fmt_secs(s: u64) -> String {
    if s >= 3_600 {
        format!("{}h{}m", s / 3_600, (s % 3_600) / 60)
    } else if s >= 60 {
        format!("{}m{}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// Opens a dedicated control connection, installs the watch, and prints
/// one line per streamed update.
fn run_watch(
    connect: &str,
    text: String,
    policy: DeliveryPolicy,
    lease_ms: u64,
    max_updates: Option<u64>,
    json: bool,
) {
    use std::net::ToSocketAddrs;
    let addr = connect
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| fail(&format!("bad address {connect}")));
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .unwrap_or_else(|e| fail(&format!("connect {connect}: {e}")));
    let _ = stream.set_nodelay(true);
    let req = CtrlRequest::Watch {
        text,
        policy,
        lease_us: lease_ms.saturating_mul(1_000),
    };
    if write_msg(&mut stream, &req).is_err() || stream.flush().is_err() {
        eprintln!("moara-cli: failed to send watch request");
        std::process::exit(1);
    }
    let mut seen = 0u64;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // daemon closed the stream
            Err(e) => {
                eprintln!("moara-cli: stream error: {e}");
                std::process::exit(1);
            }
        };
        match CtrlReply::from_bytes(&payload) {
            Ok(CtrlReply::Update {
                result,
                initial,
                complete,
            }) => {
                if json {
                    println!(
                        "{{\"result\":{},\"initial\":{initial},\"complete\":{complete}}}",
                        json::escape(&result)
                    );
                } else {
                    let mark = if initial { "=" } else { ">" };
                    let note = if complete { "" } else { " (incomplete)" };
                    println!("{mark} {result}{note}");
                }
                let _ = std::io::stdout().flush();
                seen += 1;
                if max_updates.is_some_and(|m| seen >= m) {
                    return;
                }
            }
            Ok(CtrlReply::Error(e)) => {
                eprintln!("moara-cli: daemon error: {e}");
                std::process::exit(1);
            }
            Ok(other) => {
                eprintln!("moara-cli: unexpected reply {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("moara-cli: bad frame: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Renders a crash dump written by `moarad --crash-dump-dir` — works
/// entirely offline, so forensics never depend on the daemon that just
/// died. Unknown line types are skipped, not fatal: a newer daemon's
/// dump should still mostly render on an older CLI.
fn run_postmortem(file: &str) {
    use moara_daemon::recorder::{parse_flat_json, parse_points, sparkline, JsonScalar};

    let body = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("moara-cli: cannot read dump {file}: {e}");
        std::process::exit(1);
    });

    let field = |fields: &[(String, JsonScalar)], key: &str| -> Option<JsonScalar> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let num = |fields: &[(String, JsonScalar)], key: &str| -> f64 {
        field(fields, key).and_then(|v| v.as_num()).unwrap_or(0.0)
    };
    let text = |fields: &[(String, JsonScalar)], key: &str| -> String {
        field(fields, key)
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned())
    };

    let mut series: Vec<String> = Vec::new();
    let mut events: Vec<String> = Vec::new();
    let mut peers: Vec<String> = Vec::new();
    let mut alerts: Vec<String> = Vec::new();
    let mut exemplars: Vec<String> = Vec::new();
    let mut parsed_any = false;

    for line in body.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(fields) = parse_flat_json(line) else {
            eprintln!("moara-cli: skipping unparseable dump line: {line}");
            continue;
        };
        parsed_any = true;
        match text(&fields, "t").as_str() {
            "meta" => {
                println!(
                    "crash dump: n{} · reason {} · written ts_ms={} · moarad v{}",
                    num(&fields, "node"),
                    text(&fields, "reason"),
                    num(&fields, "ts_ms"),
                    text(&fields, "version"),
                );
                println!(
                    "journal: {} events recorded, {} dropped",
                    num(&fields, "events_recorded"),
                    num(&fields, "events_dropped"),
                );
            }
            "series" => {
                let points = parse_points(&text(&fields, "points"));
                let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
                let last = values
                    .iter()
                    .rev()
                    .find(|v| !v.is_nan())
                    .map_or("-".to_owned(), |v| format!("{v}"));
                series.push(format!(
                    "  {:<18} {}  last={last} (res {}s, {} samples)",
                    text(&fields, "metric"),
                    sparkline(&values),
                    num(&fields, "res_s"),
                    points.len(),
                ));
            }
            "event" => {
                events.push(format!(
                    "  {} n{} {:<14} {}",
                    num(&fields, "ts_ms"),
                    num(&fields, "node"),
                    text(&fields, "kind"),
                    text(&fields, "detail"),
                ));
            }
            "peer" => {
                peers.push(format!(
                    "  n{} {:<7} age={}ms tick_p99={}us stalls={} alerts_firing={}",
                    num(&fields, "node"),
                    text(&fields, "status"),
                    num(&fields, "age_ms"),
                    num(&fields, "tick_p99_us"),
                    num(&fields, "stalled_ticks"),
                    num(&fields, "alerts_firing"),
                ));
            }
            "alert" => {
                alerts.push(format!(
                    "  {}: {} = {} (threshold {}, firing {}s)",
                    text(&fields, "rule"),
                    text(&fields, "metric"),
                    num(&fields, "value"),
                    num(&fields, "threshold"),
                    num(&fields, "since_s"),
                ));
            }
            "exemplar" => {
                exemplars.push(format!(
                    "  {} -> {}",
                    text(&fields, "key"),
                    text(&fields, "trace_id"),
                ));
            }
            other => eprintln!("moara-cli: skipping unknown dump line type `{other}`"),
        }
    }

    if !parsed_any {
        eprintln!("moara-cli: {file} holds no parseable dump lines");
        std::process::exit(1);
    }
    for (title, lines) in [
        ("metrics (final window)", &series),
        ("journal tail", &events),
        ("peers at dump time", &peers),
        ("alerts firing", &alerts),
        ("exemplars", &exemplars),
    ] {
        if lines.is_empty() {
            continue;
        }
        println!("\n{title}:");
        for l in lines {
            println!("{l}");
        }
    }
}

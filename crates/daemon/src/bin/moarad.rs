//! `moarad` — the Moara daemon: one protocol node per process, clustered
//! over TCP.
//!
//! ```text
//! # seed a cluster
//! moarad --listen 127.0.0.1:7101 --attrs ServiceX=true
//! # join two more daemons
//! moarad --listen 127.0.0.1:7102 --join 127.0.0.1:7101 --attrs ServiceX=false
//! moarad --listen 127.0.0.1:7103 --join 127.0.0.1:7101 --attrs ServiceX=true
//! # ask any daemon
//! moara-cli --connect 127.0.0.1:7102 query "SELECT count(*) WHERE ServiceX = true"
//! ```
//!
//! `--listen` is the control-plane address (clients and joiners dial it);
//! the peer plane auto-binds and is exchanged through membership.
//! `--http ADDR` additionally opens the HTTP edge gateway there —
//! `GET /v1/query`, `POST /v1/attrs`, `GET /v1/watch` (SSE),
//! `GET /healthz`, `GET /metrics` — so ordinary HTTP clients, load
//! balancers, and Prometheus scrapers can talk to the cluster through
//! any daemon (see `docs/gateway.md`).
//!
//! SIGINT/SIGTERM shut the daemon down gracefully: it stops accepting,
//! cancels its standing watches and SSE streams (so peers GC that state
//! promptly), flushes the cancels, and exits 0.
//!
//! Membership flags (see `docs/membership.md`):
//!
//! * `--rejoin-as N` — crash-recovery: reclaim node id `N` from the seed
//!   (the seed revives the identity under a higher incarnation and the
//!   restarted daemon re-enters its groups' trees);
//! * `--swim-period-ms N` — failure-detector protocol period (default
//!   1000): one liveness probe per period;
//! * `--swim-suspect-periods N` — periods a suspicion may go unrefuted
//!   before the failure is confirmed (default 3).
//!
//! Query-plane scheduler flags (see `docs/query-plane.md`):
//!
//! * `--no-probe-cache` — probe group sizes on every composite query
//!   (the paper's behaviour) instead of caching probe costs;
//! * `--probe-cache-ttl-ms N` — how long a cached probe cost may be
//!   served (default 30000);
//! * `--probe-cache-cap N` — max cached predicates per front-end
//!   (default 1024);
//! * `--no-size-probes` — plan composite covers structurally, without
//!   size probes at all.
//!
//! Observability flags (see `docs/observability.md`):
//!
//! * `--trace-sample N` — sample every Nth root query into the
//!   distributed tracer (default 1 = every query; 0 disables tracing);
//! * `--slow-query-ms N` — log one JSON line to stderr for every query
//!   that takes longer than `N` milliseconds end-to-end;
//! * `--access-log` — log one JSON line to stderr per HTTP gateway
//!   request (method, path, status, duration, bytes, peer).
//!
//! Cluster health-plane flags (see `docs/observability.md`):
//!
//! * `--stall-threshold-ms N` — event-loop ticks whose work time
//!   exceeds `N` milliseconds count as stalls (watchdog + alert input;
//!   default 250);
//! * `--alert-rules FILE` — alert rules (`name: expr op value [for
//!   DURATION]`, where `expr` is a metric name or `rate(metric,
//!   WINDOW)`, one per line, `#` comments) merged over the built-in
//!   defaults: a rule with a built-in's name replaces it.
//!
//! Flight-recorder flags (see `docs/observability.md`):
//!
//! * `--history-retention N` — seconds of down-sampled metrics history
//!   kept in the coarse 10s ring (default 3600); the fine 1s ring
//!   always holds the last 120 s. Served via `GET /v1/history`;
//! * `--crash-dump-dir DIR` — write crash forensics there: a blackbox
//!   dump rewritten every second (survives kill -9), plus dumps on
//!   panics and stall-watchdog trips. Render with `moara-cli
//!   postmortem FILE`.
//!
//! Gateway middleware flags (see `docs/gateway.md`):
//!
//! * `--gw-rate-limit N` — per-peer-IP sustained requests/second on the
//!   gateway; requests beyond the bucket answer 429 (default 0 = off);
//! * `--gw-request-timeout-ms N` — per-request deadline: a request the
//!   daemon has not answered by then gets 408 and its connection closed
//!   (default 30000);
//! * `--gw-idle-timeout-ms N` — keep-alive idle timeout: a connection
//!   with no request in flight and no bytes received for this long is
//!   closed; SSE streams are exempt (default 30000).
//!
//! Gateway result-cache flags (see `docs/gateway.md`):
//!
//! * `--cache-promote-after N` — hits within the sliding window before a
//!   query text is promoted to a standing subscription (default 3);
//! * `--cache-max-entries N` — most query texts tracked at once
//!   (default 256; LRU-evicted beyond that);
//! * `--no-query-cache` — disable the result cache *and* single-flight
//!   request coalescing (every `GET /v1/query` walks the tree).

use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use moara_core::{MoaraConfig, ProbeCachePolicy};
use moara_daemon::{parse_attrs, Daemon, DaemonOpts};
use moara_gateway::CacheConfig;
use moara_membership::SwimConfig;
use moara_simnet::SimDuration;

const USAGE: &str = "usage: moarad --listen IP:PORT [--join IP:PORT] \
                     [--http IP:PORT] [--rejoin-as N] [--attrs k=v,...] \
                     [--seed N] \
                     [--swim-period-ms N] [--swim-suspect-periods N] \
                     [--no-probe-cache] [--probe-cache-ttl-ms N] \
                     [--probe-cache-cap N] [--no-size-probes] \
                     [--trace-sample N] [--slow-query-ms N] [--access-log] \
                     [--gw-rate-limit N] [--gw-request-timeout-ms N] \
                     [--gw-idle-timeout-ms N] \
                     [--cache-promote-after N] [--cache-max-entries N] \
                     [--no-query-cache] \
                     [--stall-threshold-ms N] [--alert-rules FILE] \
                     [--history-retention SECONDS] [--crash-dump-dir DIR]";

/// Flipped by the SIGINT/SIGTERM handler; the main loop notices and
/// shuts down gracefully. A store is all the handler does — the only
/// async-signal-safe thing it could do.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Registers the shutdown handler via libc's `signal` (linked into every
/// `std` binary; declared here because the container bakes in no signal
/// crate). No-op on non-Unix targets.
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("moarad: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut listen = None;
    let mut join = None;
    let mut http = None;
    let mut rejoin = None;
    let mut attrs = Vec::new();
    let mut seed = 42u64;
    let mut cfg = MoaraConfig::default();
    let mut swim = SwimConfig::default();
    let mut trace_sample = 1u64;
    let mut slow_query_ms = None;
    let mut access_log = false;
    let mut gw_rate_limit = 0.0f64;
    let mut gw_request_timeout_ms = 30_000u64;
    let mut gw_idle_timeout_ms = 30_000u64;
    // Like the probe cache: the tuning flags only adjust the config,
    // `--no-query-cache` is the sole on/off switch, so order never
    // matters.
    let mut query_cache = CacheConfig::default();
    let mut query_cache_on = true;
    let mut stall_threshold_ms = 250u64;
    let mut alert_rules = Vec::new();
    let mut history_retention_s = moara_daemon::recorder::DEFAULT_RETENTION_S;
    let mut crash_dump_dir = None;
    // The TTL/capacity flags only tune the cache; `--no-probe-cache` is
    // the sole on/off switch, so flag order never matters.
    let (mut cache_ttl, mut cache_cap) = match cfg.probe_cache {
        ProbeCachePolicy::Cache { ttl, capacity } => (ttl, capacity),
        ProbeCachePolicy::Off => (SimDuration::from_secs(30), 1024),
    };
    let mut cache_on = cfg.probe_cache.enabled();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--listen" => {
                let v = val("--listen");
                listen = Some(
                    v.to_socket_addrs()
                        .ok()
                        .and_then(|mut a| a.next())
                        .unwrap_or_else(|| fail(&format!("bad --listen address {v}"))),
                );
            }
            "--join" => join = Some(val("--join")),
            "--http" => {
                let v = val("--http");
                http = Some(
                    v.to_socket_addrs()
                        .ok()
                        .and_then(|mut a| a.next())
                        .unwrap_or_else(|| fail(&format!("bad --http address {v}"))),
                );
            }
            "--rejoin-as" => {
                rejoin = Some(
                    val("--rejoin-as")
                        .parse()
                        .unwrap_or_else(|_| fail("--rejoin-as needs a node id")),
                );
            }
            "--swim-period-ms" => {
                let ms: u64 = val("--swim-period-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--swim-period-ms needs an integer"));
                if ms == 0 {
                    fail("--swim-period-ms must be positive");
                }
                swim.period = SimDuration::from_millis(ms);
                // Keep the direct-probe window inside the period.
                swim.ping_timeout = SimDuration::from_millis((ms / 3).max(1));
            }
            "--swim-suspect-periods" => {
                swim.suspect_periods = val("--swim-suspect-periods")
                    .parse()
                    .unwrap_or_else(|_| fail("--swim-suspect-periods needs an integer"));
                if swim.suspect_periods == 0 {
                    fail("--swim-suspect-periods must be positive");
                }
            }
            "--attrs" => match parse_attrs(&val("--attrs")) {
                Ok(a) => attrs = a,
                Err(e) => fail(&e),
            },
            "--seed" => {
                seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"));
            }
            "--no-probe-cache" => cache_on = false,
            "--probe-cache-ttl-ms" => {
                let ms: u64 = val("--probe-cache-ttl-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--probe-cache-ttl-ms needs an integer"));
                if ms == 0 {
                    fail("--probe-cache-ttl-ms must be positive (use --no-probe-cache)");
                }
                cache_ttl = SimDuration::from_millis(ms);
            }
            "--probe-cache-cap" => {
                cache_cap = val("--probe-cache-cap")
                    .parse()
                    .unwrap_or_else(|_| fail("--probe-cache-cap needs an integer"));
                if cache_cap == 0 {
                    fail("--probe-cache-cap must be at least 1");
                }
            }
            "--no-size-probes" => cfg.use_size_probes = false,
            "--trace-sample" => {
                trace_sample = val("--trace-sample")
                    .parse()
                    .unwrap_or_else(|_| fail("--trace-sample needs an integer (0 disables)"));
            }
            "--slow-query-ms" => {
                slow_query_ms = Some(
                    val("--slow-query-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--slow-query-ms needs milliseconds")),
                );
            }
            "--access-log" => access_log = true,
            "--gw-rate-limit" => {
                gw_rate_limit = val("--gw-rate-limit")
                    .parse()
                    .unwrap_or_else(|_| fail("--gw-rate-limit needs requests/second (0 = off)"));
                if !gw_rate_limit.is_finite() || gw_rate_limit < 0.0 {
                    fail("--gw-rate-limit must be a non-negative number");
                }
            }
            "--gw-request-timeout-ms" => {
                gw_request_timeout_ms = val("--gw-request-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--gw-request-timeout-ms needs milliseconds"));
                if gw_request_timeout_ms == 0 {
                    fail("--gw-request-timeout-ms must be positive");
                }
            }
            "--gw-idle-timeout-ms" => {
                gw_idle_timeout_ms = val("--gw-idle-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--gw-idle-timeout-ms needs milliseconds"));
                if gw_idle_timeout_ms == 0 {
                    fail("--gw-idle-timeout-ms must be positive");
                }
            }
            "--cache-promote-after" => {
                query_cache.promote_after = val("--cache-promote-after")
                    .parse()
                    .unwrap_or_else(|_| fail("--cache-promote-after needs an integer"));
                if query_cache.promote_after == 0 {
                    fail("--cache-promote-after must be at least 1");
                }
            }
            "--cache-max-entries" => {
                query_cache.max_entries = val("--cache-max-entries")
                    .parse()
                    .unwrap_or_else(|_| fail("--cache-max-entries needs an integer"));
                if query_cache.max_entries == 0 {
                    fail("--cache-max-entries must be at least 1 (use --no-query-cache)");
                }
            }
            "--no-query-cache" => query_cache_on = false,
            "--stall-threshold-ms" => {
                stall_threshold_ms = val("--stall-threshold-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--stall-threshold-ms needs milliseconds"));
                if stall_threshold_ms == 0 {
                    fail("--stall-threshold-ms must be positive");
                }
            }
            "--alert-rules" => {
                let path = val("--alert-rules");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read --alert-rules {path}: {e}")));
                match moara_daemon::alerts::parse_rules(&text) {
                    Ok(rules) => alert_rules = rules,
                    Err(e) => fail(&format!("--alert-rules {path}: {e}")),
                }
            }
            "--history-retention" => {
                history_retention_s = val("--history-retention")
                    .parse()
                    .unwrap_or_else(|_| fail("--history-retention needs seconds"));
                if history_retention_s == 0 {
                    fail("--history-retention must be positive");
                }
            }
            "--crash-dump-dir" => {
                crash_dump_dir = Some(std::path::PathBuf::from(val("--crash-dump-dir")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let listen = listen.unwrap_or_else(|| fail("--listen is required"));
    cfg.probe_cache = if cache_on {
        ProbeCachePolicy::Cache {
            ttl: cache_ttl,
            capacity: cache_cap,
        }
    } else {
        ProbeCachePolicy::Off
    };

    install_signal_handlers();
    let mut daemon = match Daemon::start(DaemonOpts {
        listen,
        join,
        attrs,
        seed,
        cfg,
        swim,
        rejoin,
        http,
        trace_sample,
        slow_query_ms,
        access_log,
        query_cache: query_cache_on.then_some(query_cache),
        gw_rate_limit,
        gw_request_timeout_ms,
        gw_idle_timeout_ms,
        stall_threshold_ms,
        alert_rules,
        history_retention_s,
        crash_dump_dir,
    }) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("moarad: {e}");
            std::process::exit(1);
        }
    };

    // One parseable line for scripts/tests, then serve forever. The
    // member count printed here is the view at boot; poll `status` via
    // moara-cli for the live view.
    println!(
        "MOARAD ctrl={} node=n{} peer={} members={} http={}",
        daemon.ctrl_addr(),
        daemon.id().0,
        daemon
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "-".into()),
        daemon.member_count(),
        daemon
            .http_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "-".into()),
    );
    let mut last_members = daemon.member_count();
    loop {
        daemon.step(Duration::from_millis(5));
        if SHUTDOWN.load(Ordering::SeqCst) {
            daemon.shutdown();
            println!("MOARAD shutdown");
            return;
        }
        let members = daemon.member_count();
        if members != last_members {
            println!("MOARAD members={members}");
            last_members = members;
        }
    }
}

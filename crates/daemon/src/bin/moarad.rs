//! `moarad` — the Moara daemon: one protocol node per process, clustered
//! over TCP.
//!
//! ```text
//! # seed a cluster
//! moarad --listen 127.0.0.1:7101 --attrs ServiceX=true
//! # join two more daemons
//! moarad --listen 127.0.0.1:7102 --join 127.0.0.1:7101 --attrs ServiceX=false
//! moarad --listen 127.0.0.1:7103 --join 127.0.0.1:7101 --attrs ServiceX=true
//! # ask any daemon
//! moara-cli --connect 127.0.0.1:7102 query "SELECT count(*) WHERE ServiceX = true"
//! ```
//!
//! `--listen` is the control-plane address (clients and joiners dial it);
//! the peer plane auto-binds and is exchanged through membership.

use std::net::ToSocketAddrs;
use std::time::Duration;

use moara_core::MoaraConfig;
use moara_daemon::{parse_attrs, Daemon, DaemonOpts};

const USAGE: &str = "usage: moarad --listen IP:PORT [--join IP:PORT] \
                     [--attrs k=v,...] [--seed N]";

fn fail(msg: &str) -> ! {
    eprintln!("moarad: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut listen = None;
    let mut join = None;
    let mut attrs = Vec::new();
    let mut seed = 42u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--listen" => {
                let v = val("--listen");
                listen = Some(
                    v.to_socket_addrs()
                        .ok()
                        .and_then(|mut a| a.next())
                        .unwrap_or_else(|| fail(&format!("bad --listen address {v}"))),
                );
            }
            "--join" => join = Some(val("--join")),
            "--attrs" => match parse_attrs(&val("--attrs")) {
                Ok(a) => attrs = a,
                Err(e) => fail(&e),
            },
            "--seed" => {
                seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let listen = listen.unwrap_or_else(|| fail("--listen is required"));

    let mut daemon = match Daemon::start(DaemonOpts {
        listen,
        join,
        attrs,
        seed,
        cfg: MoaraConfig::default(),
    }) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("moarad: {e}");
            std::process::exit(1);
        }
    };

    // One parseable line for scripts/tests, then serve forever. The
    // member count printed here is the view at boot; poll `status` via
    // moara-cli for the live view.
    println!(
        "MOARAD ctrl={} node=n{} peer={} members={}",
        daemon.ctrl_addr(),
        daemon.id().0,
        daemon
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "-".into()),
        daemon.member_count(),
    );
    let mut last_members = daemon.member_count();
    loop {
        daemon.step(Duration::from_millis(5));
        let members = daemon.member_count();
        if members != last_members {
            println!("MOARAD members={members}");
            last_members = members;
        }
    }
}

//! A deterministic multi-daemon harness: the *daemon's* node — protocol
//! engine plus SWIM failure detector, one private overlay [`Directory`]
//! per node, exactly as in a one-process-per-`moarad` deployment — hosted
//! on the discrete-event [`SimTransport`].
//!
//! This is what makes the membership subsystem testable the way the
//! paper's experiments are: the identical state machines that run in
//! real time over TCP are driven here by virtual-time timers and seeded
//! randomness, so crash → confirm → repair → rejoin scenarios replay
//! byte-for-byte. Unlike `moara_core::Cluster`, nothing here is
//! omniscient: a crash is `fail_node` on the *transport* (frames stop
//! flowing), and every structural reaction happens because some node's
//! detector concluded something.

use moara_core::{DeliveryPolicy, Directory, MoaraConfig, MoaraNode, QueryOutcome, SubUpdate};
use moara_dht::Id;
use moara_membership::{SwimConfig, SwimDetector, SwimEvent};
use moara_query::parse_query;
use moara_simnet::{latency, NodeId, SimDuration, Stats};
use moara_transport::{SimTransport, Transport};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::health::{HealthSummary, CACHE_RATIO_NONE};
use crate::recorder::{kind, Recorder, DEFAULT_RETENTION_S};
use crate::{moara_ctx, swim_ctx, DaemonNode};

/// One simulated daemon's private world-view: its overlay directory and
/// which members it currently believes alive.
struct SwarmView {
    dir: Directory,
    alive: Vec<bool>,
}

/// A cluster of simulated daemons (see module docs).
pub struct SimSwarm {
    transport: SimTransport<DaemonNode>,
    views: Vec<SwarmView>,
    swim_period: SimDuration,
    /// Per-daemon flight recorders, empty until
    /// [`SimSwarm::enable_flight_recorder`]. Virtual-time driven: the
    /// swarm samples each daemon into its history rings once per
    /// simulated second and journals detector transitions, mirroring
    /// what the real event loop's maintenance tick does.
    recorders: Vec<Recorder>,
    vtime_us: u64,
    last_sample_ms: u64,
}

impl SimSwarm {
    /// Builds `n` simulated daemons with identical member lists (random
    /// distinct ring ids from `seed`) and per-node directories.
    pub fn new(n: usize, cfg: MoaraConfig, swim: SwimConfig, seed: u64) -> SimSwarm {
        assert!(n > 0, "swarm needs at least one daemon");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ring_ids: Vec<Id> = Vec::with_capacity(n);
        while ring_ids.len() < n {
            let id = Id(rng.gen());
            if !ring_ids.contains(&id) {
                ring_ids.push(id);
            }
        }
        let pairs: Vec<(NodeId, Id)> = ring_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (NodeId(i as u32), id))
            .collect();
        let mut transport: SimTransport<DaemonNode> =
            SimTransport::new(latency::Constant::from_millis(1), seed.wrapping_add(1));
        let mut views = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let dir = Directory::from_members(&pairs, cfg.bits_per_digit);
            let moara = MoaraNode::new(dir.clone(), cfg.clone());
            let mut det = SwimDetector::new(NodeId(i), swim.clone(), seed ^ u64::from(i));
            for &(node, _) in &pairs {
                if node != NodeId(i) {
                    det.sync_peer(node, 0, true, moara_simnet::SimTime::ZERO);
                }
            }
            transport.add_node(DaemonNode::new(moara, det));
            views.push(SwarmView {
                dir,
                alive: vec![true; n],
            });
        }
        SimSwarm {
            transport,
            views,
            swim_period: swim.period,
            recorders: Vec::new(),
            vtime_us: 0,
            last_sample_ms: 0,
        }
    }

    /// Number of daemons (alive or crashed).
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if the swarm is empty (never: the constructor requires one).
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Read access to one daemon's node (engine + detector).
    pub fn node(&self, node: NodeId) -> &DaemonNode {
        self.transport.node(node)
    }

    /// Message statistics of the swarm's transport.
    pub fn stats(&self) -> &Stats {
        self.transport.stats()
    }

    /// Mutable statistics (reset between phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        self.transport.stats_mut()
    }

    /// Installs a standing query at one daemon's front-end; drive the
    /// swarm with [`SimSwarm::run`] and drain
    /// [`SimSwarm::take_sub_updates`].
    pub fn subscribe(
        &mut self,
        origin: NodeId,
        text: &str,
        policy: DeliveryPolicy,
        lease: SimDuration,
    ) -> u64 {
        let query = parse_query(text).expect("query parses");
        self.transport.with_node(origin, |dn, ctx| {
            let mut mctx = moara_ctx(ctx);
            dn.moara.subscribe(&mut mctx, query, policy, lease)
        })
    }

    /// Drains the client-visible updates of a watch.
    pub fn take_sub_updates(&mut self, origin: NodeId, watch_id: u64) -> Vec<SubUpdate> {
        self.transport
            .node_mut(origin)
            .moara
            .take_sub_updates(watch_id)
    }

    /// Cancels a subscription.
    pub fn unsubscribe(&mut self, origin: NodeId, watch_id: u64) {
        self.transport.with_node(origin, |dn, ctx| {
            let mut mctx = moara_ctx(ctx);
            dn.moara.unsubscribe(&mut mctx, watch_id);
        });
    }

    /// Total per-tree subscription entries across the *alive* daemons.
    pub fn sub_entries_total(&self) -> usize {
        (0..self.views.len() as u32)
            .map(NodeId)
            .filter(|&n| self.transport.is_alive(n))
            .map(|n| self.transport.node(n).moara.sub_entry_count())
            .sum()
    }

    /// Whether daemon `at` currently believes member `about` is alive.
    pub fn believes_alive(&self, at: NodeId, about: NodeId) -> bool {
        self.views[at.index()].alive[about.index()]
    }

    /// Sets a local attribute at one daemon (group churn).
    pub fn set_attr(
        &mut self,
        node: NodeId,
        attr: &str,
        value: impl Into<moara_attributes::Value>,
    ) {
        if !self.transport.is_alive(node) {
            return;
        }
        let value = value.into();
        self.transport.with_node(node, |dn, ctx| {
            let mut mctx = moara_ctx(ctx);
            dn.moara.store.set(attr, value);
            dn.moara.on_local_change(&mut mctx, attr);
        });
    }

    /// Advances virtual time by `d`, applying detector conclusions to
    /// each daemon's private view as they happen (sliced at the SWIM
    /// period so repairs land with detection latency, not at the end).
    pub fn run(&mut self, d: SimDuration) {
        let slice = self.swim_period.as_micros().max(1);
        let mut left = d.as_micros();
        while left > 0 {
            let step = left.min(slice);
            self.transport.run_for(SimDuration::from_micros(step));
            self.vtime_us += step;
            self.apply_events();
            self.sample_recorders();
            left -= step;
        }
    }

    /// Runs `periods` failure-detector periods.
    pub fn run_periods(&mut self, periods: u64) {
        self.run(SimDuration::from_micros(
            self.swim_period.as_micros().saturating_mul(periods),
        ));
    }

    /// Drains every live daemon's detector events and performs the same
    /// repairs the real daemon loop does: confirmed failure ⇒ prune from
    /// the directory (ring repair) + `on_peer_failed` + `reconcile`;
    /// revival ⇒ re-insert + `reconcile`.
    pub fn apply_events(&mut self) {
        for i in 0..self.views.len() {
            let me = NodeId(i as u32);
            if !self.transport.is_alive(me) {
                continue;
            }
            let events = self.transport.node_mut(me).swim.take_events();
            for ev in events {
                if let Some(rec) = self.recorders.get(i) {
                    let ts = self.vtime_us / 1_000;
                    match &ev {
                        SwimEvent::Suspected(n) => {
                            rec.journal.record(
                                ts,
                                me.0,
                                kind::SWIM_SUSPECT,
                                format!("peer={}", n.0),
                            );
                        }
                        SwimEvent::Confirmed(n) => {
                            rec.journal.record(
                                ts,
                                me.0,
                                kind::SWIM_CONFIRM,
                                format!("peer={}", n.0),
                            );
                        }
                        SwimEvent::Revived { node, incarnation } => {
                            let detail = format!("peer={} incarnation={incarnation}", node.0);
                            rec.journal.record(ts, me.0, kind::SWIM_REFUTE, detail);
                        }
                    }
                }
                match ev {
                    SwimEvent::Suspected(_) => {}
                    SwimEvent::Confirmed(n) => {
                        let view = &mut self.views[i];
                        if !view.alive[n.index()] {
                            continue;
                        }
                        view.alive[n.index()] = false;
                        view.dir.remove_member(n);
                        self.transport.with_node(me, |dn, ctx| {
                            let mut mctx = moara_ctx(ctx);
                            dn.moara.on_peer_failed(&mut mctx, n);
                            dn.moara.reconcile(&mut mctx);
                        });
                    }
                    SwimEvent::Revived { node, .. } => {
                        let view = &mut self.views[i];
                        if view.alive[node.index()] {
                            continue;
                        }
                        view.alive[node.index()] = true;
                        view.dir.revive_member(node);
                        self.transport.with_node(me, |dn, ctx| {
                            let mut mctx = moara_ctx(ctx);
                            dn.moara.reconcile(&mut mctx);
                        });
                    }
                }
            }
        }
    }

    /// Turns on health-digest piggybacking for every daemon, exactly as
    /// the real event loop does once its first self-sample lands: each
    /// node's current state is snapshotted into a [`HealthSummary`] that
    /// rides every subsequent outgoing SWIM message. The overhead gates
    /// in `moara-bench` compare a swarm with this on against one without
    /// it (same seed, same workload).
    pub fn enable_health_gossip(&mut self) {
        for i in 0..self.views.len() as u32 {
            let me = NodeId(i);
            if !self.transport.is_alive(me) {
                continue;
            }
            let dn = self.transport.node_mut(me);
            dn.health_digest = Some(HealthSummary {
                node: i,
                incarnation: dn.swim.incarnation(),
                watches: dn.moara.active_watches() as u32,
                sub_entries: dn.moara.sub_entry_count() as u32,
                cache_hit_bp: CACHE_RATIO_NONE,
                ..HealthSummary::default()
            });
        }
    }

    /// Turns on a flight recorder at every daemon: history rings sampled
    /// once per simulated second plus a journal of detector transitions.
    /// The `recorder_overhead` bench compares a swarm with this on
    /// against one without it (same seed, same workload).
    pub fn enable_flight_recorder(&mut self) {
        if !self.recorders.is_empty() {
            return;
        }
        for i in 0..self.views.len() as u32 {
            let rec = Recorder::new(DEFAULT_RETENTION_S, None);
            rec.set_node(i);
            self.recorders.push(rec);
        }
    }

    /// Daemon `node`'s flight recorder; `None` until enabled.
    pub fn recorder(&self, node: NodeId) -> Option<&Recorder> {
        self.recorders.get(node.index())
    }

    /// Records one history sample per live daemon every simulated second
    /// (the real daemon's maintenance tick). The sample is the subset of
    /// the health-plane keys that exist in the sim harness; the point is
    /// charging the same ring-write cost per daemon-second.
    fn sample_recorders(&mut self) {
        if self.recorders.is_empty() {
            return;
        }
        let now_ms = self.vtime_us / 1_000;
        if now_ms.saturating_sub(self.last_sample_ms) < 1_000 {
            return;
        }
        self.last_sample_ms = now_ms;
        for i in 0..self.views.len() {
            let me = NodeId(i as u32);
            if !self.transport.is_alive(me) {
                continue;
            }
            let dn = self.transport.node(me);
            let dead = self.views[i].alive.iter().filter(|a| !**a).count();
            let sample = [
                ("watches", dn.moara.active_watches() as f64),
                ("sub_entries", dn.moara.sub_entry_count() as f64),
                ("dead_members", dead as f64),
            ];
            if let Ok(mut h) = self.recorders[i].history.lock() {
                h.record(now_ms, &sample);
            }
        }
    }

    /// The freshest health digest daemon `at` holds about peer `about`
    /// (gossiped, not asked for). `None` until gossip delivers one.
    pub fn peer_digest(&self, at: NodeId, about: NodeId) -> Option<HealthSummary> {
        self.transport
            .node(at)
            .pending_health
            .iter()
            .rev()
            .find(|(n, _)| *n == about.0)
            .map(|(_, h)| h.clone())
    }

    /// Crashes a daemon at the *network* level: its frames stop flowing
    /// and its timers die. Nobody is told — the survivors' detectors
    /// must find out.
    pub fn crash(&mut self, node: NodeId) {
        self.transport.fail_node(node);
    }

    /// Restarts a crashed daemon with its state preserved (attribute
    /// store, ring id): the detector re-arms its probe loop, bumps its
    /// incarnation above the one the cluster may have confirmed dead,
    /// and re-announces; the engine discards stale tree state and
    /// re-enters its groups' trees. The revival then spreads by gossip —
    /// no omniscient recovery notification.
    pub fn restart(&mut self, node: NodeId) {
        assert!(
            !self.transport.is_alive(node),
            "restart targets a crashed daemon"
        );
        self.transport.recover_node(node);
        self.transport.with_node(node, |dn, ctx| {
            // A real restarted moarad builds a fresh detector; emulate
            // that: no pre-crash probe or suspicion clock may leak into
            // the new life (an aged suspicion would confirm a healthy
            // peer on the first tick back).
            dn.swim.reset_transients(ctx.now());
            let inc = dn.swim.incarnation();
            dn.swim.set_incarnation(inc + 1);
            let mut sctx = swim_ctx(ctx, dn.health_digest.as_ref());
            dn.swim.start(&mut sctx);
            let mut mctx = moara_ctx(ctx);
            dn.moara.on_rejoin(&mut mctx);
        });
    }

    /// Runs a query from `origin`'s front-end, advancing virtual time
    /// (and applying detector repairs) until it completes.
    ///
    /// # Panics
    ///
    /// Panics on parse errors and when the query outlives its front-end
    /// deadline by a wide margin (protocol bug).
    pub fn query(&mut self, origin: NodeId, text: &str) -> QueryOutcome {
        let query = parse_query(text).expect("query parses");
        let fid = self.transport.with_node(origin, |dn, ctx| {
            let mut mctx = moara_ctx(ctx);
            dn.moara.submit(&mut mctx, query)
        });
        for _ in 0..10_000 {
            if let Some(out) = self.transport.node_mut(origin).moara.take_outcome(fid) {
                return out;
            }
            self.transport.run_for(SimDuration::from_millis(20));
            self.apply_events();
        }
        panic!("query never completed (front timeout should bound it)");
    }
}

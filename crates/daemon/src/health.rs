//! Self-monitoring: the compact health digest each daemon samples about
//! itself, gossips piggybacked on SWIM traffic, and serves merged at
//! `GET /v1/cluster/health`.
//!
//! The digest is deliberately tiny (tens of bytes, hard-capped by
//! [`HEALTH_DIGEST_MAX_BYTES`]) because it rides on *every* outgoing
//! failure-detector message — the same zero-extra-messages trick trace
//! contexts use. It is also wire-versioned with an explicit payload
//! length, so a newer daemon can append fields without breaking older
//! peers: decoders read the fields they know and skip the rest.

use std::time::Duration;

use moara_wire::{take, Wire, WireError};

/// Current digest wire version. Version 0 is reserved as invalid so a
/// zeroed buffer can never parse as a digest.
pub const HEALTH_WIRE_VERSION: u8 = 1;

/// Hard cap on an encoded digest. SWIM messages are latency-critical
/// (a fat piggyback would show up as probe jitter), so a digest that
/// would exceed this is dropped rather than attached — enforced by the
/// sampler, asserted in tests.
pub const HEALTH_DIGEST_MAX_BYTES: usize = 160;

/// Sentinel for [`HealthSummary::cache_hit_bp`]: the result cache is
/// disabled or has served no lookups yet.
pub const CACHE_RATIO_NONE: u16 = u16::MAX;

/// One daemon's self-sampled health snapshot.
///
/// Everything here is either a gauge ("how things stand right now") or
/// a monotone counter ("how many times since boot") — peers render it
/// directly and the alert engine diffs counters across samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthSummary {
    /// The sampling node.
    pub node: u32,
    /// Its SWIM incarnation at sampling time (a restart shows as a jump).
    pub incarnation: u64,
    /// Seconds since the daemon booted.
    pub uptime_s: u64,
    /// Event-loop tick work-time p99 in microseconds (poll wait
    /// excluded), the single best "is this daemon degrading" number.
    pub tick_p99_us: u64,
    /// Ticks whose work time crossed `--stall-threshold-ms` since boot.
    pub stalled_ticks: u64,
    /// Gateway jobs accepted by reactor shards but not yet drained by
    /// the event loop (the GwJob channel depth).
    pub queued_jobs: u32,
    /// HTTP connections currently registered with reactor shards.
    pub open_conns: u32,
    /// SSE watch streams currently parked on the reactor.
    pub open_streams: u32,
    /// Standing watches fronted by this daemon.
    pub watches: u32,
    /// Standing-subscription entries hosted on this node's trees.
    pub sub_entries: u32,
    /// Result-cache hit ratio in basis points (0–10000), or
    /// [`CACHE_RATIO_NONE`] when the cache is off or unused.
    pub cache_hit_bp: u16,
    /// Resident set size in bytes (`/proc/self/statm`).
    pub rss_bytes: u64,
    /// Open file descriptors (`/proc/self/fd`).
    pub open_fds: u32,
    /// Queries submitted here still waiting for their outcome.
    pub queries_inflight: u32,
    /// Alert rules currently firing on this daemon.
    pub alerts_firing: u32,
}

impl HealthSummary {
    /// Result-cache hit ratio as a percentage, if known.
    pub fn cache_hit_pct(&self) -> Option<f64> {
        (self.cache_hit_bp != CACHE_RATIO_NONE).then(|| f64::from(self.cache_hit_bp) / 100.0)
    }
}

impl Wire for HealthSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        HEALTH_WIRE_VERSION.encode(out);
        // Explicit payload length: older decoders skip fields a newer
        // sampler appended.
        let payload_len = self.encoded_len() - 3;
        (payload_len as u16).encode(out);
        self.node.encode(out);
        self.incarnation.encode(out);
        self.uptime_s.encode(out);
        self.tick_p99_us.encode(out);
        self.stalled_ticks.encode(out);
        self.queued_jobs.encode(out);
        self.open_conns.encode(out);
        self.open_streams.encode(out);
        self.watches.encode(out);
        self.sub_entries.encode(out);
        self.cache_hit_bp.encode(out);
        self.rss_bytes.encode(out);
        self.open_fds.encode(out);
        self.queries_inflight.encode(out);
        self.alerts_firing.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let version = u8::decode(buf)?;
        if version == 0 {
            return Err(WireError::Invalid("health digest version"));
        }
        let payload_len = u16::decode(buf)? as usize;
        let mut payload = take(buf, payload_len)?;
        let p = &mut payload;
        Ok(HealthSummary {
            node: Wire::decode(p)?,
            incarnation: Wire::decode(p)?,
            uptime_s: Wire::decode(p)?,
            tick_p99_us: Wire::decode(p)?,
            stalled_ticks: Wire::decode(p)?,
            queued_jobs: Wire::decode(p)?,
            open_conns: Wire::decode(p)?,
            open_streams: Wire::decode(p)?,
            watches: Wire::decode(p)?,
            sub_entries: Wire::decode(p)?,
            cache_hit_bp: Wire::decode(p)?,
            rss_bytes: Wire::decode(p)?,
            open_fds: Wire::decode(p)?,
            queries_inflight: Wire::decode(p)?,
            alerts_firing: Wire::decode(p)?,
            // Remaining payload bytes belong to a newer version: skipped.
        })
    }
    fn encoded_len(&self) -> usize {
        1 + 2 // version + payload length
            + 4 + 8 + 8 + 8 + 8 // node..stalled_ticks
            + 4 + 4 + 4 + 4 + 4 // queued_jobs..sub_entries
            + 2 + 8 + 4 + 4 + 4 // cache_hit_bp..alerts_firing
    }
}

/// How fresh a peer's digest is, as served in the merged health table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthStatus {
    /// A recent digest is held.
    Ok = 0,
    /// The member is believed alive but its digest is old or absent
    /// (partitioned, or gossip has not reached us yet).
    Stale = 1,
    /// The member's failure was confirmed by SWIM.
    Dead = 2,
}

impl HealthStatus {
    /// Stable lowercase name (JSON, `moara-cli top`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Stale => "stale",
            HealthStatus::Dead => "dead",
        }
    }
}

impl Wire for HealthStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u8).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => HealthStatus::Ok,
            1 => HealthStatus::Stale,
            2 => HealthStatus::Dead,
            _ => return Err(WireError::Invalid("health status tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// One row of the merged cluster-health table: a member, how fresh our
/// knowledge of it is, and its last digest (if any ever arrived).
#[derive(Clone, Debug, PartialEq)]
pub struct PeerHealthRow {
    /// The member.
    pub node: u32,
    /// Digest freshness / liveness.
    pub status: HealthStatus,
    /// Milliseconds since its digest arrived; `u64::MAX` when no digest
    /// was ever received.
    pub age_ms: u64,
    /// The last digest received (the serving daemon's own row carries a
    /// fresh local sample).
    pub summary: Option<HealthSummary>,
}

impl Wire for PeerHealthRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.status.encode(out);
        self.age_ms.encode(out);
        self.summary.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PeerHealthRow {
            node: Wire::decode(buf)?,
            status: Wire::decode(buf)?,
            age_ms: Wire::decode(buf)?,
            summary: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + 1 + 8 + self.summary.encoded_len()
    }
}

/// One firing alert, as carried on the control plane (`moara-cli top`)
/// and rendered at `GET /v1/alerts`.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertWire {
    /// The rule that fired.
    pub rule: String,
    /// The metric key the rule watches.
    pub metric: String,
    /// The observed value that crossed the threshold.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Seconds the alert has been firing.
    pub since_s: u64,
}

impl Wire for AlertWire {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rule.encode(out);
        self.metric.encode(out);
        self.value.encode(out);
        self.threshold.encode(out);
        self.since_s.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(AlertWire {
            rule: Wire::decode(buf)?,
            metric: Wire::decode(buf)?,
            value: Wire::decode(buf)?,
            threshold: Wire::decode(buf)?,
            since_s: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.rule.encoded_len() + self.metric.encoded_len() + 8 + 8 + 8
    }
}

/// How long after its last digest a live member is reported `ok` before
/// flipping to `stale`, as a multiple of the SWIM probe period (digests
/// ride probe traffic, so freshness is naturally period-scaled).
pub fn stale_after(swim_period: Duration) -> Duration {
    (swim_period * 10).max(Duration::from_secs(2))
}

/// Resident set size in bytes, from `/proc/self/statm` (0 where
/// unreadable — non-Linux hosts, locked-down containers).
pub fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    statm
        .split_whitespace()
        .nth(1)
        .and_then(|pages| pages.parse::<u64>().ok())
        .map_or(0, |pages| pages * 4096)
}

/// Open file descriptors, from `/proc/self/fd` (0 where unreadable).
pub fn open_fds() -> u32 {
    std::fs::read_dir("/proc/self/fd").map_or(0, |dir| dir.count() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HealthSummary {
        HealthSummary {
            node: 3,
            incarnation: 2,
            uptime_s: 61,
            tick_p99_us: 800,
            stalled_ticks: 1,
            queued_jobs: 4,
            open_conns: 120,
            open_streams: 7,
            watches: 9,
            sub_entries: 31,
            cache_hit_bp: 9_250,
            rss_bytes: 48 * 1024 * 1024,
            open_fds: 64,
            queries_inflight: 2,
            alerts_firing: 1,
        }
    }

    #[test]
    fn digest_roundtrips_and_stays_under_the_cap() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.encoded_len());
        assert!(bytes.len() <= HEALTH_DIGEST_MAX_BYTES, "{}", bytes.len());
        assert_eq!(HealthSummary::from_bytes(&bytes).unwrap(), s);
        for cut in 0..bytes.len() {
            assert!(HealthSummary::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn digest_decode_skips_unknown_newer_fields() {
        let s = sample();
        // A "newer" sampler appended 6 extra payload bytes: bump the
        // payload length and splice them in.
        let mut bytes = s.to_bytes();
        let old_len = u16::from_le_bytes([bytes[1], bytes[2]]);
        let new_len = (old_len + 6).to_le_bytes();
        bytes[1] = new_len[0];
        bytes[2] = new_len[1];
        bytes.extend_from_slice(&[0xAA; 6]);
        assert_eq!(HealthSummary::from_bytes(&bytes).unwrap(), s);
        // Version 0 is rejected outright.
        bytes[0] = 0;
        assert_eq!(
            HealthSummary::from_bytes(&bytes),
            Err(WireError::Invalid("health digest version"))
        );
    }

    #[test]
    fn cache_ratio_sentinel_means_unknown() {
        let mut s = sample();
        assert_eq!(s.cache_hit_pct(), Some(92.5));
        s.cache_hit_bp = CACHE_RATIO_NONE;
        assert_eq!(s.cache_hit_pct(), None);
    }

    #[test]
    fn health_rows_and_alerts_roundtrip() {
        let rows = vec![
            PeerHealthRow {
                node: 0,
                status: HealthStatus::Ok,
                age_ms: 0,
                summary: Some(sample()),
            },
            PeerHealthRow {
                node: 1,
                status: HealthStatus::Stale,
                age_ms: 12_500,
                summary: Some(sample()),
            },
            PeerHealthRow {
                node: 2,
                status: HealthStatus::Dead,
                age_ms: u64::MAX,
                summary: None,
            },
        ];
        for r in &rows {
            assert_eq!(PeerHealthRow::from_bytes(&r.to_bytes()).unwrap(), *r);
        }
        let a = AlertWire {
            rule: "dead_members".into(),
            metric: "dead_members".into(),
            value: 1.0,
            threshold: 0.0,
            since_s: 3,
        };
        assert_eq!(AlertWire::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn proc_samplers_read_this_process() {
        // This test process certainly holds open fds and resident pages.
        assert!(open_fds() > 0);
        assert!(rss_bytes() > 0);
    }

    #[test]
    fn staleness_scales_with_probe_period() {
        assert_eq!(
            stale_after(Duration::from_millis(100)),
            Duration::from_secs(2)
        );
        assert_eq!(stale_after(Duration::from_secs(1)), Duration::from_secs(10));
    }
}

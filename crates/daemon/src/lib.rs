//! # moara-daemon
//!
//! `moarad` hosts **one `MoaraNode` per process** on the TCP transport and
//! stitches processes into a cluster, the daemon/client split used by
//! production node software:
//!
//! * **peer plane** — protocol traffic ([`DaemonMsg::Moara`]) and
//!   membership broadcasts ([`DaemonMsg::Membership`]) travel between
//!   daemons over `moara-transport` TCP frames, on an auto-bound listener
//!   whose address is exchanged through membership;
//! * **control plane** — a user-facing listener (the `--listen` address)
//!   accepts framed [`CtrlRequest`]s from `moara-cli` (queries, attribute
//!   updates, status) and from joining daemons (`Join`).
//!
//! Cluster formation: the first daemon (no `--join`) is the *seed* and
//! owns membership — it assigns dense `NodeId`s and random ring ids, and
//! broadcasts the full member list on every change. Every daemon rebuilds
//! its overlay [`Directory`] from the same list, so all processes derive
//! identical tree topologies, exactly like the in-process cluster.
//!
//! The seed is a bootstrap convenience, not a data-plane coordinator:
//! queries, aggregation, and pruning run peer-to-peer over the DHT trees.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moara_attributes::Value;
use moara_core::{Directory, MoaraConfig, MoaraMsg, MoaraNode};
use moara_dht::Id;
use moara_query::parse_query;
use moara_simnet::{Message, NodeId, SimDuration, SimTime, TimerId, TimerTag};
use moara_transport::{NetCtx, NetProtocol, TcpConfig, TcpTransport, Transport};
use moara_wire::{read_frame, write_msg, Wire, WireError};

/// One cluster member, as carried in membership lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    /// Dense transport-level id (assigned by the seed, in join order).
    pub node: u32,
    /// Ring id on the DHT (assigned by the seed, random).
    pub ring_id: u64,
    /// Peer-plane listen address.
    pub addr: String,
}

impl Wire for Member {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.ring_id.encode(out);
        self.addr.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Member {
            node: Wire::decode(buf)?,
            ring_id: Wire::decode(buf)?,
            addr: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + 8 + self.addr.encoded_len()
    }
}

/// What daemons exchange on the peer plane.
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonMsg {
    /// An embedded Moara protocol message.
    Moara(MoaraMsg),
    /// Authoritative full member list (seed-broadcast on every change).
    Membership(Vec<Member>),
}

impl Wire for DaemonMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DaemonMsg::Moara(m) => {
                out.push(0);
                m.encode(out);
            }
            DaemonMsg::Membership(ms) => {
                out.push(1);
                ms.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => DaemonMsg::Moara(Wire::decode(buf)?),
            1 => DaemonMsg::Membership(Wire::decode(buf)?),
            _ => return Err(WireError::Invalid("DaemonMsg tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            DaemonMsg::Moara(m) => m.encoded_len(),
            DaemonMsg::Membership(ms) => ms.encoded_len(),
        }
    }
}

impl Message for DaemonMsg {
    fn size_bytes(&self) -> usize {
        moara_wire::peer_framed_len(self)
    }

    fn query_tag(&self) -> Option<u64> {
        match self {
            DaemonMsg::Moara(m) => m.query_tag(),
            DaemonMsg::Membership(_) => None,
        }
    }
}

/// A control-plane request (from `moara-cli` or a joining daemon).
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlRequest {
    /// A new daemon asks the seed for an id and the member list.
    Join {
        /// The joiner's peer-plane listen address.
        addr: String,
    },
    /// Run a query from this daemon's front-end and return the aggregate.
    Query {
        /// Query text, either syntax of `moara_query::parse_query`.
        text: String,
    },
    /// Set one local attribute (group churn from the outside).
    SetAttr {
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// Report node id and membership view.
    Status,
}

/// A control-plane reply.
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlReply {
    /// Join granted: your id, and the full member list (including you).
    Joined {
        /// The assigned transport-level id.
        node: u32,
        /// All members, joiner included.
        members: Vec<Member>,
    },
    /// Query finished.
    Answer {
        /// The aggregate, rendered (`AggResult` display form).
        result: String,
        /// False if some branch timed out or failed.
        complete: bool,
    },
    /// Generic success.
    Ok,
    /// Status report.
    Status {
        /// This daemon's node id.
        node: u32,
        /// Members this daemon currently knows.
        members: u32,
    },
    /// Request failed.
    Error(String),
}

impl Wire for CtrlRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtrlRequest::Join { addr } => {
                out.push(0);
                addr.encode(out);
            }
            CtrlRequest::Query { text } => {
                out.push(1);
                text.encode(out);
            }
            CtrlRequest::SetAttr { attr, value } => {
                out.push(2);
                attr.encode(out);
                value.encode(out);
            }
            CtrlRequest::Status => out.push(3),
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => CtrlRequest::Join {
                addr: Wire::decode(buf)?,
            },
            1 => CtrlRequest::Query {
                text: Wire::decode(buf)?,
            },
            2 => CtrlRequest::SetAttr {
                attr: Wire::decode(buf)?,
                value: Wire::decode(buf)?,
            },
            3 => CtrlRequest::Status,
            _ => return Err(WireError::Invalid("CtrlRequest tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            CtrlRequest::Join { addr } => addr.encoded_len(),
            CtrlRequest::Query { text } => text.encoded_len(),
            CtrlRequest::SetAttr { attr, value } => attr.encoded_len() + value.encoded_len(),
            CtrlRequest::Status => 0,
        }
    }
}

impl Wire for CtrlReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtrlReply::Joined { node, members } => {
                out.push(0);
                node.encode(out);
                members.encode(out);
            }
            CtrlReply::Answer { result, complete } => {
                out.push(1);
                result.encode(out);
                complete.encode(out);
            }
            CtrlReply::Ok => out.push(2),
            CtrlReply::Status { node, members } => {
                out.push(3);
                node.encode(out);
                members.encode(out);
            }
            CtrlReply::Error(e) => {
                out.push(4);
                e.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => CtrlReply::Joined {
                node: Wire::decode(buf)?,
                members: Wire::decode(buf)?,
            },
            1 => CtrlReply::Answer {
                result: Wire::decode(buf)?,
                complete: Wire::decode(buf)?,
            },
            2 => CtrlReply::Ok,
            3 => CtrlReply::Status {
                node: Wire::decode(buf)?,
                members: Wire::decode(buf)?,
            },
            4 => CtrlReply::Error(Wire::decode(buf)?),
            _ => return Err(WireError::Invalid("CtrlReply tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            CtrlReply::Joined { members, .. } => 4 + members.encoded_len(),
            CtrlReply::Answer { result, .. } => result.encoded_len() + 1,
            CtrlReply::Ok => 0,
            CtrlReply::Status { .. } => 8,
            CtrlReply::Error(e) => e.encoded_len(),
        }
    }
}

/// Adapter: a `NetCtx<DaemonMsg>` seen by the wrapped `MoaraNode` as a
/// `NetCtx<MoaraMsg>` (outgoing messages gain the `DaemonMsg::Moara`
/// envelope; timers and the clock pass straight through).
struct MoaraCtx<'a> {
    inner: &'a mut dyn NetCtx<DaemonMsg>,
}

impl NetCtx<MoaraMsg> for MoaraCtx<'_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn me(&self) -> NodeId {
        self.inner.me()
    }
    fn send(&mut self, to: NodeId, msg: MoaraMsg) {
        self.inner.send(to, DaemonMsg::Moara(msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.inner.set_timer(delay, tag)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        self.inner.cancel_timer(id);
    }
    fn count(&mut self, name: &'static str) {
        self.inner.count(name);
    }
}

fn moara_ctx(inner: &mut dyn NetCtx<DaemonMsg>) -> MoaraCtx<'_> {
    MoaraCtx { inner }
}

/// The per-process protocol node: a `MoaraNode` plus membership intake.
pub struct DaemonNode {
    /// The wrapped protocol engine.
    pub moara: MoaraNode,
    /// Last membership broadcast received, not yet applied (the daemon
    /// loop applies it — rebuilding the directory needs daemon state).
    pub pending_membership: Option<Vec<Member>>,
}

impl NetProtocol for DaemonNode {
    type Msg = DaemonMsg;

    fn on_message(&mut self, ctx: &mut dyn NetCtx<DaemonMsg>, from: NodeId, msg: DaemonMsg) {
        match msg {
            DaemonMsg::Moara(m) => {
                let mut mctx = moara_ctx(ctx);
                self.moara.on_message(&mut mctx, from, m);
            }
            // Membership is seed-owned; broadcasts claiming another
            // sender are ignored. This is hygiene against confused
            // peers, not security: the sender id is self-declared (see
            // the trust-model note in moara-transport), so a hostile
            // process that can reach the listener can spoof it.
            DaemonMsg::Membership(ms) => {
                if from == NodeId(0) {
                    self.pending_membership = Some(ms);
                } else {
                    ctx.count("membership_from_non_seed");
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<DaemonMsg>, tag: TimerTag) {
        let mut mctx = moara_ctx(ctx);
        self.moara.on_timer(&mut mctx, tag);
    }
}

/// Startup options for a daemon (mirrors `moarad`'s flags).
#[derive(Clone, Debug)]
pub struct DaemonOpts {
    /// Control-plane listen address (`--listen`).
    pub listen: SocketAddr,
    /// Seed daemon's control address to join (`--join`); `None` makes
    /// this daemon the seed.
    pub join: Option<String>,
    /// Initial local attributes (`--attrs k=v,...`).
    pub attrs: Vec<(String, Value)>,
    /// Ring-id randomness (`--seed`, seed daemon only).
    pub seed: u64,
    /// Engine configuration.
    pub cfg: MoaraConfig,
}

/// Parses `k=v,...` attribute lists (`true`/`false` → Bool, integers →
/// Int, floats → Float, anything else → Str).
///
/// # Errors
///
/// Returns a description of the malformed entry.
pub fn parse_attrs(spec: &str) -> Result<Vec<(String, Value)>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("attribute `{part}` is not k=v"))?;
        if k.is_empty() {
            return Err(format!("attribute `{part}` has an empty name"));
        }
        out.push((k.to_owned(), parse_value(v)));
    }
    Ok(out)
}

/// Value literal parsing shared by `--attrs` and `moara-cli set`.
pub fn parse_value(v: &str) -> Value {
    match v {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => {
            if let Ok(i) = v.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = v.parse::<f64>() {
                Value::Float(f)
            } else {
                Value::Str(v.to_owned())
            }
        }
    }
}

/// One in-flight control request: the parsed request plus the channel the
/// control thread blocks on for the reply.
struct CtrlJob {
    req: CtrlRequest,
    reply: Sender<CtrlReply>,
}

/// A running daemon: one Moara node, its transport, and both planes.
pub struct Daemon {
    transport: TcpTransport<DaemonNode>,
    dir: Directory,
    me: NodeId,
    members: Vec<Member>,
    cfg: MoaraConfig,
    rng: StdRng,
    is_seed: bool,
    ctrl_addr: SocketAddr,
    ctrl_rx: Receiver<CtrlJob>,
    /// Queries whose outcome we are waiting on: front id → reply channel.
    pending_queries: HashMap<u64, Sender<CtrlReply>>,
    /// Sends that could not be delivered since the last drain (kept
    /// bounded by draining every step; the count feeds future failure
    /// detection).
    undeliverable_total: u64,
    /// Seed only: when membership was last re-broadcast. A periodic
    /// re-broadcast heals members that missed a join announcement (the
    /// peer plane is fire-and-forget).
    last_announce: Instant,
}

/// How often the seed re-broadcasts the member list.
const ANNOUNCE_EVERY: Duration = Duration::from_secs(2);

impl Daemon {
    /// Boots a daemon: binds both planes, and either seeds a fresh
    /// cluster or joins an existing one through `opts.join`.
    ///
    /// # Errors
    ///
    /// Socket and join-protocol failures.
    pub fn start(opts: DaemonOpts) -> Result<Daemon, String> {
        let mut transport: TcpTransport<DaemonNode> =
            TcpTransport::new(TcpConfig::seeded(opts.seed));
        let reserved = transport
            .reserve_listener()
            .map_err(|e| format!("bind peer listener: {e}"))?;
        let peer_addr = reserved.addr();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        let (me, members) = match &opts.join {
            None => {
                // We are the seed: member 0 of a one-node cluster.
                let members = vec![Member {
                    node: 0,
                    ring_id: rng.gen(),
                    addr: peer_addr.to_string(),
                }];
                (NodeId(0), members)
            }
            Some(seed_ctrl) => {
                let reply = ctrl_roundtrip(
                    seed_ctrl,
                    &CtrlRequest::Join {
                        addr: peer_addr.to_string(),
                    },
                    Duration::from_secs(10),
                )
                .map_err(|e| format!("join via {seed_ctrl}: {e}"))?;
                match reply {
                    CtrlReply::Joined { node, members } => (NodeId(node), members),
                    CtrlReply::Error(e) => return Err(format!("seed refused join: {e}")),
                    other => return Err(format!("unexpected join reply {other:?}")),
                }
            }
        };

        let dir = Directory::from_members(
            &members
                .iter()
                .map(|m| (NodeId(m.node), Id(m.ring_id)))
                .collect::<Vec<_>>(),
            opts.cfg.bits_per_digit,
        );
        let mut moara = MoaraNode::new(dir.clone(), opts.cfg.clone());
        for (k, v) in &opts.attrs {
            moara.store.set(k.as_str(), v.clone());
        }
        let node = DaemonNode {
            moara,
            pending_membership: None,
        };
        transport.add_node_with_listener(me, node, reserved);
        for m in &members {
            if m.node != me.0 {
                let addr = resolve(&m.addr).map_err(|e| format!("peer {}: {e}", m.addr))?;
                transport.register_peer(NodeId(m.node), addr);
            }
        }

        // Control plane: accept loop on its own thread, requests funnel
        // into the daemon loop through a channel.
        let ctrl_listener = TcpListener::bind(opts.listen)
            .map_err(|e| format!("bind control listener {}: {e}", opts.listen))?;
        let ctrl_addr = ctrl_listener
            .local_addr()
            .map_err(|e| format!("control addr: {e}"))?;
        let (ctrl_tx, ctrl_rx) = std::sync::mpsc::channel();
        spawn_ctrl_accept_loop(ctrl_listener, ctrl_tx);

        let mut daemon = Daemon {
            transport,
            dir,
            me,
            members: members.clone(),
            cfg: opts.cfg,
            rng,
            is_seed: opts.join.is_none(),
            ctrl_addr,
            ctrl_rx,
            pending_queries: HashMap::new(),
            undeliverable_total: 0,
            last_announce: Instant::now(),
        };
        // A joiner's presence is already in `members`; make the overlay
        // aware locally (the seed broadcasts to everyone else on join).
        daemon.reconcile_local();
        Ok(daemon)
    }

    /// The control-plane address (useful when `--listen` used port 0).
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// This daemon's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Members currently known.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The peer-plane listen address.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.transport.local_addr(self.me)
    }

    /// Runs one event-loop iteration: pumps the transport, applies
    /// membership updates, serves control requests, finishes queries.
    /// Returns true if anything happened.
    pub fn step(&mut self, max_wait: Duration) -> bool {
        let mut did = self.transport.pump(max_wait);
        did |= self.apply_pending_membership();
        did |= self.serve_ctrl();
        did |= self.finish_queries();
        // Keep the transport's undeliverable log bounded (it grows on
        // every send to a dead peer, and this loop runs forever).
        self.undeliverable_total += self.transport.take_undeliverable().len() as u64;
        if self.is_seed && self.members.len() > 1 && self.last_announce.elapsed() >= ANNOUNCE_EVERY
        {
            self.broadcast_membership();
        }
        did
    }

    /// Total sends dropped because their peer was unreachable or dead.
    pub fn undeliverable_total(&self) -> u64 {
        self.undeliverable_total
    }

    /// Seed only: push the current member list to every other member.
    fn broadcast_membership(&mut self) {
        let me = self.me;
        let members = self.members.clone();
        let broadcast = DaemonMsg::Membership(members.clone());
        self.transport.with_node(me, |_n, ctx| {
            for m in &members {
                if m.node != me.0 {
                    ctx.send(NodeId(m.node), broadcast.clone());
                }
            }
        });
        self.last_announce = Instant::now();
    }

    /// Runs the daemon loop forever (the `moarad` main).
    pub fn run_forever(&mut self) -> ! {
        loop {
            self.step(Duration::from_millis(5));
        }
    }

    fn reconcile_local(&mut self) {
        self.transport.with_node(self.me, |n, ctx| {
            let mut mctx = moara_ctx(ctx);
            n.moara.reconcile(&mut mctx);
        });
    }

    fn apply_pending_membership(&mut self) -> bool {
        let Some(members) = self.transport.node_mut(self.me).pending_membership.take() else {
            return false;
        };
        self.install_members(members);
        true
    }

    /// A membership list is applicable only if it is dense and ordered
    /// (`Directory::from_members` asserts exactly that — an assert that
    /// must never be reachable from a network frame) and still contains
    /// this daemon.
    fn membership_is_sane(&self, members: &[Member]) -> bool {
        !members.is_empty()
            && members
                .iter()
                .enumerate()
                .all(|(i, m)| m.node as usize == i)
            && members.iter().any(|m| m.node == self.me.0)
    }

    fn install_members(&mut self, members: Vec<Member>) {
        if !self.membership_is_sane(&members) {
            // Malformed or stale broadcast: drop it rather than panic or
            // corrupt the overlay view.
            return;
        }
        let pairs: Vec<(NodeId, Id)> = members
            .iter()
            .map(|m| (NodeId(m.node), Id(m.ring_id)))
            .collect();
        self.dir.reset_members(&pairs, self.cfg.bits_per_digit);
        for m in &members {
            if m.node != self.me.0 {
                if let Ok(addr) = resolve(&m.addr) {
                    self.transport.register_peer(NodeId(m.node), addr);
                }
            }
        }
        self.members = members;
        self.reconcile_local();
    }

    /// Seed-only: admit a joiner, reply with the member list, broadcast.
    fn handle_join(&mut self, addr: String) -> CtrlReply {
        if !self.is_seed {
            return CtrlReply::Error("only the seed daemon admits joins".into());
        }
        if resolve(&addr).is_err() {
            return CtrlReply::Error(format!("unresolvable peer address {addr}"));
        }
        let node = self.members.iter().map(|m| m.node + 1).max().unwrap_or(0);
        let mut ring_id = self.rng.gen();
        while self.members.iter().any(|m| m.ring_id == ring_id) {
            ring_id = self.rng.gen();
        }
        let mut members = self.members.clone();
        members.push(Member {
            node,
            ring_id,
            addr,
        });
        self.install_members(members.clone());
        // Everyone learns through the peer plane (the joiner additionally
        // gets the list in its Joined reply, and the periodic re-announce
        // heals anyone who misses this broadcast).
        self.broadcast_membership();
        CtrlReply::Joined { node, members }
    }

    fn serve_ctrl(&mut self) -> bool {
        let mut did = false;
        while let Ok(job) = self.ctrl_rx.try_recv() {
            did = true;
            match job.req {
                CtrlRequest::Join { addr } => {
                    let reply = self.handle_join(addr);
                    let _ = job.reply.send(reply);
                }
                CtrlRequest::Query { text } => match parse_query(&text) {
                    Ok(query) => {
                        let me = self.me;
                        let fid = self.transport.with_node(me, |n, ctx| {
                            let mut mctx = moara_ctx(ctx);
                            n.moara.submit(&mut mctx, query)
                        });
                        self.pending_queries.insert(fid, job.reply);
                    }
                    Err(e) => {
                        let _ = job
                            .reply
                            .send(CtrlReply::Error(format!("parse error: {e}")));
                    }
                },
                CtrlRequest::SetAttr { attr, value } => {
                    self.transport.with_node(self.me, |n, ctx| {
                        let mut mctx = moara_ctx(ctx);
                        n.moara.store.set(attr.as_str(), value);
                        n.moara.on_local_change(&mut mctx, &attr);
                    });
                    let _ = job.reply.send(CtrlReply::Ok);
                }
                CtrlRequest::Status => {
                    let _ = job.reply.send(CtrlReply::Status {
                        node: self.me.0,
                        members: self.members.len() as u32,
                    });
                }
            }
        }
        did
    }

    fn finish_queries(&mut self) -> bool {
        if self.pending_queries.is_empty() {
            return false;
        }
        let me = self.me;
        let done: Vec<u64> = self
            .pending_queries
            .keys()
            .copied()
            .filter(|fid| self.transport.node(me).moara.outcome(*fid).is_some())
            .collect();
        for fid in &done {
            let outcome = self
                .transport
                .node_mut(me)
                .moara
                .take_outcome(*fid)
                .expect("checked above");
            if let Some(reply) = self.pending_queries.remove(fid) {
                let _ = reply.send(CtrlReply::Answer {
                    result: outcome.result.to_string(),
                    complete: outcome.complete,
                });
            }
        }
        !done.is_empty()
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| e.to_string())?
        .next()
        .ok_or_else(|| "no address".to_owned())
}

fn spawn_ctrl_accept_loop(listener: TcpListener, tx: Sender<CtrlJob>) {
    std::thread::Builder::new()
        .name("moarad-ctrl-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let tx = tx.clone();
                let _ = std::thread::Builder::new()
                    .name("moarad-ctrl-conn".into())
                    .spawn(move || ctrl_conn_loop(stream, tx));
            }
        })
        .expect("spawn ctrl accept thread");
}

/// Serves one control connection: framed request in, framed reply out,
/// repeated until the client hangs up.
fn ctrl_conn_loop(mut stream: TcpStream, tx: Sender<CtrlJob>) {
    let _ = stream.set_nodelay(true);
    loop {
        let Ok(Some(payload)) = read_frame(&mut stream) else {
            return;
        };
        let Ok(req) = CtrlRequest::from_bytes(&payload) else {
            let _ = write_msg(&mut stream, &CtrlReply::Error("bad request frame".into()));
            return;
        };
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        if tx
            .send(CtrlJob {
                req,
                reply: reply_tx,
            })
            .is_err()
        {
            return; // daemon shut down
        }
        // Queries can legitimately take a while (front timeout bounds
        // them); everything else answers within one loop iteration.
        let reply = reply_rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| CtrlReply::Error("daemon did not answer in time".into()));
        if write_msg(&mut stream, &reply).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

/// Client side: one framed request/reply round trip over a fresh
/// connection (what `moara-cli` and joining daemons use).
///
/// # Errors
///
/// Connection, framing, and timeout failures, as strings.
pub fn ctrl_roundtrip(
    addr: &str,
    req: &CtrlRequest,
    timeout: Duration,
) -> Result<CtrlReply, String> {
    let sock_addr = resolve(addr)?;
    let deadline = Instant::now() + timeout;
    // The target daemon may still be booting (the smoke test starts
    // processes concurrently): retry connects until the deadline.
    let mut stream = loop {
        match TcpStream::connect_timeout(&sock_addr, Duration::from_millis(500)) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    write_msg(&mut stream, req).map_err(|e| format!("send: {e}"))?;
    let payload = read_frame(&mut stream)
        .map_err(|e| format!("recv: {e}"))?
        .ok_or("connection closed before reply")?;
    CtrlReply::from_bytes(&payload).map_err(|e| format!("decode reply: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_parse_into_typed_values() {
        let attrs = parse_attrs("ServiceX=true,CPU-Util=42,Load=0.5,OS=Linux").unwrap();
        assert_eq!(
            attrs,
            vec![
                ("ServiceX".into(), Value::Bool(true)),
                ("CPU-Util".into(), Value::Int(42)),
                ("Load".into(), Value::Float(0.5)),
                ("OS".into(), Value::str("Linux")),
            ]
        );
        assert!(parse_attrs("nope").is_err());
        assert!(parse_attrs("=v").is_err());
        assert_eq!(parse_attrs("").unwrap(), vec![]);
    }

    #[test]
    fn daemon_and_ctrl_messages_roundtrip() {
        let member = Member {
            node: 3,
            ring_id: 0xdead_beef,
            addr: "127.0.0.1:7777".into(),
        };
        let msgs = vec![
            DaemonMsg::Membership(vec![member.clone(), member.clone()]),
            DaemonMsg::Moara(MoaraMsg::SizeReply {
                qid: moara_core::QueryId {
                    origin: NodeId(1),
                    n: 4,
                },
                pred_key: "A=1".into(),
                cost: 12,
            }),
        ];
        for m in msgs {
            assert_eq!(DaemonMsg::from_bytes(&m.to_bytes()).unwrap(), m);
            assert_eq!(
                m.size_bytes(),
                m.encoded_len() + moara_wire::FRAME_HDR + moara_wire::SENDER_HDR
            );
        }
        let reqs = vec![
            CtrlRequest::Join {
                addr: "127.0.0.1:1".into(),
            },
            CtrlRequest::Query {
                text: "SELECT count(*)".into(),
            },
            CtrlRequest::SetAttr {
                attr: "A".into(),
                value: Value::Int(1),
            },
            CtrlRequest::Status,
        ];
        for r in reqs {
            assert_eq!(CtrlRequest::from_bytes(&r.to_bytes()).unwrap(), r);
        }
        let replies = vec![
            CtrlReply::Joined {
                node: 1,
                members: vec![member],
            },
            CtrlReply::Answer {
                result: "4".into(),
                complete: true,
            },
            CtrlReply::Ok,
            CtrlReply::Status {
                node: 0,
                members: 3,
            },
            CtrlReply::Error("nope".into()),
        ];
        for r in replies {
            assert_eq!(CtrlReply::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    /// A full 3-daemon cluster in one test process (each daemon on its own
    /// thread, like three `moarad` processes on one host) answering the
    /// quickstart query through the control plane.
    #[test]
    fn three_daemons_answer_the_quickstart_query() {
        let free_port = || {
            TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
        };
        let seed_ctrl = free_port();

        let spawn_daemon = |listen: SocketAddr, join: Option<String>, attrs: &str| {
            let attrs = parse_attrs(attrs).unwrap();
            std::thread::spawn(move || {
                let mut d = Daemon::start(DaemonOpts {
                    listen,
                    join,
                    attrs,
                    seed: 42,
                    cfg: MoaraConfig::default(),
                })
                .expect("daemon boots");
                loop {
                    d.step(Duration::from_millis(2));
                }
            })
        };

        let _a = spawn_daemon(seed_ctrl, None, "ServiceX=true");
        let b_ctrl = free_port();
        let c_ctrl = free_port();
        let seed_str = seed_ctrl.to_string();
        let _b = spawn_daemon(b_ctrl, Some(seed_str.clone()), "ServiceX=false");
        let _c = spawn_daemon(c_ctrl, Some(seed_str), "ServiceX=true");

        // Wait until every daemon sees all three members.
        let deadline = Instant::now() + Duration::from_secs(20);
        for ctrl in [seed_ctrl, b_ctrl, c_ctrl] {
            loop {
                assert!(Instant::now() < deadline, "cluster never converged");
                match ctrl_roundtrip(
                    &ctrl.to_string(),
                    &CtrlRequest::Status,
                    Duration::from_secs(5),
                ) {
                    Ok(CtrlReply::Status { members: 3, .. }) => break,
                    _ => std::thread::sleep(Duration::from_millis(30)),
                }
            }
        }

        // The acceptance query, fronted by the non-member daemon B.
        let reply = ctrl_roundtrip(
            &b_ctrl.to_string(),
            &CtrlRequest::Query {
                text: "SELECT count(*) WHERE ServiceX = true".into(),
            },
            Duration::from_secs(30),
        )
        .unwrap();
        match reply {
            CtrlReply::Answer { result, complete } => {
                assert!(complete, "query must complete");
                assert_eq!(result, "2");
            }
            other => panic!("unexpected reply {other:?}"),
        }

        // Group churn through the control plane: B joins the group.
        let reply = ctrl_roundtrip(
            &b_ctrl.to_string(),
            &CtrlRequest::SetAttr {
                attr: "ServiceX".into(),
                value: Value::Bool(true),
            },
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(reply, CtrlReply::Ok);
        let reply = ctrl_roundtrip(
            &c_ctrl.to_string(),
            &CtrlRequest::Query {
                text: "SELECT count(*) WHERE ServiceX = true".into(),
            },
            Duration::from_secs(30),
        )
        .unwrap();
        match reply {
            CtrlReply::Answer { result, .. } => assert_eq!(result, "3"),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}

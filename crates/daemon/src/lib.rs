//! # moara-daemon
//!
//! `moarad` hosts **one `MoaraNode` per process** on the TCP transport and
//! stitches processes into a cluster, the daemon/client split used by
//! production node software:
//!
//! * **peer plane** — protocol traffic ([`DaemonMsg::Moara`]) and
//!   membership broadcasts ([`DaemonMsg::Membership`]) travel between
//!   daemons over `moara-transport` TCP frames, on an auto-bound listener
//!   whose address is exchanged through membership;
//! * **control plane** — a user-facing listener (the `--listen` address)
//!   accepts framed [`CtrlRequest`]s from `moara-cli` (queries, attribute
//!   updates, status) and from joining daemons (`Join`).
//!
//! Cluster formation: the first daemon (no `--join`) is the *seed* and
//! owns membership *assignment* — it hands out dense `NodeId`s and random
//! ring ids, and broadcasts the full member list (with liveness and
//! incarnation numbers) on every change plus periodically as
//! anti-entropy. Every daemon rebuilds its overlay [`Directory`] from the
//! same list, so all processes derive identical tree topologies, exactly
//! like the in-process cluster.
//!
//! Membership *liveness*, by contrast, is fully decentralized: every
//! daemon embeds a SWIM-style failure detector (`moara-membership`) next
//! to its protocol node. Detectors ping each other over the peer plane
//! ([`DaemonMsg::Swim`]), escalate unanswered probes through random
//! relays, gossip suspicions and confirmations with incarnation numbers,
//! and hand confirmed failures to the daemon — which removes the peer
//! from its [`Directory`] (DHT ring repair), tells its `MoaraNode`
//! (`on_peer_failed` + `reconcile`), and marks the member dead in its
//! view. A crashed peer therefore disappears from query answers and from
//! `moara-cli status` without any omniscient help. Crash-recovery is the
//! reverse: a restarted daemon re-joins through the seed (`--rejoin-as`),
//! is re-announced under a *higher incarnation*, and re-enters its
//! groups' trees. See `docs/membership.md`.
//!
//! The seed is a bootstrap convenience, not a data-plane coordinator:
//! queries, aggregation, pruning, and failure detection all run
//! peer-to-peer, so a cluster whose seed crashed keeps serving traffic.
//! The seed is, however, a bootstrap *single point*: while it is down no
//! new member can join, and restarting `moarad` without `--join` forks a
//! fresh one-member cluster rather than resuming the old one (the member
//! list is not persisted). Seed persistence/handover is future work.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moara_attributes::Value;
use moara_core::{DeliveryPolicy, Directory, MoaraConfig, MoaraMsg, MoaraNode, SubUpdate};
use moara_dht::Id;
use moara_gateway::{
    CacheConfig, GatewayHandle, GatewayOpts, GwJob, GwReply, GwRequest, MetricsRegistry,
    QueryCache, ReplySink, WatchPolicy,
};
use moara_membership::{SwimConfig, SwimDetector, SwimEvent, SwimMsg};
use moara_query::parse_query;
use moara_simnet::{Message, NodeId, SimDuration, SimTime, TimerId, TimerTag};
use moara_trace::{
    format_trace_id, BucketExemplars, Histogram, Phase, SpanRecord, SpanStore, TraceSummary,
    TRACE_NS_SWIM,
};
use moara_transport::{NetCtx, NetProtocol, TcpConfig, TcpTransport, Transport};
use moara_wire::{read_frame, write_msg, Wire, WireError};

pub mod alerts;
pub mod health;
pub mod recorder;
pub mod sim;
pub use sim::SimSwarm;

use alerts::{AlertEngine, AlertEvent, AlertRule};
use health::{
    AlertWire, HealthStatus, HealthSummary, PeerHealthRow, CACHE_RATIO_NONE,
    HEALTH_DIGEST_MAX_BYTES,
};
use moara_gateway::json::JsonLine;
use recorder::{kind, now_unix_ms, EventWire, Recorder};

/// One cluster member, as carried in membership lists.
///
/// Members are never *removed* from the list (the dense `NodeId` space
/// must stay gap-free so every daemon derives the same overlay); a
/// crashed member is instead marked `alive = false` and pruned from the
/// routing directory. A rejoin revives the entry under a higher
/// incarnation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    /// Dense transport-level id (assigned by the seed, in join order).
    pub node: u32,
    /// Ring id on the DHT (assigned by the seed, random).
    pub ring_id: u64,
    /// Peer-plane listen address (refreshed on rejoin).
    pub addr: String,
    /// The member's incarnation number — bumped by the seed on every
    /// rejoin and by the member itself to refute suspicion, so stale
    /// liveness claims lose deterministically.
    pub incarnation: u64,
    /// False once the member's failure was confirmed.
    pub alive: bool,
    /// Control-plane listen address (refreshed on rejoin). Lets any
    /// daemon scatter-gather cluster state — trace spans above all —
    /// over the control plane. Empty when unknown.
    pub ctrl: String,
}

impl Wire for Member {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.ring_id.encode(out);
        self.addr.encode(out);
        self.incarnation.encode(out);
        self.alive.encode(out);
        self.ctrl.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Member {
            node: Wire::decode(buf)?,
            ring_id: Wire::decode(buf)?,
            addr: Wire::decode(buf)?,
            incarnation: Wire::decode(buf)?,
            alive: Wire::decode(buf)?,
            ctrl: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + 8 + self.addr.encoded_len() + 8 + 1 + self.ctrl.encoded_len()
    }
}

/// What daemons exchange on the peer plane.
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonMsg {
    /// An embedded Moara protocol message.
    Moara(MoaraMsg),
    /// Authoritative full member list (seed-broadcast on change and as
    /// periodic anti-entropy).
    Membership(Vec<Member>),
    /// Failure-detector traffic: pings, indirect probes, acks, each
    /// piggybacking membership gossip (see `moara-membership`).
    Swim(SwimMsg),
    /// Failure-detector traffic carrying the sender's health digest as
    /// a second piggyback — the zero-extra-messages dissemination layer
    /// of the cluster health plane. A separate tag (rather than an
    /// `Option` inside `Swim`) keeps plain SWIM frames byte-identical
    /// to pre-health builds.
    SwimHealth(SwimMsg, HealthSummary),
}

impl Wire for DaemonMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DaemonMsg::Moara(m) => {
                out.push(0);
                m.encode(out);
            }
            DaemonMsg::Membership(ms) => {
                out.push(1);
                ms.encode(out);
            }
            DaemonMsg::Swim(s) => {
                out.push(2);
                s.encode(out);
            }
            DaemonMsg::SwimHealth(s, h) => {
                out.push(3);
                s.encode(out);
                h.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => DaemonMsg::Moara(Wire::decode(buf)?),
            1 => DaemonMsg::Membership(Wire::decode(buf)?),
            2 => DaemonMsg::Swim(Wire::decode(buf)?),
            3 => DaemonMsg::SwimHealth(Wire::decode(buf)?, Wire::decode(buf)?),
            _ => return Err(WireError::Invalid("DaemonMsg tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            DaemonMsg::Moara(m) => m.encoded_len(),
            DaemonMsg::Membership(ms) => ms.encoded_len(),
            DaemonMsg::Swim(s) => s.encoded_len(),
            DaemonMsg::SwimHealth(s, h) => s.encoded_len() + h.encoded_len(),
        }
    }
}

impl Message for DaemonMsg {
    fn size_bytes(&self) -> usize {
        moara_wire::peer_framed_len(self)
    }

    fn query_tag(&self) -> Option<u64> {
        match self {
            DaemonMsg::Moara(m) => m.query_tag(),
            DaemonMsg::Membership(_) | DaemonMsg::Swim(_) | DaemonMsg::SwimHealth(..) => None,
        }
    }
}

/// A control-plane request (from `moara-cli` or a joining daemon).
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlRequest {
    /// A new daemon asks the seed for an id and the member list.
    Join {
        /// The joiner's peer-plane listen address.
        addr: String,
        /// Crash-recovery: the node id this daemon previously held. The
        /// seed revives that member under a higher incarnation (new
        /// address, same ring id) instead of assigning a fresh id.
        prev_node: Option<u32>,
        /// The joiner's control-plane listen address (carried in the
        /// member list so peers can scatter-gather traces).
        ctrl: String,
    },
    /// Run a query from this daemon's front-end and return the aggregate.
    Query {
        /// Query text, either syntax of `moara_query::parse_query`.
        text: String,
    },
    /// Set one local attribute (group churn from the outside).
    SetAttr {
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// Report node id and membership view.
    Status,
    /// Install a standing query and stream its updates back on this
    /// control connection ([`CtrlReply::Update`] frames) until the
    /// client disconnects.
    Watch {
        /// Query text, either syntax of `moara_query::parse_query`.
        text: String,
        /// When updates surface (on-change / periodic / threshold).
        policy: DeliveryPolicy,
        /// Subscription lease in microseconds (the daemon renews it for
        /// as long as the watcher stays connected).
        lease_us: u64,
    },
    /// Return the spans this daemon's local store holds for one trace
    /// (the scatter-gather leaf request; `TraceGet` fans these out).
    TraceFetch {
        /// The trace to read.
        trace_id: u64,
    },
    /// Return the cluster-merged span tree for one trace: the serving
    /// daemon reads its own store and scatter-gathers every other alive
    /// member's over the control plane, reporting unreachable members
    /// instead of hanging.
    TraceGet {
        /// The trace to merge.
        trace_id: u64,
    },
    /// Return summaries of the most recent traces in this daemon's
    /// local store.
    TraceList {
        /// Maximum summaries to return.
        limit: u32,
    },
    /// Return the merged cluster-health table: one row per member from
    /// the gossiped digest store, plus this daemon's firing alerts.
    /// Served entirely from passive local state — never blocks on
    /// peers — so it works during partitions (`moara-cli top`).
    ClusterHealth,
    /// Return this daemon's Prometheus exposition (the metrics
    /// federation leaf request; `GET /v1/cluster/metrics` fans these
    /// out like `TraceGet` fans out `TraceFetch`).
    MetricsFetch,
    /// Return one metric's series from this daemon's flight-recorder
    /// history rings (the history federation leaf request;
    /// `GET /v1/cluster/history` fans these out).
    HistoryFetch {
        /// A health-sample key (`tick_p99_us`, `watches`, ...).
        metric: String,
        /// How far back, in seconds (picks the ring tier).
        range_s: u32,
    },
    /// Return the cluster-merged series for one metric: the serving
    /// daemon reads its own rings and scatter-gathers every other alive
    /// member's, reporting unreachable members instead of hanging.
    ClusterHistory {
        /// A health-sample key.
        metric: String,
        /// How far back, in seconds.
        range_s: u32,
    },
    /// Return the newest entries of this daemon's structured event
    /// journal (`moara-cli events`, `GET /v1/events`).
    EventsFetch {
        /// Only events of this kind (`swim_confirm`, `slow_query`, ...);
        /// `None` returns every kind.
        kind: Option<String>,
        /// Maximum events to return (newest win).
        limit: u32,
    },
}

/// A control-plane reply.
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlReply {
    /// Join granted: your id, and the full member list (including you).
    Joined {
        /// The assigned transport-level id.
        node: u32,
        /// All members, joiner included.
        members: Vec<Member>,
    },
    /// Query finished.
    Answer {
        /// The aggregate, rendered (`AggResult` display form).
        result: String,
        /// False if some branch timed out or failed.
        complete: bool,
    },
    /// Generic success.
    Ok,
    /// Status report.
    Status {
        /// This daemon's node id.
        node: u32,
        /// Members this daemon currently knows (alive or dead).
        members: u32,
        /// How many of them are currently believed alive.
        alive: u32,
        /// Node ids of members whose failure was confirmed (kept in the
        /// view for identity continuity, pruned from the overlay).
        dead: Vec<u32>,
        /// Standing watches fronted by this daemon (control-plane
        /// `watch` streams plus gateway SSE streams).
        watches: u32,
        /// Standing-subscription entries hosted on this node's trees
        /// (its own and other front-ends'; drains to zero after
        /// cancellation or lease GC — the leak detector for tests).
        sub_entries: u32,
        /// A compact metrics snapshot (name → value), the control-plane
        /// twin of the key `/metrics` families for `moara-cli status
        /// --json`.
        metrics: Vec<(String, f64)>,
        /// Latency-bucket trace exemplars (key → trace id, e.g.
        /// `phase/fold/le/100000` → `0x...`): the most recent sampled
        /// trace that landed in each slow bucket, linking a p99 spike
        /// straight to a concrete waterfall.
        exemplars: Vec<(String, String)>,
    },
    /// One update of a standing watch (streamed; many per request).
    Update {
        /// The merged result, rendered (`AggResult` display form).
        result: String,
        /// True for the first update of the watch.
        initial: bool,
        /// False when some pinned tree had not reported yet.
        complete: bool,
    },
    /// Request failed.
    Error(String),
    /// This daemon's local spans for one trace (`TraceFetch` answer).
    Spans(Vec<SpanRecord>),
    /// The cluster-merged span tree for one trace (`TraceGet` answer).
    Trace {
        /// Spans from every daemon that answered, merged.
        spans: Vec<SpanRecord>,
        /// Node ids of alive members whose stores could not be reached
        /// before the gather deadline (their subtrees show as orphans).
        missing: Vec<u32>,
    },
    /// Recent trace summaries from this daemon (`TraceList` answer).
    Traces(Vec<TraceSummary>),
    /// The merged cluster-health table (`ClusterHealth` answer).
    ClusterHealth {
        /// The serving daemon.
        node: u32,
        /// One row per member (self included), digest freshness stamped.
        rows: Vec<PeerHealthRow>,
        /// Alert rules firing on the serving daemon right now.
        alerts: Vec<AlertWire>,
    },
    /// One daemon's Prometheus exposition (`MetricsFetch` answer).
    MetricsText(String),
    /// One metric's series from one daemon's history rings
    /// (`HistoryFetch` answer).
    History {
        /// The answering daemon.
        node: u32,
        /// Ring resolution of the points, in seconds.
        res_s: u32,
        /// `(unix_ms, value)` points, oldest first.
        points: Vec<(u64, f64)>,
    },
    /// The cluster-merged series for one metric (`ClusterHistory`
    /// answer).
    ClusterHistory {
        /// The queried metric.
        metric: String,
        /// Ring resolution of the points, in seconds.
        res_s: u32,
        /// Per-member series: `(node, points)`, self included.
        series: Vec<(u32, Vec<(u64, f64)>)>,
        /// Members that could not answer before the gather deadline.
        missing: Vec<u32>,
    },
    /// The newest journal entries (`EventsFetch` answer).
    Events(Vec<EventWire>),
}

impl Wire for CtrlRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtrlRequest::Join {
                addr,
                prev_node,
                ctrl,
            } => {
                out.push(0);
                addr.encode(out);
                prev_node.encode(out);
                ctrl.encode(out);
            }
            CtrlRequest::Query { text } => {
                out.push(1);
                text.encode(out);
            }
            CtrlRequest::SetAttr { attr, value } => {
                out.push(2);
                attr.encode(out);
                value.encode(out);
            }
            CtrlRequest::Status => out.push(3),
            CtrlRequest::Watch {
                text,
                policy,
                lease_us,
            } => {
                out.push(4);
                text.encode(out);
                policy.encode(out);
                lease_us.encode(out);
            }
            CtrlRequest::TraceFetch { trace_id } => {
                out.push(5);
                trace_id.encode(out);
            }
            CtrlRequest::TraceGet { trace_id } => {
                out.push(6);
                trace_id.encode(out);
            }
            CtrlRequest::TraceList { limit } => {
                out.push(7);
                limit.encode(out);
            }
            CtrlRequest::ClusterHealth => out.push(8),
            CtrlRequest::MetricsFetch => out.push(9),
            CtrlRequest::HistoryFetch { metric, range_s } => {
                out.push(10);
                metric.encode(out);
                range_s.encode(out);
            }
            CtrlRequest::ClusterHistory { metric, range_s } => {
                out.push(11);
                metric.encode(out);
                range_s.encode(out);
            }
            CtrlRequest::EventsFetch { kind, limit } => {
                out.push(12);
                kind.encode(out);
                limit.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => CtrlRequest::Join {
                addr: Wire::decode(buf)?,
                prev_node: Wire::decode(buf)?,
                ctrl: Wire::decode(buf)?,
            },
            1 => CtrlRequest::Query {
                text: Wire::decode(buf)?,
            },
            2 => CtrlRequest::SetAttr {
                attr: Wire::decode(buf)?,
                value: Wire::decode(buf)?,
            },
            3 => CtrlRequest::Status,
            4 => CtrlRequest::Watch {
                text: Wire::decode(buf)?,
                policy: Wire::decode(buf)?,
                lease_us: Wire::decode(buf)?,
            },
            5 => CtrlRequest::TraceFetch {
                trace_id: Wire::decode(buf)?,
            },
            6 => CtrlRequest::TraceGet {
                trace_id: Wire::decode(buf)?,
            },
            7 => CtrlRequest::TraceList {
                limit: Wire::decode(buf)?,
            },
            8 => CtrlRequest::ClusterHealth,
            9 => CtrlRequest::MetricsFetch,
            10 => CtrlRequest::HistoryFetch {
                metric: Wire::decode(buf)?,
                range_s: Wire::decode(buf)?,
            },
            11 => CtrlRequest::ClusterHistory {
                metric: Wire::decode(buf)?,
                range_s: Wire::decode(buf)?,
            },
            12 => CtrlRequest::EventsFetch {
                kind: Wire::decode(buf)?,
                limit: Wire::decode(buf)?,
            },
            _ => return Err(WireError::Invalid("CtrlRequest tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            CtrlRequest::Join {
                addr,
                prev_node,
                ctrl,
            } => addr.encoded_len() + prev_node.encoded_len() + ctrl.encoded_len(),
            CtrlRequest::Query { text } => text.encoded_len(),
            CtrlRequest::SetAttr { attr, value } => attr.encoded_len() + value.encoded_len(),
            CtrlRequest::Status => 0,
            CtrlRequest::Watch { text, policy, .. } => {
                text.encoded_len() + policy.encoded_len() + 8
            }
            CtrlRequest::TraceFetch { .. } | CtrlRequest::TraceGet { .. } => 8,
            CtrlRequest::TraceList { .. } => 4,
            CtrlRequest::ClusterHealth | CtrlRequest::MetricsFetch => 0,
            CtrlRequest::HistoryFetch { metric, .. }
            | CtrlRequest::ClusterHistory { metric, .. } => metric.encoded_len() + 4,
            CtrlRequest::EventsFetch { kind, .. } => kind.encoded_len() + 4,
        }
    }
}

impl Wire for CtrlReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtrlReply::Joined { node, members } => {
                out.push(0);
                node.encode(out);
                members.encode(out);
            }
            CtrlReply::Answer { result, complete } => {
                out.push(1);
                result.encode(out);
                complete.encode(out);
            }
            CtrlReply::Ok => out.push(2),
            CtrlReply::Status {
                node,
                members,
                alive,
                dead,
                watches,
                sub_entries,
                metrics,
                exemplars,
            } => {
                out.push(3);
                node.encode(out);
                members.encode(out);
                alive.encode(out);
                dead.encode(out);
                watches.encode(out);
                sub_entries.encode(out);
                metrics.encode(out);
                exemplars.encode(out);
            }
            CtrlReply::Error(e) => {
                out.push(4);
                e.encode(out);
            }
            CtrlReply::Update {
                result,
                initial,
                complete,
            } => {
                out.push(5);
                result.encode(out);
                initial.encode(out);
                complete.encode(out);
            }
            CtrlReply::Spans(spans) => {
                out.push(6);
                spans.encode(out);
            }
            CtrlReply::Trace { spans, missing } => {
                out.push(7);
                spans.encode(out);
                missing.encode(out);
            }
            CtrlReply::Traces(ts) => {
                out.push(8);
                ts.encode(out);
            }
            CtrlReply::ClusterHealth { node, rows, alerts } => {
                out.push(9);
                node.encode(out);
                rows.encode(out);
                alerts.encode(out);
            }
            CtrlReply::MetricsText(text) => {
                out.push(10);
                text.encode(out);
            }
            CtrlReply::History {
                node,
                res_s,
                points,
            } => {
                out.push(11);
                node.encode(out);
                res_s.encode(out);
                points.encode(out);
            }
            CtrlReply::ClusterHistory {
                metric,
                res_s,
                series,
                missing,
            } => {
                out.push(12);
                metric.encode(out);
                res_s.encode(out);
                series.encode(out);
                missing.encode(out);
            }
            CtrlReply::Events(events) => {
                out.push(13);
                events.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => CtrlReply::Joined {
                node: Wire::decode(buf)?,
                members: Wire::decode(buf)?,
            },
            1 => CtrlReply::Answer {
                result: Wire::decode(buf)?,
                complete: Wire::decode(buf)?,
            },
            2 => CtrlReply::Ok,
            3 => CtrlReply::Status {
                node: Wire::decode(buf)?,
                members: Wire::decode(buf)?,
                alive: Wire::decode(buf)?,
                dead: Wire::decode(buf)?,
                watches: Wire::decode(buf)?,
                sub_entries: Wire::decode(buf)?,
                metrics: Wire::decode(buf)?,
                exemplars: Wire::decode(buf)?,
            },
            4 => CtrlReply::Error(Wire::decode(buf)?),
            5 => CtrlReply::Update {
                result: Wire::decode(buf)?,
                initial: Wire::decode(buf)?,
                complete: Wire::decode(buf)?,
            },
            6 => CtrlReply::Spans(Wire::decode(buf)?),
            7 => CtrlReply::Trace {
                spans: Wire::decode(buf)?,
                missing: Wire::decode(buf)?,
            },
            8 => CtrlReply::Traces(Wire::decode(buf)?),
            9 => CtrlReply::ClusterHealth {
                node: Wire::decode(buf)?,
                rows: Wire::decode(buf)?,
                alerts: Wire::decode(buf)?,
            },
            10 => CtrlReply::MetricsText(Wire::decode(buf)?),
            11 => CtrlReply::History {
                node: Wire::decode(buf)?,
                res_s: Wire::decode(buf)?,
                points: Wire::decode(buf)?,
            },
            12 => CtrlReply::ClusterHistory {
                metric: Wire::decode(buf)?,
                res_s: Wire::decode(buf)?,
                series: Wire::decode(buf)?,
                missing: Wire::decode(buf)?,
            },
            13 => CtrlReply::Events(Wire::decode(buf)?),
            _ => return Err(WireError::Invalid("CtrlReply tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            CtrlReply::Joined { members, .. } => 4 + members.encoded_len(),
            CtrlReply::Answer { result, .. } => result.encoded_len() + 1,
            CtrlReply::Ok => 0,
            CtrlReply::Status {
                dead,
                metrics,
                exemplars,
                ..
            } => 20 + dead.encoded_len() + metrics.encoded_len() + exemplars.encoded_len(),
            CtrlReply::Error(e) => e.encoded_len(),
            CtrlReply::Update { result, .. } => result.encoded_len() + 2,
            CtrlReply::Spans(spans) => spans.encoded_len(),
            CtrlReply::Trace { spans, missing } => spans.encoded_len() + missing.encoded_len(),
            CtrlReply::Traces(ts) => ts.encoded_len(),
            CtrlReply::ClusterHealth { rows, alerts, .. } => {
                4 + rows.encoded_len() + alerts.encoded_len()
            }
            CtrlReply::MetricsText(text) => text.encoded_len(),
            CtrlReply::History { points, .. } => 8 + points.encoded_len(),
            CtrlReply::ClusterHistory {
                metric,
                series,
                missing,
                ..
            } => metric.encoded_len() + 4 + series.encoded_len() + missing.encoded_len(),
            CtrlReply::Events(events) => events.encoded_len(),
        }
    }
}

/// Adapter: a `NetCtx<DaemonMsg>` seen by the wrapped `MoaraNode` as a
/// `NetCtx<MoaraMsg>` (outgoing messages gain the `DaemonMsg::Moara`
/// envelope; timers and the clock pass straight through).
pub(crate) struct MoaraCtx<'a> {
    inner: &'a mut dyn NetCtx<DaemonMsg>,
}

impl NetCtx<MoaraMsg> for MoaraCtx<'_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn me(&self) -> NodeId {
        self.inner.me()
    }
    fn send(&mut self, to: NodeId, msg: MoaraMsg) {
        self.inner.send(to, DaemonMsg::Moara(msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.inner.set_timer(delay, tag)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        self.inner.cancel_timer(id);
    }
    fn count(&mut self, name: &'static str) {
        self.inner.count(name);
    }
}

pub(crate) fn moara_ctx(inner: &mut dyn NetCtx<DaemonMsg>) -> MoaraCtx<'_> {
    MoaraCtx { inner }
}

/// Adapter: the failure detector's view of the peer plane (outgoing
/// [`SwimMsg`]s gain the [`DaemonMsg::Swim`] envelope — or the
/// [`DaemonMsg::SwimHealth`] one when this daemon has a health digest
/// to gossip, riding the probe for free).
pub(crate) struct SwimCtx<'a> {
    inner: &'a mut dyn NetCtx<DaemonMsg>,
    digest: Option<&'a HealthSummary>,
}

impl NetCtx<SwimMsg> for SwimCtx<'_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn me(&self) -> NodeId {
        self.inner.me()
    }
    fn send(&mut self, to: NodeId, msg: SwimMsg) {
        match self.digest {
            Some(h) => self.inner.send(to, DaemonMsg::SwimHealth(msg, h.clone())),
            None => self.inner.send(to, DaemonMsg::Swim(msg)),
        }
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.inner.set_timer(delay, tag)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        self.inner.cancel_timer(id);
    }
    fn count(&mut self, name: &'static str) {
        self.inner.count(name);
    }
}

pub(crate) fn swim_ctx<'a>(
    inner: &'a mut dyn NetCtx<DaemonMsg>,
    digest: Option<&'a HealthSummary>,
) -> SwimCtx<'a> {
    SwimCtx { inner, digest }
}

/// The per-process protocol node: a `MoaraNode`, its failure detector,
/// and membership intake. The two state machines share the peer plane
/// (multiplexed by [`DaemonMsg`] variant) and the timer space (the
/// detector's tags carry [`moara_membership::SWIM_TAG_BASE`]).
pub struct DaemonNode {
    /// The wrapped protocol engine.
    pub moara: MoaraNode,
    /// The SWIM failure detector for this node.
    pub swim: SwimDetector,
    /// Last membership broadcast received, not yet applied (the daemon
    /// loop applies it — rebuilding the directory needs daemon state).
    pub pending_membership: Option<Vec<Member>>,
    /// This daemon's span store, when tracing is on (also wired into
    /// `moara`; held here so SWIM pings can record spans too).
    pub tracer: Option<Arc<SpanStore>>,
    /// SWIM-ping trace-id counter (namespaced under [`TRACE_NS_SWIM`]).
    swim_trace_ctr: u64,
    /// Arrival stamps of `SubDelta` frames not yet drained by the event
    /// loop — feeds the delta-lag histogram (receive → end of the step
    /// that folded it). Bounded: the loop drains it every step.
    pub pending_delta_stamps: Vec<Instant>,
    /// This daemon's freshest health digest, attached to every outgoing
    /// SWIM message while set (`None` until the first sample, and
    /// always `None` in harnesses that opt out of health gossip — then
    /// the wire stays byte-identical to pre-health builds).
    pub health_digest: Option<HealthSummary>,
    /// Peer digests received since the event loop last drained them
    /// (bounded: drained every step, and refreshed in place per peer).
    pub pending_health: Vec<(u32, HealthSummary)>,
}

impl DaemonNode {
    /// Couples a protocol engine with its failure detector.
    pub fn new(moara: MoaraNode, swim: SwimDetector) -> DaemonNode {
        DaemonNode {
            moara,
            swim,
            pending_membership: None,
            tracer: None,
            swim_trace_ctr: 0,
            pending_delta_stamps: Vec::new(),
            health_digest: None,
            pending_health: Vec::new(),
        }
    }

    /// Queues a freshly gossiped peer digest for the event loop,
    /// replacing any queued older one from the same peer.
    fn intake_health(&mut self, from: u32, digest: HealthSummary) {
        match self.pending_health.iter_mut().find(|(n, _)| *n == from) {
            Some(slot) => slot.1 = digest,
            None => self.pending_health.push((from, digest)),
        }
    }
}

impl NetProtocol for DaemonNode {
    type Msg = DaemonMsg;

    fn on_start(&mut self, ctx: &mut dyn NetCtx<DaemonMsg>) {
        let mut sctx = swim_ctx(ctx, self.health_digest.as_ref());
        self.swim.start(&mut sctx);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<DaemonMsg>, from: NodeId, msg: DaemonMsg) {
        // A piggybacked health digest is peeled off for the event
        // loop's peer table before the detector sees the probe (the
        // detector itself is health-agnostic).
        let msg = match msg {
            DaemonMsg::SwimHealth(s, h) => {
                self.intake_health(from.0, h);
                DaemonMsg::Swim(s)
            }
            other => other,
        };
        match msg {
            DaemonMsg::Moara(m) => {
                // Stamp SubDelta arrivals so the event loop can histogram
                // how long the frame sat before its fold finished (the
                // per-hop contribution to propagation lag). Capped so a
                // stalled loop cannot grow it without bound.
                if matches!(m, MoaraMsg::SubDelta { .. }) && self.pending_delta_stamps.len() < 4096
                {
                    self.pending_delta_stamps.push(Instant::now());
                }
                let mut mctx = moara_ctx(ctx);
                self.moara.on_message(&mut mctx, from, m);
            }
            // Membership is seed-owned; broadcasts claiming another
            // sender are ignored. This is hygiene against confused
            // peers, not security: the sender id is self-declared (see
            // the trust-model note in moara-transport), so a hostile
            // process that can reach the listener can spoof it.
            DaemonMsg::Membership(ms) => {
                if from == NodeId(0) {
                    self.pending_membership = Some(ms);
                } else {
                    ctx.count("membership_from_non_seed");
                }
            }
            DaemonMsg::Swim(s) => {
                // Sampled SWIM pings land in the span store too, so the
                // failure detector's cadence shows up next to query
                // phases in `/v1/traces` and the phase histograms.
                if matches!(s, SwimMsg::Ping { .. }) {
                    if let Some(tr) = &self.tracer {
                        if tr.enabled() && tr.sample_root() {
                            self.swim_trace_ctr += 1;
                            let me = ctx.me().0;
                            let trace_id = TRACE_NS_SWIM
                                | (u64::from(me) << 32)
                                | (self.swim_trace_ctr & 0xffff_ffff);
                            tr.record(SpanRecord {
                                trace_id,
                                span_id: tr.next_span_id(me),
                                parent_span_id: 0,
                                node: me,
                                phase: Phase::SwimPing,
                                peer: from.0,
                                start_us: ctx.now().as_micros(),
                                queue_us: 0,
                                service_us: 0,
                                bytes: 0,
                                detail: String::new(),
                            });
                        }
                    }
                }
                let mut sctx = swim_ctx(ctx, self.health_digest.as_ref());
                self.swim.on_message(&mut sctx, from, s);
            }
            DaemonMsg::SwimHealth(..) => unreachable!("unwrapped above"),
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<DaemonMsg>, tag: TimerTag) {
        if self.swim.owns_tag(tag) {
            let mut sctx = swim_ctx(ctx, self.health_digest.as_ref());
            self.swim.on_timer(&mut sctx, tag);
        } else {
            let mut mctx = moara_ctx(ctx);
            self.moara.on_timer(&mut mctx, tag);
        }
    }
}

/// Startup options for a daemon (mirrors `moarad`'s flags).
#[derive(Clone, Debug)]
pub struct DaemonOpts {
    /// Control-plane listen address (`--listen`).
    pub listen: SocketAddr,
    /// Seed daemon's control address to join (`--join`); `None` makes
    /// this daemon the seed.
    pub join: Option<String>,
    /// Initial local attributes (`--attrs k=v,...`).
    pub attrs: Vec<(String, Value)>,
    /// Ring-id randomness (`--seed`, seed daemon only).
    pub seed: u64,
    /// Engine configuration.
    pub cfg: MoaraConfig,
    /// Failure-detector tuning (`--swim-*` flags).
    pub swim: SwimConfig,
    /// Crash-recovery (`--rejoin-as`): reclaim this node id from the
    /// seed instead of joining fresh. Requires `join`.
    pub rejoin: Option<u32>,
    /// HTTP gateway listen address (`--http`); `None` disables the
    /// gateway.
    pub http: Option<SocketAddr>,
    /// Trace sampling (`--trace-sample N`): every Nth root operation is
    /// traced (1 = everything); 0 disables the span store entirely.
    pub trace_sample: u64,
    /// Slow-query log (`--slow-query-ms N`): queries slower than this
    /// emit one JSON line on stderr; `None` disables.
    pub slow_query_ms: Option<u64>,
    /// Gateway access log (`--access-log`): one JSON line per HTTP
    /// request on stderr.
    pub access_log: bool,
    /// Gateway result cache (`--cache-*` / `--no-query-cache`): hot
    /// query texts get promoted to standing subscriptions and served
    /// from memory. `None` disables both the cache and single-flight
    /// request coalescing. Only takes effect with `http`.
    pub query_cache: Option<CacheConfig>,
    /// Gateway per-peer-IP rate limit in requests/second
    /// (`--gw-rate-limit`); `0.0` disables limiting.
    pub gw_rate_limit: f64,
    /// Gateway per-request deadline in milliseconds
    /// (`--gw-request-timeout-ms`): a request the daemon has not
    /// answered by then gets 408 and its connection closed.
    pub gw_request_timeout_ms: u64,
    /// Gateway keep-alive idle timeout in milliseconds
    /// (`--gw-idle-timeout-ms`): a connection with no request in
    /// flight and no bytes received for this long is closed. SSE
    /// streams are exempt.
    pub gw_idle_timeout_ms: u64,
    /// Event-loop stall watchdog threshold in milliseconds
    /// (`--stall-threshold-ms`): a tick whose *work* time (poll wait
    /// excluded) crosses this counts as stalled — gossiped in the
    /// health digest and watched by the `event_loop_stall` alert.
    pub stall_threshold_ms: u64,
    /// Extra alert rules (`--alert-rules FILE`, parsed by
    /// `alerts::parse_rules`). Merged over the built-in defaults: a
    /// rule reusing a built-in name overrides it.
    pub alert_rules: Vec<AlertRule>,
    /// Flight-recorder history retention in seconds
    /// (`--history-retention`): sizes the coarse 10s ring; the fine 1s
    /// ring always holds the last 120 s.
    pub history_retention_s: u32,
    /// Crash-forensics dump directory (`--crash-dump-dir`): when set,
    /// the daemon rewrites a blackbox dump every maintenance tick and
    /// writes crash dumps on panics and stall-watchdog trips. `None`
    /// disables dumps (history and journal still record in memory).
    pub crash_dump_dir: Option<PathBuf>,
}

impl DaemonOpts {
    /// Defaults for everything but the control address.
    pub fn new(listen: SocketAddr) -> DaemonOpts {
        DaemonOpts {
            listen,
            join: None,
            attrs: Vec::new(),
            seed: 42,
            cfg: MoaraConfig::default(),
            swim: SwimConfig::default(),
            rejoin: None,
            http: None,
            trace_sample: 1,
            slow_query_ms: None,
            access_log: false,
            query_cache: Some(CacheConfig::default()),
            gw_rate_limit: 0.0,
            gw_request_timeout_ms: 30_000,
            gw_idle_timeout_ms: 30_000,
            stall_threshold_ms: 250,
            alert_rules: Vec::new(),
            history_retention_s: recorder::DEFAULT_RETENTION_S,
            crash_dump_dir: None,
        }
    }
}

/// Parses `k=v,...` attribute lists (`true`/`false` → Bool, integers →
/// Int, floats → Float, anything else → Str).
///
/// # Errors
///
/// Returns a description of the malformed entry.
pub fn parse_attrs(spec: &str) -> Result<Vec<(String, Value)>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("attribute `{part}` is not k=v"))?;
        if k.is_empty() {
            return Err(format!("attribute `{part}` has an empty name"));
        }
        out.push((k.to_owned(), parse_value(v)));
    }
    Ok(out)
}

/// Value literal parsing shared by `--attrs` and `moara-cli set`.
pub fn parse_value(v: &str) -> Value {
    match v {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => {
            if let Ok(i) = v.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = v.parse::<f64>() {
                Value::Float(f)
            } else {
                Value::Str(v.to_owned())
            }
        }
    }
}

/// One in-flight control request: the parsed request plus the channel the
/// control thread blocks on for the reply.
struct CtrlJob {
    req: CtrlRequest,
    reply: Sender<CtrlReply>,
}

/// Everyone waiting on one gateway tree walk, plus what the cache needs
/// to fold the walk's answer back in when it lands.
struct GwQueryWaiters {
    /// Reply sinks with their `X-Moara-Cache` marker: `Some("miss")`
    /// for the request that started the walk, `Some("coalesced")` for
    /// single-flight joiners, `None` when the cache is disabled (no
    /// header at all).
    waiters: Vec<(ReplySink, Option<&'static str>)>,
    /// The normalized cache key, when the cache tracks this query.
    cache_key: Option<String>,
    /// The key's standing-result generation when the walk started; the
    /// walk revalidates the entry only if it is unchanged on finish.
    cache_gen: Option<u64>,
}

/// A running daemon: one Moara node, its transport, and both planes.
pub struct Daemon {
    transport: TcpTransport<DaemonNode>,
    dir: Directory,
    me: NodeId,
    members: Vec<Member>,
    cfg: MoaraConfig,
    rng: StdRng,
    is_seed: bool,
    ctrl_addr: SocketAddr,
    ctrl_rx: Receiver<CtrlJob>,
    /// Shared with the control accept loop; set by [`Daemon::shutdown`].
    ctrl_stop: Arc<AtomicBool>,
    /// The embedded HTTP gateway, when `--http` asked for one.
    gw_handle: Option<GatewayHandle>,
    /// Gateway jobs funnel into the event loop through this.
    gw_rx: Option<Receiver<GwJob>>,
    /// Queries whose outcome we are waiting on: front id → reply channel.
    pending_queries: HashMap<u64, Sender<CtrlReply>>,
    /// Gateway queries in flight: front id → every HTTP reply channel
    /// waiting on that walk (single-flight: identical concurrent
    /// queries share one walk) plus cache bookkeeping.
    pending_gw_queries: HashMap<u64, GwQueryWaiters>,
    /// Single-flight registry: normalized query text → the front id of
    /// the walk already running for it. Identical queries arriving
    /// while it runs join its waiter list instead of walking again.
    gw_inflight: HashMap<String, u64>,
    /// The gateway result cache, shared with the worker pool (workers
    /// serve hits; this loop installs promotions, folds SubUpdates in,
    /// and demotes). `None` when disabled or the gateway is off.
    query_cache: Option<Arc<QueryCache>>,
    /// When idle cache entries were last swept.
    last_cache_sweep: Instant,
    /// Standing watches streaming to control connections: watch id →
    /// update channel. A failed send means the watcher hung up; the
    /// daemon then cancels the subscription.
    watch_streams: HashMap<u64, Sender<CtrlReply>>,
    /// Standing watches streaming to gateway SSE connections.
    gw_watch_streams: HashMap<u64, ReplySink>,
    /// When watch streams were last liveness-probed (a quiescent watch
    /// sends nothing, so a hung-up client would otherwise hold its
    /// subscription until something changes).
    last_keepalive: Instant,
    /// Sends that could not be delivered since the last drain (kept
    /// bounded by draining every step; the count feeds future failure
    /// detection).
    undeliverable_total: u64,
    /// Seed only: when membership was last re-broadcast. A periodic
    /// re-broadcast heals members that missed a join announcement (the
    /// peer plane is fire-and-forget).
    last_announce: Instant,
    /// This daemon's span store (shared with the engine and, for SWIM
    /// spans, the protocol node); `None` when `--trace-sample 0`.
    tracer: Option<Arc<SpanStore>>,
    /// Slow-query threshold; `None` disables the log.
    slow_query_ms: Option<u64>,
    /// In-flight query bookkeeping for the slow-query log: front id →
    /// (query text, submit instant, sampled trace id).
    query_meta: HashMap<u64, (String, Instant, Option<u64>)>,
    /// Queries that crossed the slow-query threshold.
    slow_queries_total: u64,
    /// Event-loop tick service time (post-poll work per step), µs.
    tick_hist: Histogram,
    /// Control + gateway jobs drained per step.
    depth_hist: Histogram,
    /// SubDelta receive → fold-finished lag per hop, µs.
    delta_lag_hist: Histogram,
    /// When the daemon booted (uptime, alert `since` stamps).
    started: Instant,
    /// Stall-watchdog threshold in microseconds.
    stall_threshold_us: u64,
    /// Ticks whose work time crossed the threshold since boot.
    stalled_ticks: u64,
    /// The freshest local health sample (what peers receive as our
    /// digest; also this daemon's own row in the merged table).
    my_health: HealthSummary,
    /// Gossiped peer digests: node → (digest, arrival stamp).
    peer_health: HashMap<u32, (HealthSummary, Instant)>,
    /// When the maintenance timer (self-sample + alert evaluation)
    /// last ran.
    last_health_sample: Instant,
    /// Live digests older than this flip a member's row to `stale`.
    health_stale_after: Duration,
    /// The alert engine (built-ins merged with `--alert-rules`).
    alert_engine: AlertEngine,
    /// Most recent sampled trace id per gateway-latency bucket. This is
    /// the daemon-side approximation of gateway request latency (query
    /// submit → outcome; HTTP parse/write excluded), which is where
    /// trace ids are known — the reactor shards never see them.
    gw_latency_exemplars: BucketExemplars,
    /// The flight recorder: metrics history rings + event journal +
    /// crash-dump writer. `Arc` so the panic hook and the gateway's
    /// worker threads could share it.
    recorder: Arc<Recorder>,
    /// `sub_expired` counter at the last maintenance tick (journal
    /// lease-GC events are emitted as diffs).
    last_sub_expired: u64,
    /// Gateway error counter at the last maintenance tick.
    last_gw_errors: u64,
    /// Gateway panics-caught counter at the last maintenance tick.
    last_gw_panics: u64,
    /// When a stall-watchdog crash dump was last written (rate limit).
    last_stall_dump: Option<Instant>,
}

/// Spans each daemon's ring-buffer store holds (per store, before the
/// oldest are evicted).
const TRACE_STORE_CAP: usize = 65_536;

/// How long a trace scatter-gather waits on each peer before reporting
/// it missing (bounds `TraceGet` under partitions instead of hanging).
const TRACE_FETCH_TIMEOUT: Duration = Duration::from_secs(2);

/// How often the seed re-broadcasts the member list.
const ANNOUNCE_EVERY: Duration = Duration::from_secs(2);

/// Lease on cache-promoted standing subscriptions. Auto-renewed by the
/// subscription plane while the watch exists, so the length only bounds
/// how long peers hold orphaned state after an ungraceful death
/// (graceful shutdown cancels explicitly).
fn cache_sub_lease() -> SimDuration {
    SimDuration::from_micros(30_000_000)
}

/// How often the result cache sweeps for idle promoted entries.
const CACHE_SWEEP_EVERY: Duration = Duration::from_secs(5);

/// How often quiescent watch streams are liveness-probed (control-plane
/// streams get a swallowed `Ok` frame, SSE streams an `: keepalive`
/// comment); a hung-up watcher is unsubscribed within this bound even if
/// its standing query never changes.
const WATCH_KEEPALIVE_EVERY: Duration = Duration::from_secs(1);

/// How often the maintenance timer samples this daemon's health (and
/// re-evaluates the alert rules against the fresh sample). The digest
/// peers hold about us is therefore at most this much older than the
/// SWIM message that carried it.
const HEALTH_SAMPLE_EVERY: Duration = Duration::from_secs(1);

/// How long a metrics federation waits on each peer's `MetricsFetch`
/// before reporting it in the `moara_federation_missing` series.
const METRICS_FETCH_TIMEOUT: Duration = Duration::from_secs(2);

/// Minimum spacing between stall-watchdog crash dumps (a sustained
/// stall would otherwise rewrite the dump every tick).
const STALL_DUMP_EVERY: Duration = Duration::from_secs(30);

impl Daemon {
    /// Boots a daemon: binds both planes, and either seeds a fresh
    /// cluster or joins an existing one through `opts.join`.
    ///
    /// # Errors
    ///
    /// Socket and join-protocol failures.
    pub fn start(opts: DaemonOpts) -> Result<Daemon, String> {
        let mut transport: TcpTransport<DaemonNode> =
            TcpTransport::new(TcpConfig::seeded(opts.seed));
        let reserved = transport
            .reserve_listener()
            .map_err(|e| format!("bind peer listener: {e}"))?;
        let peer_addr = reserved.addr();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        if opts.rejoin.is_some() && opts.join.is_none() {
            return Err("--rejoin-as requires --join (the seed revives identities)".into());
        }

        // Control plane: bound before joining, because the Join request
        // carries our control address (peers scatter-gather traces over
        // it). Jobs queue in the channel until the loop starts draining.
        let ctrl_listener = TcpListener::bind(opts.listen)
            .map_err(|e| format!("bind control listener {}: {e}", opts.listen))?;
        let ctrl_addr = ctrl_listener
            .local_addr()
            .map_err(|e| format!("control addr: {e}"))?;
        let (ctrl_tx, ctrl_rx) = std::sync::mpsc::channel();
        let ctrl_stop = Arc::new(AtomicBool::new(false));
        spawn_ctrl_accept_loop(ctrl_listener, ctrl_tx, Arc::clone(&ctrl_stop));

        let (me, members) = match &opts.join {
            None => {
                // We are the seed: member 0 of a one-node cluster.
                let members = vec![Member {
                    node: 0,
                    ring_id: rng.gen(),
                    addr: peer_addr.to_string(),
                    incarnation: 0,
                    alive: true,
                    ctrl: ctrl_addr.to_string(),
                }];
                (NodeId(0), members)
            }
            Some(seed_ctrl) => {
                // A rejoin racing its own failure detection ("node N is
                // still believed alive") is retried until the seed's
                // detector catches up — a quickly restarted daemon would
                // otherwise have to be relaunched by hand.
                let deadline = Instant::now() + Duration::from_secs(30);
                loop {
                    let reply = ctrl_roundtrip(
                        seed_ctrl,
                        &CtrlRequest::Join {
                            addr: peer_addr.to_string(),
                            prev_node: opts.rejoin,
                            ctrl: ctrl_addr.to_string(),
                        },
                        Duration::from_secs(10),
                    )
                    .map_err(|e| format!("join via {seed_ctrl}: {e}"))?;
                    match reply {
                        CtrlReply::Joined { node, members } => break (NodeId(node), members),
                        CtrlReply::Error(e)
                            if e.contains("still believed alive") && Instant::now() < deadline =>
                        {
                            std::thread::sleep(Duration::from_millis(250));
                        }
                        CtrlReply::Error(e) => return Err(format!("seed refused join: {e}")),
                        other => return Err(format!("unexpected join reply {other:?}")),
                    }
                }
            }
        };

        let dir = Directory::from_members(
            &members
                .iter()
                .map(|m| (NodeId(m.node), Id(m.ring_id)))
                .collect::<Vec<_>>(),
            opts.cfg.bits_per_digit,
        );
        // Confirmed-dead members keep their slot in the dense list but
        // are pruned from the routing overlay.
        for m in &members {
            if !m.alive {
                dir.remove_member(NodeId(m.node));
            }
        }
        let tracer = (opts.trace_sample > 0)
            .then(|| Arc::new(SpanStore::new(TRACE_STORE_CAP, opts.trace_sample)));
        let mut moara = MoaraNode::new(dir.clone(), opts.cfg.clone());
        if let Some(t) = &tracer {
            moara.set_tracer(Arc::clone(t));
        }
        for (k, v) in &opts.attrs {
            moara.store.set(k.as_str(), v.clone());
        }
        let mut swim = SwimDetector::new(me, opts.swim.clone(), opts.seed ^ u64::from(me.0));
        let epoch_now = SimTime::ZERO;
        for m in &members {
            swim.sync_peer(NodeId(m.node), m.incarnation, m.alive, epoch_now);
        }
        // A rejoiner spreads its revival by gossip too, so peers whose
        // anti-entropy broadcast is late still reintegrate it promptly.
        swim.announce_alive();
        let mut node = DaemonNode::new(moara, swim);
        node.tracer = tracer.clone();
        transport.add_node_with_listener(me, node, reserved);
        for m in &members {
            if m.node != me.0 && m.alive {
                let addr = resolve(&m.addr).map_err(|e| format!("peer {}: {e}", m.addr))?;
                transport.register_peer(NodeId(m.node), addr);
            }
        }

        // The HTTP edge: any client that can speak HTTP/1.1 (a browser, a
        // load balancer's health checks, a Prometheus scraper) enters
        // through here; jobs funnel into the same single-threaded loop as
        // control requests. See `docs/gateway.md`.
        let (gw_handle, gw_rx, query_cache) = match opts.http {
            None => (None, None, None),
            Some(addr) => {
                let listener = TcpListener::bind(addr)
                    .map_err(|e| format!("bind http listener {addr}: {e}"))?;
                let (gw_tx, gw_rx) = std::sync::mpsc::channel();
                let sink: Option<moara_gateway::AccessLogSink> = opts
                    .access_log
                    .then(|| Arc::new(|line: &str| eprintln!("{line}")) as _);
                // The cache is shared between the worker pool (which
                // serves hits inline, never entering this loop) and the
                // event loop (which owns every mutation that needs the
                // protocol node: promotion installs, SubUpdate folds,
                // demotion lease releases).
                let cache = opts
                    .query_cache
                    .clone()
                    .map(|cfg| Arc::new(QueryCache::new(cfg)));
                let handle = moara_gateway::spawn_gateway_opts(
                    listener,
                    gw_tx,
                    GatewayOpts {
                        rate_limit: opts.gw_rate_limit,
                        request_timeout: Duration::from_millis(opts.gw_request_timeout_ms.max(1)),
                        idle_timeout: Duration::from_millis(opts.gw_idle_timeout_ms.max(1)),
                        access_log: sink,
                        cache: cache.clone(),
                        ..GatewayOpts::default()
                    },
                );
                (Some(handle), Some(gw_rx), cache)
            }
        };

        let recorder = Arc::new(Recorder::new(
            opts.history_retention_s,
            opts.crash_dump_dir.clone(),
        ));
        recorder.set_node(me.0);
        // Crash forensics for panics: only installed when dumps are on
        // (`moarad` runs one daemon per process; in-process multi-daemon
        // tests never set `--crash-dump-dir`, so hooks don't stack).
        if recorder.dumps_enabled() {
            let rec = Arc::clone(&recorder);
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let ts = now_unix_ms();
                rec.record_event(kind::PANIC, format!("{info}"));
                let _ = rec.write_dump("crash-panic", ts);
                prev(info);
            }));
        }

        let mut daemon = Daemon {
            transport,
            dir,
            me,
            members: members.clone(),
            cfg: opts.cfg,
            rng,
            is_seed: opts.join.is_none(),
            ctrl_addr,
            ctrl_rx,
            ctrl_stop,
            gw_handle,
            gw_rx,
            pending_queries: HashMap::new(),
            pending_gw_queries: HashMap::new(),
            gw_inflight: HashMap::new(),
            query_cache,
            last_cache_sweep: Instant::now(),
            watch_streams: HashMap::new(),
            gw_watch_streams: HashMap::new(),
            last_keepalive: Instant::now(),
            undeliverable_total: 0,
            last_announce: Instant::now(),
            tracer,
            slow_query_ms: opts.slow_query_ms,
            query_meta: HashMap::new(),
            slow_queries_total: 0,
            tick_hist: Histogram::latency_us(),
            depth_hist: Histogram::depth(),
            delta_lag_hist: Histogram::latency_us(),
            started: Instant::now(),
            stall_threshold_us: opts.stall_threshold_ms.saturating_mul(1_000).max(1),
            stalled_ticks: 0,
            my_health: HealthSummary::default(),
            peer_health: HashMap::new(),
            last_health_sample: Instant::now(),
            health_stale_after: health::stale_after(Duration::from_micros(
                opts.swim.period.as_micros(),
            )),
            alert_engine: AlertEngine::new(alerts::merge_rules(opts.alert_rules)),
            gw_latency_exemplars: BucketExemplars::new(&moara_gateway::LATENCY_BOUNDS_US),
            recorder,
            last_sub_expired: 0,
            last_gw_errors: 0,
            last_gw_panics: 0,
            last_stall_dump: None,
        };
        // A joiner's presence is already in `members`; make the overlay
        // aware locally (the seed broadcasts to everyone else on join).
        daemon.reconcile_local();
        Ok(daemon)
    }

    /// The control-plane address (useful when `--listen` used port 0).
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// The HTTP gateway address, when one is enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.gw_handle.as_ref().map(|h| h.addr())
    }

    /// This daemon's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Members currently known.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The full member view, liveness included.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Members currently believed alive.
    pub fn alive_member_count(&self) -> usize {
        self.members.iter().filter(|m| m.alive).count()
    }

    /// The peer-plane listen address.
    pub fn peer_addr(&self) -> Option<SocketAddr> {
        self.transport.local_addr(self.me)
    }

    /// Runs one event-loop iteration: pumps the transport, applies
    /// membership updates, serves control requests, finishes queries.
    /// Returns true if anything happened.
    pub fn step(&mut self, max_wait: Duration) -> bool {
        let mut did = self.transport.pump(max_wait);
        // Tick timing starts after the poll: it measures how long one
        // loop iteration's *work* takes, not how long the loop idled.
        let tick_start = Instant::now();
        did |= self.apply_pending_membership();
        did |= self.apply_swim_events();
        let ctrl_jobs = self.serve_ctrl();
        let gw_jobs = self.serve_gateway();
        did |= ctrl_jobs + gw_jobs > 0;
        did |= self.finish_queries();
        did |= self.pump_watches();
        did |= self.pump_query_cache();
        // SubDelta frames pumped this step have now been folded and (if
        // watched here) handed to their watchers: close their lag spans.
        let stamps = std::mem::take(&mut self.transport.node_mut(self.me).pending_delta_stamps);
        for stamp in stamps {
            self.delta_lag_hist
                .observe(u64::try_from(stamp.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        // Gossiped peer digests pumped this step move into the health
        // table with an arrival stamp (staleness is judged against it).
        let arrived = std::mem::take(&mut self.transport.node_mut(self.me).pending_health);
        if !arrived.is_empty() {
            let now = Instant::now();
            for (node, digest) in arrived {
                self.peer_health.insert(node, (digest, now));
            }
        }
        // Keep the transport's undeliverable log bounded (it grows on
        // every send to a dead peer, and this loop runs forever).
        self.undeliverable_total += self.transport.take_undeliverable().len() as u64;
        if self.is_seed && self.members.len() > 1 && self.last_announce.elapsed() >= ANNOUNCE_EVERY
        {
            self.broadcast_membership();
        }
        // Maintenance timer: self-sample into the gossiped digest, feed
        // the flight recorder's history rings, re-evaluate the alert
        // rules against the fresh sample (rate() rules read the rings),
        // and — when dumps are on — rewrite the blackbox dump so a
        // kill -9 still leaves the final window on disk.
        if self.last_health_sample.elapsed() >= HEALTH_SAMPLE_EVERY {
            self.last_health_sample = Instant::now();
            self.sample_health();
            let sample = self.health_sample();
            let now_ms = now_unix_ms();
            if let Ok(mut h) = self.recorder.history.lock() {
                h.record(now_ms, &sample);
            }
            self.evaluate_alerts(&sample, now_ms);
            self.journal_subsystem_diffs();
            self.refresh_recorder_context();
            if self.recorder.dumps_enabled() {
                self.recorder.write_dump("blackbox", now_ms);
            }
        }
        self.depth_hist.observe((ctrl_jobs + gw_jobs) as u64);
        let tick_us = u64::try_from(tick_start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.tick_hist.observe(tick_us);
        if tick_us >= self.stall_threshold_us {
            self.stalled_ticks += 1;
            self.recorder
                .record_event(kind::STALL, format!("tick_us={tick_us}"));
            if self.recorder.dumps_enabled()
                && self
                    .last_stall_dump
                    .is_none_or(|t| t.elapsed() >= STALL_DUMP_EVERY)
            {
                self.last_stall_dump = Some(Instant::now());
                let ts = now_unix_ms();
                self.recorder
                    .record_event(kind::CRASH_DUMP, "reason=crash-stall".to_owned());
                self.recorder.write_dump("crash-stall", ts);
            }
        }
        did
    }

    /// Total sends dropped because their peer was unreachable or dead.
    pub fn undeliverable_total(&self) -> u64 {
        self.undeliverable_total
    }

    /// Seed only: push the current member list to every other member.
    fn broadcast_membership(&mut self) {
        let me = self.me;
        let members = self.members.clone();
        let broadcast = DaemonMsg::Membership(members.clone());
        self.transport.with_node(me, |_n, ctx| {
            for m in &members {
                if m.node != me.0 {
                    ctx.send(NodeId(m.node), broadcast.clone());
                }
            }
        });
        self.last_announce = Instant::now();
    }

    /// Runs the daemon loop forever (the `moarad` main).
    pub fn run_forever(&mut self) -> ! {
        loop {
            self.step(Duration::from_millis(5));
        }
    }

    fn reconcile_local(&mut self) {
        self.transport.with_node(self.me, |n, ctx| {
            let mut mctx = moara_ctx(ctx);
            n.moara.reconcile(&mut mctx);
        });
    }

    /// Acts on what this daemon's failure detector concluded: confirmed
    /// failures prune the peer from the member view and the overlay
    /// (ring repair + `on_peer_failed` + `reconcile`); revivals undo the
    /// pruning. This is the path that replaces the harness-level
    /// `Cluster::fail_node` oracle in real deployments.
    fn apply_swim_events(&mut self) -> bool {
        let events = self.transport.node_mut(self.me).swim.take_events();
        if events.is_empty() {
            return false;
        }
        let mut changed = false;
        for ev in events {
            match ev {
                SwimEvent::Suspected(n) => {
                    self.recorder
                        .record_event(kind::SWIM_SUSPECT, format!("peer={}", n.0));
                }
                SwimEvent::Confirmed(n) => {
                    self.recorder
                        .record_event(kind::SWIM_CONFIRM, format!("peer={}", n.0));
                    changed |= self.mark_member_dead(n);
                }
                SwimEvent::Revived { node, incarnation } => {
                    self.recorder.record_event(
                        kind::SWIM_REFUTE,
                        format!("peer={} incarnation={incarnation}", node.0),
                    );
                    changed |= self.mark_member_alive(node, incarnation);
                }
            }
        }
        if changed && self.is_seed {
            // Spread the news eagerly; the periodic anti-entropy
            // re-broadcast covers anyone who misses this one.
            self.broadcast_membership();
        }
        changed
    }

    fn mark_member_dead(&mut self, n: NodeId) -> bool {
        let Some(m) = self.members.iter_mut().find(|m| m.node == n.0) else {
            return false;
        };
        if !m.alive || n == self.me {
            return false;
        }
        m.alive = false;
        self.dir.remove_member(n);
        self.transport.with_node(self.me, |dn, ctx| {
            let mut mctx = moara_ctx(ctx);
            dn.moara.on_peer_failed(&mut mctx, n);
            dn.moara.reconcile(&mut mctx);
        });
        true
    }

    fn mark_member_alive(&mut self, n: NodeId, incarnation: u64) -> bool {
        let Some(m) = self.members.iter_mut().find(|m| m.node == n.0) else {
            return false;
        };
        m.incarnation = m.incarnation.max(incarnation);
        if m.alive {
            return false;
        }
        // Reintegrate only if we hold *some* address for the peer.
        // A refuted false confirmation (the peer never actually died)
        // kept its address valid, and that revival must work seed-less —
        // with the seed down, deferring would prune a healthy peer
        // forever. A peer that really restarted carries a new address we
        // may not have yet; then this re-inserts it against the stale one
        // for a moment — bounded and self-healing, because a rejoin
        // requires a live seed whose broadcast (which carries the fresh
        // address) is at most one anti-entropy interval away. Only a
        // daemon with *no* address at all (it joined after the death)
        // must wait for that broadcast.
        if !self.transport.peers().any(|(id, _)| id == n) {
            return false;
        }
        m.alive = true;
        self.dir.revive_member(n);
        self.reconcile_local();
        true
    }

    fn apply_pending_membership(&mut self) -> bool {
        let Some(members) = self.transport.node_mut(self.me).pending_membership.take() else {
            return false;
        };
        self.install_members(members);
        true
    }

    /// A membership list is applicable only if it is dense and ordered
    /// (`Directory::from_members` asserts exactly that — an assert that
    /// must never be reachable from a network frame) and still contains
    /// this daemon.
    fn membership_is_sane(&self, members: &[Member]) -> bool {
        !members.is_empty()
            && members
                .iter()
                .enumerate()
                .all(|(i, m)| m.node as usize == i)
            && members.iter().any(|m| m.node == self.me.0)
    }

    fn install_members(&mut self, mut members: Vec<Member>) {
        if !self.membership_is_sane(&members) {
            // Malformed or stale broadcast: drop it rather than panic or
            // corrupt the overlay view.
            return;
        }
        // A list claiming *we* are dead is stale testimony about a node
        // with first-hand knowledge: refute it (the detector jumps its
        // incarnation above the claim and gossips the revival) and keep
        // ourselves in the overlay.
        let my_slot = members
            .iter_mut()
            .find(|m| m.node == self.me.0)
            .expect("sanity checked");
        let claimed_dead = !my_slot.alive;
        my_slot.alive = true;
        // First-hand knowledge outranks a stale list the other way too:
        // a peer our own detector confirmed dead at (or above) the
        // list's incarnation stays dead — a seed anti-entropy broadcast
        // sent before the seed learned of the death must not resurrect
        // it in our routing view (only a higher incarnation revives).
        {
            let swim = &self.transport.node(self.me).swim;
            for m in members.iter_mut() {
                if m.alive && m.node != self.me.0 {
                    if let Some(p) = swim.peer(NodeId(m.node)) {
                        if p.state == moara_membership::PeerState::Dead
                            && p.incarnation >= m.incarnation
                        {
                            m.alive = false;
                            m.incarnation = p.incarnation;
                        }
                    }
                }
            }
        }
        // The periodic anti-entropy re-broadcast usually carries exactly
        // what we already have (and nothing about us changed) — bail out
        // before touching anything: a full reset would invalidate every
        // cached tree AND bump the probe-cache churn epoch on every
        // member, every 2 s, silently disabling the query-plane
        // scheduler's 30 s cost cache in steady state. Our own slot's
        // incarnation is normalized first: we store the (possibly
        // refutation-bumped) detector value, which the seed's list can
        // lag behind — without this, one refutation would make every
        // later broadcast compare unequal forever.
        if let (Some(mine), Some(stored)) = (
            members.iter_mut().find(|m| m.node == self.me.0),
            self.members.iter().find(|m| m.node == self.me.0),
        ) {
            mine.incarnation = mine.incarnation.max(stored.incarnation);
        }
        if !claimed_dead && members == self.members {
            return;
        }
        let pairs: Vec<(NodeId, Id)> = members
            .iter()
            .map(|m| (NodeId(m.node), Id(m.ring_id)))
            .collect();
        self.dir.reset_members(&pairs, self.cfg.bits_per_digit);
        for m in &members {
            if !m.alive {
                self.dir.remove_member(NodeId(m.node));
            } else if m.node != self.me.0 {
                if let Ok(addr) = resolve(&m.addr) {
                    self.transport.register_peer(NodeId(m.node), addr);
                }
            }
        }
        // Peers that the list reports dead but we still thought alive:
        // the engine must stop waiting for their replies.
        let newly_dead: Vec<NodeId> = members
            .iter()
            .filter(|m| {
                !m.alive
                    && self
                        .members
                        .iter()
                        .find(|o| o.node == m.node)
                        .is_none_or(|o| o.alive)
            })
            .map(|m| NodeId(m.node))
            .collect();
        let me = self.me;
        let member_states: Vec<(u32, u64, bool)> = members
            .iter()
            .map(|m| (m.node, m.incarnation, m.alive))
            .collect();
        let my_incarnation = self.transport.with_node(me, |dn, ctx| {
            let now = ctx.now();
            for &(node, incarnation, alive) in &member_states {
                let alive = if node == me.0 { !claimed_dead } else { alive };
                dn.swim.sync_peer(NodeId(node), incarnation, alive, now);
            }
            let mut mctx = moara_ctx(ctx);
            for &n in &newly_dead {
                dn.moara.on_peer_failed(&mut mctx, n);
            }
            dn.swim.incarnation()
        });
        members
            .iter_mut()
            .find(|m| m.node == me.0)
            .expect("sanity checked")
            .incarnation = my_incarnation;
        self.members = members;
        self.reconcile_local();
    }

    /// Seed-only: admit a joiner (or revive a rejoiner), reply with the
    /// member list, broadcast.
    fn handle_join(&mut self, addr: String, prev_node: Option<u32>, ctrl: String) -> CtrlReply {
        if !self.is_seed {
            return CtrlReply::Error("only the seed daemon admits joins".into());
        }
        if resolve(&addr).is_err() {
            return CtrlReply::Error(format!("unresolvable peer address {addr}"));
        }
        let mut members = self.members.clone();
        let node = match prev_node {
            Some(prev) => {
                // Crash-recovery: revive the old identity under a fresh
                // incarnation — strictly above anything the cluster may
                // have confirmed it dead at, so the revival out-ranks
                // every stale death claim in flight.
                let Some(m) = members.iter_mut().find(|m| m.node == prev) else {
                    return CtrlReply::Error(format!("unknown previous node id {prev}"));
                };
                if m.node == self.me.0 {
                    return CtrlReply::Error("the seed's own id cannot be reclaimed".into());
                }
                // Refuse to hand a member's identity to someone else until
                // its failure is *confirmed* — a merely suspected node is
                // usually alive (one lost probe round suffices), and
                // reviving its slot for an impostor would split-brain the
                // id. A genuinely crashed daemon restarting quickly hits
                // this too, so `Daemon::start` treats it as retryable and
                // polls until confirmation.
                let detector_view = self.transport.node(self.me).swim.peer(NodeId(prev));
                let confirmed_dead = !m.alive
                    || detector_view.is_some_and(|p| p.state == moara_membership::PeerState::Dead);
                if !confirmed_dead {
                    return CtrlReply::Error(format!(
                        "node {prev} is still believed alive; retry after its failure is detected"
                    ));
                }
                let detector_inc = detector_view.map_or(0, |p| p.incarnation);
                m.incarnation = m.incarnation.max(detector_inc) + 1;
                m.alive = true;
                m.addr = addr;
                m.ctrl = ctrl;
                prev
            }
            None => {
                let node = members.iter().map(|m| m.node + 1).max().unwrap_or(0);
                let mut ring_id = self.rng.gen();
                while members.iter().any(|m| m.ring_id == ring_id) {
                    ring_id = self.rng.gen();
                }
                members.push(Member {
                    node,
                    ring_id,
                    addr,
                    incarnation: 0,
                    alive: true,
                    ctrl,
                });
                node
            }
        };
        self.install_members(members.clone());
        // Everyone learns through the peer plane (the joiner additionally
        // gets the list in its Joined reply, and the periodic re-announce
        // heals anyone who misses this broadcast).
        self.broadcast_membership();
        CtrlReply::Joined { node, members }
    }

    fn serve_ctrl(&mut self) -> usize {
        let mut jobs = 0;
        while let Ok(job) = self.ctrl_rx.try_recv() {
            jobs += 1;
            match job.req {
                CtrlRequest::Join {
                    addr,
                    prev_node,
                    ctrl,
                } => {
                    let reply = self.handle_join(addr, prev_node, ctrl);
                    let _ = job.reply.send(reply);
                }
                CtrlRequest::Query { text } => match parse_query(&text) {
                    Ok(query) => {
                        let me = self.me;
                        let (fid, trace_id) = self.transport.with_node(me, |n, ctx| {
                            let mut mctx = moara_ctx(ctx);
                            let fid = n.moara.submit(&mut mctx, query);
                            (fid, n.moara.front_trace_id(fid))
                        });
                        self.query_meta
                            .insert(fid, (text, Instant::now(), trace_id));
                        self.pending_queries.insert(fid, job.reply);
                    }
                    Err(e) => {
                        let _ = job
                            .reply
                            .send(CtrlReply::Error(format!("parse error: {e}")));
                    }
                },
                CtrlRequest::TraceFetch { trace_id } => {
                    let spans = self
                        .tracer
                        .as_ref()
                        .map(|t| t.spans_for(trace_id))
                        .unwrap_or_default();
                    let _ = job.reply.send(CtrlReply::Spans(spans));
                }
                CtrlRequest::TraceGet { trace_id } => {
                    self.spawn_trace_gather(trace_id, job.reply, |spans, missing| {
                        CtrlReply::Trace { spans, missing }
                    });
                }
                CtrlRequest::TraceList { limit } => {
                    let ts = self
                        .tracer
                        .as_ref()
                        .map(|t| t.recent(limit as usize))
                        .unwrap_or_default();
                    let _ = job.reply.send(CtrlReply::Traces(ts));
                }
                CtrlRequest::SetAttr { attr, value } => {
                    self.transport.with_node(self.me, |n, ctx| {
                        let mut mctx = moara_ctx(ctx);
                        n.moara.store.set(attr.as_str(), value);
                        n.moara.on_local_change(&mut mctx, &attr);
                    });
                    let _ = job.reply.send(CtrlReply::Ok);
                }
                CtrlRequest::Watch {
                    text,
                    policy,
                    lease_us,
                } => match parse_query(&text) {
                    Ok(query) => {
                        let me = self.me;
                        let lease = SimDuration::from_micros(lease_us.max(1_000_000));
                        let wid = self.transport.with_node(me, |n, ctx| {
                            let mut mctx = moara_ctx(ctx);
                            n.moara.subscribe(&mut mctx, query, policy, lease)
                        });
                        self.recorder
                            .record_event(kind::SUB_INSTALL, format!("wid={wid} q={text}"));
                        self.watch_streams.insert(wid, job.reply);
                    }
                    Err(e) => {
                        let _ = job
                            .reply
                            .send(CtrlReply::Error(format!("parse error: {e}")));
                    }
                },
                CtrlRequest::Status => {
                    let dead: Vec<u32> = self
                        .members
                        .iter()
                        .filter(|m| !m.alive)
                        .map(|m| m.node)
                        .collect();
                    let metrics = self.metrics_snapshot();
                    let exemplars = self.exemplar_entries();
                    let moara = &self.transport.node(self.me).moara;
                    let _ = job.reply.send(CtrlReply::Status {
                        node: self.me.0,
                        members: self.members.len() as u32,
                        alive: (self.members.len() - dead.len()) as u32,
                        dead,
                        watches: moara.active_watches() as u32,
                        sub_entries: moara.sub_entry_count() as u32,
                        metrics,
                        exemplars,
                    });
                }
                CtrlRequest::ClusterHealth => {
                    let _ = job.reply.send(CtrlReply::ClusterHealth {
                        node: self.me.0,
                        rows: self.health_rows(),
                        alerts: self.alert_engine.firing(Instant::now()),
                    });
                }
                CtrlRequest::MetricsFetch => {
                    let _ = job
                        .reply
                        .send(CtrlReply::MetricsText(self.render_metrics()));
                }
                CtrlRequest::HistoryFetch { metric, range_s } => {
                    let reply = match self.local_history(&metric, range_s) {
                        Some((res_s, points)) => CtrlReply::History {
                            node: self.me.0,
                            res_s,
                            points,
                        },
                        None => CtrlReply::Error(format!("unknown metric `{metric}`")),
                    };
                    let _ = job.reply.send(reply);
                }
                CtrlRequest::ClusterHistory { metric, range_s } => {
                    self.spawn_history_gather(
                        metric.clone(),
                        range_s,
                        job.reply,
                        move |res_s, series, missing| CtrlReply::ClusterHistory {
                            metric,
                            res_s,
                            series,
                            missing,
                        },
                    );
                }
                CtrlRequest::EventsFetch { kind, limit } => {
                    let events = self
                        .recorder
                        .journal
                        .snapshot(kind.as_deref(), limit as usize);
                    let _ = job.reply.send(CtrlReply::Events(events));
                }
            }
        }
        jobs
    }

    /// A compact name → value metrics snapshot for `status --json` (the
    /// control-plane twin of the key `/metrics` families).
    fn metrics_snapshot(&self) -> Vec<(String, f64)> {
        let stats = self.transport.stats();
        let dn = self.transport.node(self.me);
        let mut out: Vec<(&str, f64)> = vec![
            (
                "transport_messages_sent_total",
                stats.total_messages() as f64,
            ),
            (
                "transport_messages_received_total",
                stats.total_recv_messages() as f64,
            ),
            ("transport_bytes_sent_total", stats.total_bytes() as f64),
            (
                "transport_undeliverable_total",
                self.undeliverable_total as f64,
            ),
            (
                "queries_inflight",
                (self.pending_queries.len() + self.pending_gw_queries.len()) as f64,
            ),
            ("watches", dn.moara.active_watches() as f64),
            ("sub_entries", dn.moara.sub_entry_count() as f64),
            ("slow_queries_total", self.slow_queries_total as f64),
            ("event_loop_ticks_total", self.tick_hist.count() as f64),
        ];
        if let Some(t) = &self.tracer {
            out.push(("trace_spans", t.len() as f64));
            out.push(("trace_spans_dropped_total", t.dropped() as f64));
        }
        if let Some(cache) = &self.query_cache {
            out.push(("gateway_cache_hits_total", cache.hits() as f64));
            out.push(("gateway_cache_misses_total", cache.misses() as f64));
            out.push(("gateway_cache_promotions_total", cache.promotions() as f64));
            out.push(("gateway_cache_coalesced_total", cache.coalesced() as f64));
            out.push(("gateway_cache_entries", cache.len() as f64));
            out.push(("gateway_cache_promoted", cache.promoted_len() as f64));
        }
        out.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
    }

    /// Samples this daemon into a fresh [`HealthSummary`] and publishes
    /// it as the digest every outgoing SWIM message piggybacks.
    fn sample_health(&mut self) {
        let dn = self.transport.node(self.me);
        let (queued, conns, streams) = match &self.gw_handle {
            Some(gw) => {
                use std::sync::atomic::Ordering::Relaxed;
                let s = gw.stats();
                (
                    s.queued_jobs.load(Relaxed).max(0) as u32,
                    s.open_conns.load(Relaxed).max(0) as u32,
                    s.open_streams.load(Relaxed).max(0) as u32,
                )
            }
            None => (0, 0, 0),
        };
        let cache_hit_bp = match &self.query_cache {
            Some(c) => {
                let (hits, misses) = (c.hits(), c.misses());
                match (hits * 10_000).checked_div(hits + misses) {
                    Some(bp) => bp as u16,
                    None => CACHE_RATIO_NONE,
                }
            }
            None => CACHE_RATIO_NONE,
        };
        let summary = HealthSummary {
            node: self.me.0,
            incarnation: dn.swim.incarnation(),
            uptime_s: self.started.elapsed().as_secs(),
            tick_p99_us: self.tick_hist.quantile(0.99),
            stalled_ticks: self.stalled_ticks,
            queued_jobs: queued,
            open_conns: conns,
            open_streams: streams,
            watches: dn.moara.active_watches() as u32,
            sub_entries: dn.moara.sub_entry_count() as u32,
            cache_hit_bp,
            rss_bytes: health::rss_bytes(),
            open_fds: health::open_fds(),
            queries_inflight: (self.pending_queries.len() + self.pending_gw_queries.len()) as u32,
            alerts_firing: self.alert_engine.firing(Instant::now()).len() as u32,
        };
        // The size cap is a wire invariant, not a hope: a digest that
        // would fatten SWIM probes past it is simply not gossiped.
        if summary.encoded_len() <= HEALTH_DIGEST_MAX_BYTES {
            self.transport.node_mut(self.me).health_digest = Some(summary.clone());
        }
        self.my_health = summary;
    }

    /// The name → value view of the freshest health sample. This is
    /// both what the alert rules compare against and what the flight
    /// recorder's history rings store — one fixed key set (missing
    /// values are `NaN`, which no alert operator matches and the rings
    /// render as gaps), so `/v1/history?metric=` accepts exactly these
    /// names.
    fn health_sample(&self) -> Vec<(&'static str, f64)> {
        let h = &self.my_health;
        let dead = self.members.iter().filter(|m| !m.alive).count();
        let rate_limited = match &self.gw_handle {
            Some(gw) => gw
                .stats()
                .rate_limited
                .load(std::sync::atomic::Ordering::Relaxed) as f64,
            None => 0.0,
        };
        vec![
            ("tick_p99_us", h.tick_p99_us as f64),
            ("stalled_ticks", h.stalled_ticks as f64),
            ("dead_members", dead as f64),
            ("watches", f64::from(h.watches)),
            ("sub_entries", f64::from(h.sub_entries)),
            ("queued_jobs", f64::from(h.queued_jobs)),
            ("open_conns", f64::from(h.open_conns)),
            ("open_streams", f64::from(h.open_streams)),
            ("open_fds", f64::from(h.open_fds)),
            ("rss_bytes", h.rss_bytes as f64),
            ("queries_inflight", f64::from(h.queries_inflight)),
            ("uptime_s", h.uptime_s as f64),
            ("rate_limited", rate_limited),
            ("slow_queries", self.slow_queries_total as f64),
            ("undeliverable", self.undeliverable_total as f64),
            ("cache_hit_pct", h.cache_hit_pct().unwrap_or(f64::NAN)),
        ]
    }

    /// Evaluates the alert rules against the freshest health sample,
    /// logging each firing/resolved transition as one JSON line on
    /// stderr (next to the slow-query log) and into the event journal.
    fn evaluate_alerts(&mut self, sample: &[(&'static str, f64)], now_ms: u64) {
        let now = Instant::now();
        let events = {
            let history = self.recorder.history.lock().ok();
            self.alert_engine
                .evaluate(sample, history.as_deref(), now, now_ms)
        };
        for ev in &events {
            eprintln!("{}", AlertEngine::event_line(self.me.0, ev, now_ms));
            match ev {
                AlertEvent::Fired {
                    rule,
                    metric,
                    value,
                    threshold,
                } => self.recorder.record_event(
                    kind::ALERT_FIRING,
                    format!("rule={rule} metric={metric} value={value} threshold={threshold}"),
                ),
                AlertEvent::Resolved { rule } => self
                    .recorder
                    .record_event(kind::ALERT_RESOLVED, format!("rule={rule}")),
            }
        }
        if !events.is_empty() {
            // Keep the gossiped firing count fresh without waiting out
            // the next sample period.
            let n = self.alert_engine.firing(now).len() as u32;
            self.my_health.alerts_firing = n;
            if let Some(d) = &mut self.transport.node_mut(self.me).health_digest {
                d.alerts_firing = n;
            }
        }
    }

    /// Journals subsystem activity that only surfaces through counters:
    /// lease-GC expiries on the subscription plane, and errors/panics
    /// the gateway's reactor shards caught since the last tick.
    fn journal_subsystem_diffs(&mut self) {
        let expired = self.transport.stats().counter("sub_expired");
        if expired > self.last_sub_expired {
            let n = expired - self.last_sub_expired;
            self.last_sub_expired = expired;
            self.recorder
                .record_event(kind::SUB_LEASE_GC, format!("count={n}"));
        }
        if let Some(gw) = &self.gw_handle {
            use std::sync::atomic::Ordering::Relaxed;
            let s = gw.stats();
            let errors = s.errors.load(Relaxed);
            if errors > self.last_gw_errors {
                let n = errors - self.last_gw_errors;
                self.last_gw_errors = errors;
                self.recorder
                    .record_event(kind::GW_ERROR, format!("count={n}"));
            }
            let panics = s.panics_caught.load(Relaxed);
            if panics > self.last_gw_panics {
                let n = panics - self.last_gw_panics;
                self.last_gw_panics = panics;
                self.recorder
                    .record_event(kind::GW_PANIC, format!("count={n}"));
            }
        }
    }

    /// Refreshes the crash-dump context block: the peer health table,
    /// currently-firing alerts, and gateway latency exemplars, rendered
    /// as flat JSON lines so a dump carries the cluster's last known
    /// shape alongside this daemon's own series.
    fn refresh_recorder_context(&mut self) {
        if !self.recorder.dumps_enabled() {
            return;
        }
        let mut ctx = String::new();
        for row in self.health_rows() {
            let (tick_p99, stalled, firing) = row.summary.as_ref().map_or((0, 0, 0), |s| {
                (s.tick_p99_us, s.stalled_ticks, s.alerts_firing)
            });
            ctx.push_str(&recorder::peer_context_line(
                row.node,
                row.status.as_str(),
                row.age_ms,
                tick_p99,
                stalled,
                firing,
            ));
            ctx.push('\n');
        }
        let now = Instant::now();
        for a in self.alert_engine.firing(now) {
            ctx.push_str(
                &JsonLine::new()
                    .str("t", "alert")
                    .str("rule", &a.rule)
                    .str("metric", &a.metric)
                    .f64("value", a.value)
                    .f64("threshold", a.threshold)
                    .u64("since_s", a.since_s)
                    .finish(),
            );
            ctx.push('\n');
        }
        for (key, trace_id) in self.exemplar_entries() {
            ctx.push_str(
                &JsonLine::new()
                    .str("t", "exemplar")
                    .str("key", &key)
                    .str("trace_id", &trace_id)
                    .finish(),
            );
            ctx.push('\n');
        }
        self.recorder.set_context(ctx);
    }

    /// One metric's series from the local history rings.
    fn local_history(&self, metric: &str, range_s: u32) -> Option<(u32, Vec<(u64, f64)>)> {
        let h = self.recorder.history.lock().ok()?;
        let (res_s, points) = h.series(metric, range_s, now_unix_ms())?;
        Some((u32::try_from(res_s).unwrap_or(u32::MAX), points))
    }

    /// The merged cluster-health table: one staleness-stamped row per
    /// member, self included. Built purely from passive local state
    /// (the gossiped digest store + the membership view), so it never
    /// blocks on peers — a partitioned cluster answers instantly with
    /// `stale` rows.
    fn health_rows(&self) -> Vec<PeerHealthRow> {
        let mut rows: Vec<PeerHealthRow> = self
            .members
            .iter()
            .map(|m| {
                if m.node == self.me.0 {
                    return PeerHealthRow {
                        node: m.node,
                        status: HealthStatus::Ok,
                        age_ms: u64::try_from(self.last_health_sample.elapsed().as_millis())
                            .unwrap_or(u64::MAX),
                        summary: Some(self.my_health.clone()),
                    };
                }
                let held = self.peer_health.get(&m.node);
                let age_ms = held.map_or(u64::MAX, |(_, at)| {
                    u64::try_from(at.elapsed().as_millis()).unwrap_or(u64::MAX)
                });
                let status = if !m.alive {
                    HealthStatus::Dead
                } else if held.is_some_and(|(_, at)| at.elapsed() <= self.health_stale_after) {
                    HealthStatus::Ok
                } else {
                    HealthStatus::Stale
                };
                PeerHealthRow {
                    node: m.node,
                    status,
                    age_ms,
                    summary: held.map(|(h, _)| h.clone()),
                }
            })
            .collect();
        rows.sort_by_key(|r| r.node);
        rows
    }

    /// Latency-bucket trace exemplars as (key, trace id) pairs:
    /// `phase/<phase>/le/<bound>` from the span store's per-phase
    /// histograms, `gateway/le/<bound>` from the daemon-observed
    /// gateway query latency.
    fn exemplar_entries(&self) -> Vec<(String, String)> {
        fn bound_str(b: u64) -> String {
            if b == u64::MAX {
                "+Inf".to_owned()
            } else {
                b.to_string()
            }
        }
        let mut out = Vec::new();
        if let Some(t) = &self.tracer {
            for (phase, entries) in t.phase_exemplars() {
                for (bound, id) in entries {
                    out.push((
                        format!("phase/{}/le/{}", phase.as_str(), bound_str(bound)),
                        format_trace_id(id),
                    ));
                }
            }
        }
        for (bound, id) in self.gw_latency_exemplars.entries() {
            out.push((
                format!("gateway/le/{}", bound_str(bound)),
                format_trace_id(id),
            ));
        }
        out
    }

    /// Answers a cluster-metrics federation off the event loop: the
    /// local exposition renders here (this loop owns the registries),
    /// then a spawned thread asks every other alive member for its
    /// exposition over the control plane ([`CtrlRequest::MetricsFetch`],
    /// bounded by [`METRICS_FETCH_TIMEOUT`] each) and merges the
    /// answers under per-peer `instance` labels. Peers that do not
    /// answer in time — and members already confirmed dead — surface in
    /// the `moara_federation_missing` series instead of hanging the
    /// scrape.
    fn spawn_metrics_gather(&self, reply: ReplySink) {
        let local = self.render_metrics();
        let me = self.me.0;
        let peers: Vec<(u32, String)> = self
            .members
            .iter()
            .filter(|m| m.alive && m.node != me)
            .map(|m| (m.node, m.ctrl.clone()))
            .collect();
        let lost: Vec<u32> = self
            .members
            .iter()
            .filter(|m| !m.alive && m.node != me)
            .map(|m| m.node)
            .collect();
        let _ = std::thread::Builder::new()
            .name("moarad-metrics-gather".into())
            .spawn(move || {
                let mut parts: Vec<(String, Option<String>)> =
                    vec![(format!("n{me}"), Some(local))];
                for (node, ctrl) in peers {
                    let text = match ctrl_roundtrip(
                        &ctrl,
                        &CtrlRequest::MetricsFetch,
                        METRICS_FETCH_TIMEOUT,
                    ) {
                        Ok(CtrlReply::MetricsText(t)) => Some(t),
                        _ => None,
                    };
                    parts.push((format!("n{node}"), text));
                }
                for node in lost {
                    parts.push((format!("n{node}"), None));
                }
                let text = moara_gateway::federate_expositions(&parts);
                let _ = reply.send(GwReply::Metrics { text });
            });
    }

    /// Answers a trace merge off the event loop: a spawned thread reads
    /// the local store, then asks every other alive member for its spans
    /// over the control plane ([`CtrlRequest::TraceFetch`], bounded by
    /// [`TRACE_FETCH_TIMEOUT`] each). Peers that do not answer in time —
    /// partitioned, crashed between detection rounds — land in `missing`
    /// instead of hanging the request, so a trace cut by a partition
    /// still renders (its lost subtrees show as orphans).
    fn spawn_trace_gather<R: Send + 'static, T: ReplyTx<R> + Send + 'static>(
        &self,
        trace_id: u64,
        reply: T,
        respond: impl FnOnce(Vec<SpanRecord>, Vec<u32>) -> R + Send + 'static,
    ) {
        let tracer = self.tracer.clone();
        let me = self.me.0;
        let peers: Vec<(u32, String)> = self
            .members
            .iter()
            .filter(|m| m.alive && m.node != me)
            .map(|m| (m.node, m.ctrl.clone()))
            .collect();
        // Confirmed-dead peers can never answer: their spans are gone,
        // so they go straight into `missing` rather than being silently
        // skipped (a trace cut by a crash must not read as complete).
        let lost: Vec<u32> = self
            .members
            .iter()
            .filter(|m| !m.alive && m.node != me)
            .map(|m| m.node)
            .collect();
        let _ = std::thread::Builder::new()
            .name("moarad-trace-gather".into())
            .spawn(move || {
                let mut spans = tracer
                    .as_ref()
                    .map(|t| t.spans_for(trace_id))
                    .unwrap_or_default();
                let mut missing = lost;
                for (node, ctrl) in peers {
                    match ctrl_roundtrip(
                        &ctrl,
                        &CtrlRequest::TraceFetch { trace_id },
                        TRACE_FETCH_TIMEOUT,
                    ) {
                        Ok(CtrlReply::Spans(s)) => spans.extend(s),
                        _ => missing.push(node),
                    }
                }
                spans.sort_by_key(|s| (s.start_us, s.span_id));
                let _ = reply.send_reply(respond(spans, missing));
            });
    }

    fn finish_queries(&mut self) -> bool {
        if self.pending_queries.is_empty() && self.pending_gw_queries.is_empty() {
            return false;
        }
        let me = self.me;
        let done: Vec<u64> = self
            .pending_queries
            .keys()
            .chain(self.pending_gw_queries.keys())
            .copied()
            .filter(|fid| self.transport.node(me).moara.outcome(*fid).is_some())
            .collect();
        for fid in &done {
            let outcome = self
                .transport
                .node_mut(me)
                .moara
                .take_outcome(*fid)
                .expect("checked above");
            let meta = self.query_meta.remove(fid);
            if let Some((text, submitted, trace_id)) = &meta {
                if let Some(threshold_ms) = self.slow_query_ms {
                    let elapsed = submitted.elapsed();
                    if elapsed.as_millis() as u64 >= threshold_ms {
                        self.slow_queries_total += 1;
                        let dur_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
                        eprintln!(
                            "{}",
                            slow_query_line(
                                self.me.0,
                                text,
                                dur_us,
                                outcome.complete,
                                *trace_id,
                                now_unix_ms(),
                            )
                        );
                        self.recorder.record_event(
                            kind::SLOW_QUERY,
                            format!("duration_us={dur_us} q={text}"),
                        );
                    }
                }
            }
            if let Some(reply) = self.pending_queries.remove(fid) {
                let _ = reply.send(CtrlReply::Answer {
                    result: outcome.result.to_string(),
                    complete: outcome.complete,
                });
            } else if let Some(w) = self.pending_gw_queries.remove(fid) {
                // Gateway latency exemplar: the most recent sampled
                // trace per latency bucket, measured as submit →
                // outcome on this loop (the HTTP parse/write tail is
                // not included — the reactor shards never learn trace
                // ids, so this daemon-side view is the linkable one).
                if let Some((_, submitted, Some(tid))) = &meta {
                    self.gw_latency_exemplars.observe(
                        u64::try_from(submitted.elapsed().as_micros()).unwrap_or(u64::MAX),
                        *tid,
                    );
                }
                let result = outcome.result.to_string();
                for (reply, marker) in w.waiters {
                    let _ = reply.send(GwReply::Answer {
                        result: result.clone(),
                        complete: outcome.complete,
                        cache: marker,
                    });
                }
                if let Some(key) = w.cache_key {
                    // A newer identical query may have re-registered the
                    // key; only clear the registry if it is still ours.
                    if self.gw_inflight.get(&key) == Some(fid) {
                        self.gw_inflight.remove(&key);
                    }
                    // A stale promoted entry is refreshed by the walk's
                    // answer — unless a SubUpdate landed mid-walk (gen
                    // moved), in which case the standing result wins.
                    if let (Some(cache), Some(gen)) = (&self.query_cache, w.cache_gen) {
                        cache.revalidate(&key, gen, &result, outcome.complete);
                    }
                }
            }
        }
        !done.is_empty()
    }

    /// Streams pending subscription updates to their watchers (control
    /// connections and gateway SSE streams alike); a hung-up watcher's
    /// subscription is cancelled (its standing state then tears down
    /// along the trees). Quiescent streams are liveness-probed every
    /// [`WATCH_KEEPALIVE_EVERY`] so a silent hang-up cannot hold a
    /// subscription alive through endless lease renewals.
    fn pump_watches(&mut self) -> bool {
        if self.watch_streams.is_empty() && self.gw_watch_streams.is_empty() {
            return false;
        }
        let probe = self.last_keepalive.elapsed() >= WATCH_KEEPALIVE_EVERY;
        if probe {
            self.last_keepalive = Instant::now();
        }
        let me = self.me;
        // `CtrlReply::Ok` doubles as the control-plane stream keepalive:
        // the connection loop swallows it without writing to the socket,
        // so a dropped receiver (= the conn thread noticed hang-up) is
        // the only way that send fails.
        let (did_ctrl, gone) = pump_stream_map(
            &mut self.transport,
            me,
            &self.watch_streams,
            probe,
            &|u| CtrlReply::Update {
                result: u.result.to_string(),
                initial: u.initial,
                complete: u.complete,
            },
            &|| CtrlReply::Ok,
        );
        let (did_gw, gw_gone) = pump_stream_map(
            &mut self.transport,
            me,
            &self.gw_watch_streams,
            probe,
            &|u| GwReply::Update {
                result: u.result.to_string(),
                initial: u.initial,
                complete: u.complete,
            },
            &|| GwReply::Keepalive,
        );
        for wid in gone {
            self.watch_streams.remove(&wid);
            self.unsubscribe(wid);
        }
        for wid in gw_gone {
            self.gw_watch_streams.remove(&wid);
            self.unsubscribe(wid);
        }
        did_ctrl || did_gw
    }

    fn unsubscribe(&mut self, wid: u64) {
        self.recorder
            .record_event(kind::SUB_CANCEL, format!("wid={wid}"));
        self.transport.with_node(self.me, |n, ctx| {
            let mut mctx = moara_ctx(ctx);
            n.moara.unsubscribe(&mut mctx, wid);
        });
    }

    /// The event-loop side of the result cache: installs standing
    /// subscriptions for keys the workers flagged hot, folds their
    /// pending SubUpdates into the cached entries (arming fresh entries,
    /// staling served ones), releases evicted entries' subscriptions,
    /// and periodically sweeps idle entries. Workers never touch the
    /// protocol node; everything here runs on the single loop thread.
    fn pump_query_cache(&mut self) -> bool {
        let Some(cache) = self.query_cache.clone() else {
            return false;
        };
        let mut did = false;
        for (key, text) in cache.take_pending_promotions() {
            did = true;
            match parse_query(&text) {
                Ok(query) => {
                    let me = self.me;
                    let wid = self.transport.with_node(me, |n, ctx| {
                        let mut mctx = moara_ctx(ctx);
                        n.moara.subscribe(
                            &mut mctx,
                            query,
                            DeliveryPolicy::OnChange,
                            cache_sub_lease(),
                        )
                    });
                    if cache.promoted(&key, wid) {
                        self.recorder
                            .record_event(kind::CACHE_PROMOTE, format!("key={key} wid={wid}"));
                    } else {
                        // The entry changed state while the install was
                        // queued; release the orphan subscription.
                        self.unsubscribe(wid);
                    }
                }
                // Unparseable text can never have walked successfully
                // either, but keep the entry honest rather than wedged.
                Err(_) => cache.promotion_failed(&key),
            }
        }
        // Poll only watches that actually emitted since the last tick
        // (the node's dirty hints) — idle cost stays O(1) however many
        // entries are promoted. Hints for client watches (ctrl/SSE) are
        // skipped; their updates stay queued for their own pollers.
        for token in self.transport.node_mut(self.me).moara.take_dirty_watches() {
            if !cache.has_token(token) {
                continue;
            }
            let updates = self
                .transport
                .node_mut(self.me)
                .moara
                .take_sub_updates(token);
            for u in updates {
                did = true;
                cache.on_update(token, u.result.to_string(), u.complete);
            }
        }
        for token in cache.take_pending_demotions() {
            did = true;
            self.recorder
                .record_event(kind::CACHE_DEMOTE, format!("wid={token}"));
            self.unsubscribe(token);
        }
        if self.last_cache_sweep.elapsed() >= CACHE_SWEEP_EVERY {
            self.last_cache_sweep = Instant::now();
            for token in cache.demote_idle(Instant::now()) {
                did = true;
                self.recorder
                    .record_event(kind::CACHE_DEMOTE, format!("wid={token} idle=true"));
                self.unsubscribe(token);
            }
        }
        did
    }

    /// Drains HTTP gateway jobs into the protocol node — the HTTP twin of
    /// [`Daemon::serve_ctrl`].
    fn serve_gateway(&mut self) -> usize {
        let jobs: Vec<GwJob> = match &self.gw_rx {
            Some(rx) => rx.try_iter().collect(),
            None => return 0,
        };
        let count = jobs.len();
        if count > 0 {
            // The reactor bumped the queue-depth gauge on submit; this
            // drain is the matching decrement.
            if let Some(gw) = &self.gw_handle {
                gw.stats()
                    .queued_jobs
                    .fetch_sub(count as i64, std::sync::atomic::Ordering::Relaxed);
            }
        }
        for job in jobs {
            match job.req {
                GwRequest::Query { q } => {
                    // Single-flight: an identical query already walking
                    // the tree absorbs this request as another waiter —
                    // N identical in-flight queries cost one walk.
                    let key = moara_gateway::normalize(&q);
                    if let Some(cache) = &self.query_cache {
                        if let Some(fid) = self.gw_inflight.get(&key) {
                            if let Some(w) = self.pending_gw_queries.get_mut(fid) {
                                w.waiters.push((job.reply, Some("coalesced")));
                                cache.note_coalesced();
                                continue;
                            }
                        }
                    }
                    match parse_query(&q) {
                        Ok(query) => {
                            let me = self.me;
                            let (fid, trace_id) = self.transport.with_node(me, |n, ctx| {
                                let mut mctx = moara_ctx(ctx);
                                let fid = n.moara.submit(&mut mctx, query);
                                (fid, n.moara.front_trace_id(fid))
                            });
                            self.query_meta.insert(fid, (q, Instant::now(), trace_id));
                            let (marker, cache_key, cache_gen) = match &self.query_cache {
                                Some(cache) => {
                                    self.gw_inflight.insert(key.clone(), fid);
                                    let gen = cache.gen_of(&key);
                                    (Some("miss"), Some(key), gen)
                                }
                                None => (None, None, None),
                            };
                            self.pending_gw_queries.insert(
                                fid,
                                GwQueryWaiters {
                                    waiters: vec![(job.reply, marker)],
                                    cache_key,
                                    cache_gen,
                                },
                            );
                        }
                        Err(e) => {
                            let _ = job.reply.send(GwReply::Error {
                                status: 400,
                                msg: format!("parse error: {e}"),
                            });
                        }
                    }
                }
                GwRequest::Traces { limit } => {
                    let ts = self
                        .tracer
                        .as_ref()
                        .map(|t| t.recent(limit))
                        .unwrap_or_default();
                    let _ = job.reply.send(GwReply::Json {
                        body: traces_json(&ts, &self.exemplar_entries()),
                    });
                }
                GwRequest::Trace { id } => match moara_trace::parse_trace_id(&id) {
                    Some(trace_id) => {
                        self.spawn_trace_gather(trace_id, job.reply, move |spans, missing| {
                            GwReply::Json {
                                body: trace_json(trace_id, &spans, &missing),
                            }
                        });
                    }
                    None => {
                        let _ = job.reply.send(GwReply::Error {
                            status: 400,
                            msg: format!("bad trace id {id:?}"),
                        });
                    }
                },
                GwRequest::SetAttrs { attrs } => {
                    let count = attrs.len();
                    self.transport.with_node(self.me, |n, ctx| {
                        let mut mctx = moara_ctx(ctx);
                        for (k, v) in &attrs {
                            n.moara.store.set(k.as_str(), parse_value(v));
                            n.moara.on_local_change(&mut mctx, k);
                        }
                    });
                    let _ = job.reply.send(GwReply::AttrsSet { count });
                }
                GwRequest::Watch {
                    q,
                    policy,
                    lease_ms,
                } => match parse_query(&q) {
                    Ok(query) => {
                        let policy = match policy {
                            WatchPolicy::OnChange => DeliveryPolicy::OnChange,
                            WatchPolicy::PeriodMs(ms) => {
                                DeliveryPolicy::Periodic(SimDuration::from_millis(ms))
                            }
                            WatchPolicy::Threshold(v) => DeliveryPolicy::Threshold { value: v },
                        };
                        let lease =
                            SimDuration::from_micros(lease_ms.saturating_mul(1_000).max(1_000_000));
                        let me = self.me;
                        let wid = self.transport.with_node(me, |n, ctx| {
                            let mut mctx = moara_ctx(ctx);
                            n.moara.subscribe(&mut mctx, query, policy, lease)
                        });
                        self.recorder
                            .record_event(kind::SUB_INSTALL, format!("wid={wid} q={q}"));
                        self.gw_watch_streams.insert(wid, job.reply);
                    }
                    Err(e) => {
                        let _ = job.reply.send(GwReply::Error {
                            status: 400,
                            msg: format!("parse error: {e}"),
                        });
                    }
                },
                GwRequest::Metrics => {
                    let text = self.render_metrics();
                    let _ = job.reply.send(GwReply::Metrics { text });
                }
                GwRequest::Health => {
                    let alive = self.alive_member_count() as u32;
                    let _ = job.reply.send(GwReply::Health {
                        node: self.me.0,
                        members: self.members.len() as u32,
                        alive,
                    });
                }
                GwRequest::ClusterHealth => {
                    let rows = self.health_rows();
                    let alerts = self.alert_engine.firing(Instant::now());
                    let _ = job.reply.send(GwReply::Json {
                        body: cluster_health_json(self.me.0, &rows, &alerts),
                    });
                }
                GwRequest::ClusterMetrics => self.spawn_metrics_gather(job.reply),
                GwRequest::Alerts => {
                    let alerts = self.alert_engine.firing(Instant::now());
                    let _ = job.reply.send(GwReply::Json {
                        body: alerts_json(self.me.0, &alerts),
                    });
                }
                GwRequest::History { metric, range_s } => {
                    let reply = match self.local_history(&metric, range_s) {
                        Some((res_s, points)) => GwReply::Json {
                            body: history_json(self.me.0, &metric, res_s, &points),
                        },
                        None => GwReply::Error {
                            status: 404,
                            msg: format!("unknown metric `{metric}`"),
                        },
                    };
                    let _ = job.reply.send(reply);
                }
                GwRequest::ClusterHistory { metric, range_s } => {
                    let me = self.me.0;
                    self.spawn_history_gather(
                        metric.clone(),
                        range_s,
                        job.reply,
                        move |res_s, series, missing| GwReply::Json {
                            body: cluster_history_json(me, &metric, res_s, &series, &missing),
                        },
                    );
                }
                GwRequest::Events { kind, limit } => {
                    let events = self.recorder.journal.snapshot(kind.as_deref(), limit);
                    let _ = job.reply.send(GwReply::Json {
                        body: events_json(self.me.0, &events),
                    });
                }
            }
        }
        count
    }

    /// Answers a cluster-wide history merge off the event loop: the
    /// local series is read on the loop thread, then a spawned thread
    /// asks every other alive member for its series over the control
    /// plane ([`CtrlRequest::HistoryFetch`], bounded by
    /// [`METRICS_FETCH_TIMEOUT`] each). Unreachable peers — and members
    /// already confirmed dead — land in `missing` instead of hanging
    /// the request.
    fn spawn_history_gather<R: Send + 'static, T: ReplyTx<R> + Send + 'static>(
        &self,
        metric: String,
        range_s: u32,
        reply: T,
        respond: impl FnOnce(u32, Vec<(u32, Vec<(u64, f64)>)>, Vec<u32>) -> R + Send + 'static,
    ) {
        let me = self.me.0;
        let local = self.local_history(&metric, range_s);
        let peers: Vec<(u32, String)> = self
            .members
            .iter()
            .filter(|m| m.alive && m.node != me)
            .map(|m| (m.node, m.ctrl.clone()))
            .collect();
        let lost: Vec<u32> = self
            .members
            .iter()
            .filter(|m| !m.alive && m.node != me)
            .map(|m| m.node)
            .collect();
        let _ = std::thread::Builder::new()
            .name("moarad-history-gather".into())
            .spawn(move || {
                let mut res_s = recorder::TIER1_RES_S as u32;
                let mut series: Vec<(u32, Vec<(u64, f64)>)> = Vec::new();
                if let Some((res, points)) = local {
                    res_s = res;
                    series.push((me, points));
                }
                let mut missing = lost;
                for (node, ctrl) in peers {
                    match ctrl_roundtrip(
                        &ctrl,
                        &CtrlRequest::HistoryFetch {
                            metric: metric.clone(),
                            range_s,
                        },
                        METRICS_FETCH_TIMEOUT,
                    ) {
                        Ok(CtrlReply::History {
                            node: n,
                            res_s: r,
                            points,
                        }) => {
                            res_s = r;
                            series.push((n, points));
                        }
                        _ => missing.push(node),
                    }
                }
                series.sort_by_key(|(n, _)| *n);
                let _ = reply.send_reply(respond(res_s, series, missing));
            });
    }

    /// Snapshots every subsystem's counters and gauges into one
    /// Prometheus exposition (the metrics catalogue lives in
    /// `docs/gateway.md`; keep the two in sync).
    fn render_metrics(&self) -> String {
        let mut reg = MetricsRegistry::new();
        let dn = self.transport.node(self.me);
        let stats = self.transport.stats();
        let c = |name: &str| stats.counter(name);

        // Transport: the volume picture.
        reg.counter(
            "moara_transport_messages_sent_total",
            "Peer-plane messages sent by this daemon.",
            stats.total_messages(),
        );
        reg.counter(
            "moara_transport_messages_received_total",
            "Peer-plane messages received by this daemon.",
            stats.total_recv_messages(),
        );
        reg.counter(
            "moara_transport_bytes_sent_total",
            "Peer-plane bytes sent (framed wire size).",
            stats.total_bytes(),
        );
        reg.counter(
            "moara_transport_bytes_received_total",
            "Peer-plane bytes received (framed wire size).",
            stats.total_recv_bytes(),
        );
        reg.counter(
            "moara_transport_dropped_total",
            "Messages dropped at (or en route to) failed peers.",
            stats.dropped(),
        );
        reg.counter(
            "moara_transport_connects_total",
            "Fresh outbound peer connections established.",
            c("tcp_connects"),
        );
        reg.counter(
            "moara_transport_reconnects_total",
            "Peer connections re-established after a failure.",
            c("tcp_reconnects"),
        );
        reg.counter(
            "moara_transport_undeliverable_total",
            "Sends abandoned because the peer was unreachable or dead.",
            self.undeliverable_total,
        );
        reg.counter(
            "moara_transport_decode_errors_total",
            "Inbound frames that failed wire decoding.",
            c("wire_decode_errors"),
        );

        // Query-plane scheduler: cache effectiveness and batching.
        reg.counter(
            "moara_sched_probe_cache_hits_total",
            "Composite queries planned from cached probe costs.",
            c("probe_cache_hits"),
        );
        reg.counter(
            "moara_sched_probe_cache_misses_total",
            "Composite queries that had to probe group sizes.",
            c("probe_cache_misses"),
        );
        reg.counter(
            "moara_sched_probes_coalesced_total",
            "Probe rounds shared with a concurrent query's round.",
            c("probes_coalesced"),
        );
        reg.counter(
            "moara_sched_size_probes_total",
            "Size-probe messages issued.",
            c("size_probes"),
        );
        reg.counter(
            "moara_sched_batched_fanout_total",
            "Fan-out messages coalesced into shared Batch frames.",
            c("batched_fanout"),
        );
        reg.gauge(
            "moara_sched_probe_cache_entries",
            "Predicates currently held in the probe-cost cache.",
            dn.moara.probe_cache_len() as f64,
        );
        reg.counter(
            "moara_sched_probe_cache_epoch",
            "Churn epoch of the probe cache (bumps invalidate it).",
            dn.moara.probe_cache_epoch(),
        );

        // Membership: the liveness picture.
        let (_, suspect, detector_dead) = dn.swim.state_counts();
        let dead = self.members.iter().filter(|m| !m.alive).count();
        reg.gauge(
            "moara_membership_members",
            "Cluster members known (alive or dead).",
            self.members.len() as f64,
        );
        reg.gauge(
            "moara_membership_alive",
            "Members currently believed alive.",
            (self.members.len() - dead) as f64,
        );
        reg.gauge(
            "moara_membership_suspect",
            "Peers under unrefuted suspicion right now.",
            suspect as f64,
        );
        reg.gauge(
            "moara_membership_dead",
            "Members whose failure was confirmed.",
            dead.max(detector_dead) as f64,
        );
        reg.counter(
            "moara_membership_incarnation",
            "This node's incarnation (bumps refute stale death claims).",
            dn.swim.incarnation(),
        );
        reg.counter(
            "moara_membership_pings_total",
            "Direct liveness probes sent.",
            c("swim_pings"),
        );
        reg.counter(
            "moara_membership_ping_reqs_total",
            "Indirect probes relayed through third parties.",
            c("swim_ping_reqs"),
        );
        reg.counter(
            "moara_membership_suspicions_total",
            "Peers this detector put under suspicion.",
            c("swim_suspected"),
        );
        reg.counter(
            "moara_membership_confirms_total",
            "Failures this detector confirmed.",
            c("swim_confirmed"),
        );

        // Subscription plane: standing-query health.
        reg.gauge(
            "moara_subscribe_watches",
            "Standing watches fronted by this daemon.",
            dn.moara.active_watches() as f64,
        );
        reg.gauge(
            "moara_subscribe_entries",
            "Standing-subscription entries hosted on this node.",
            dn.moara.sub_entry_count() as f64,
        );
        reg.counter(
            "moara_subscribe_installs_total",
            "Subscription entries installed on this node.",
            c("sub_installs"),
        );
        reg.counter(
            "moara_subscribe_deltas_total",
            "Replacement deltas pushed up aggregation trees.",
            c("sub_deltas"),
        );
        reg.counter(
            "moara_subscribe_suppressed_total",
            "Quiescent rounds where an unchanged subtree pushed nothing.",
            c("sub_suppressed"),
        );
        reg.counter(
            "moara_subscribe_renews_total",
            "Lease renewals sent along pinned trees.",
            c("sub_renews"),
        );
        reg.counter(
            "moara_subscribe_cancels_total",
            "Subscription cancellations propagated.",
            c("sub_cancels"),
        );
        reg.counter(
            "moara_subscribe_lease_expired_total",
            "Subscription entries GCed by lease expiry.",
            c("sub_expired"),
        );

        // Engine odds and ends.
        reg.gauge(
            "moara_node_tracked_predicates",
            "Predicates with live aggregation state on this node.",
            dn.moara.tracked_predicates() as f64,
        );
        reg.gauge(
            "moara_queries_inflight",
            "Queries submitted here still waiting for their outcome.",
            (self.pending_queries.len() + self.pending_gw_queries.len()) as f64,
        );

        // The gateway's own traffic.
        if let Some(gw) = &self.gw_handle {
            use std::sync::atomic::Ordering::Relaxed;
            let s = gw.stats();
            let by_endpoint: [(&str, u64); 6] = [
                ("query", s.queries.load(Relaxed)),
                ("attrs", s.attr_sets.load(Relaxed)),
                ("watch", s.watches_opened.load(Relaxed)),
                ("metrics", s.scrapes.load(Relaxed)),
                ("healthz", s.health_checks.load(Relaxed)),
                ("traces", s.traces.load(Relaxed)),
            ];
            for (endpoint, n) in by_endpoint {
                reg.counter_with(
                    "moara_gateway_requests_total",
                    "HTTP requests accepted, by endpoint.",
                    &[("endpoint", endpoint)],
                    n,
                );
            }
            reg.counter(
                "moara_gateway_errors_total",
                "HTTP responses with a 4xx/5xx status.",
                s.errors.load(Relaxed),
            );
            reg.counter(
                "moara_gateway_sse_frames_total",
                "Server-Sent Events data frames written.",
                s.sse_frames.load(Relaxed),
            );
            reg.gauge(
                "moara_gateway_open_streams",
                "SSE watch streams currently open.",
                s.open_streams.load(Relaxed) as f64,
            );
            // The reactor + middleware picture: connection churn and
            // what the production-concern layers rejected.
            reg.counter(
                "moara_gateway_connections_accepted_total",
                "HTTP connections accepted by the gateway.",
                s.conns_accepted.load(Relaxed),
            );
            reg.counter(
                "moara_gateway_connections_rejected_total",
                "HTTP connections refused at the connection cap.",
                s.conns_rejected.load(Relaxed),
            );
            reg.gauge(
                "moara_gateway_open_connections",
                "HTTP connections currently registered with reactor shards.",
                s.open_conns.load(Relaxed) as f64,
            );
            reg.gauge(
                "moara_gateway_queued_jobs",
                "Gateway jobs handed to the daemon and not yet drained.",
                s.queued_jobs.load(Relaxed) as f64,
            );
            reg.counter(
                "moara_gateway_rate_limited_total",
                "Requests answered 429 by the per-peer-IP token bucket.",
                s.rate_limited.load(Relaxed),
            );
            reg.counter(
                "moara_gateway_request_timeouts_total",
                "Requests answered 408 (deadline exceeded or slowloris header timeout).",
                s.request_timeouts.load(Relaxed),
            );
            reg.counter(
                "moara_gateway_panics_total",
                "Panics caught by per-connection isolation.",
                s.panics_caught.load(Relaxed),
            );
            for (endpoint, hist) in s.latency.families() {
                let (cumulative, sum, count) = hist.snapshot();
                reg.histogram_with(
                    "moara_gateway_request_latency_us",
                    "HTTP request service time in microseconds, by endpoint.",
                    &[("endpoint", endpoint)],
                    &moara_gateway::LATENCY_BOUNDS_US,
                    &cumulative,
                    sum,
                    count,
                );
            }
            // The result cache (see docs/gateway.md "Result cache").
            if let Some(cache) = &self.query_cache {
                reg.counter(
                    "moara_gateway_cache_hits_total",
                    "Queries answered from the materialized standing result.",
                    cache.hits(),
                );
                reg.counter(
                    "moara_gateway_cache_misses_total",
                    "Queries that fell through the cache to a tree walk.",
                    cache.misses(),
                );
                reg.counter(
                    "moara_gateway_cache_promotions_total",
                    "Hot query texts promoted to standing subscriptions.",
                    cache.promotions(),
                );
                reg.counter(
                    "moara_gateway_cache_coalesced_total",
                    "Queries that shared another identical query's in-flight walk.",
                    cache.coalesced(),
                );
                reg.counter(
                    "moara_gateway_cache_demotions_total",
                    "Promoted entries released (idle or evicted at capacity).",
                    cache.demotions(),
                );
                reg.counter(
                    "moara_gateway_cache_invalidations_total",
                    "Standing updates that superseded a served cached result.",
                    cache.invalidations(),
                );
                reg.gauge(
                    "moara_gateway_cache_entries",
                    "Query texts currently tracked by the result cache.",
                    cache.len() as f64,
                );
                reg.gauge(
                    "moara_gateway_cache_promoted",
                    "Cache entries currently backed by a standing subscription.",
                    cache.promoted_len() as f64,
                );
            }
        }

        // Tracing plane: per-phase query latency distributions.
        if let Some(tracer) = &self.tracer {
            reg.counter(
                "moara_trace_spans_total",
                "Spans recorded into the trace ring buffer.",
                tracer.len() as u64 + tracer.dropped(),
            );
            reg.counter(
                "moara_trace_spans_dropped_total",
                "Spans evicted from the bounded trace ring buffer.",
                tracer.dropped(),
            );
            for (phase, hist) in tracer.phase_histograms() {
                reg.histogram_with(
                    "moara_query_phase_latency_us",
                    "Span service time in microseconds, by query phase.",
                    &[("phase", phase.as_str())],
                    hist.bounds(),
                    &hist.cumulative(),
                    hist.sum(),
                    hist.count(),
                );
            }
        }

        // Event-loop profile: how long each tick works and how many
        // control/gateway jobs it drains. Tick time excludes the poll
        // wait, so an idle daemon shows a flat, tiny distribution.
        reg.histogram(
            "moara_event_loop_tick_us",
            "Per-tick event-loop work time in microseconds (poll wait excluded).",
            self.tick_hist.bounds(),
            &self.tick_hist.cumulative(),
            self.tick_hist.sum(),
            self.tick_hist.count(),
        );
        reg.histogram(
            "moara_event_loop_jobs_per_tick",
            "Control-plane plus gateway jobs drained per event-loop tick.",
            self.depth_hist.bounds(),
            &self.depth_hist.cumulative(),
            self.depth_hist.sum(),
            self.depth_hist.count(),
        );
        reg.histogram(
            "moara_subscribe_delta_lag_us",
            "Per-hop SubDelta residency (receive to fold-finished) in microseconds.",
            self.delta_lag_hist.bounds(),
            &self.delta_lag_hist.cumulative(),
            self.delta_lag_hist.sum(),
            self.delta_lag_hist.count(),
        );
        reg.counter(
            "moara_slow_queries_total",
            "Queries that exceeded the --slow-query-ms threshold.",
            self.slow_queries_total,
        );
        reg.counter(
            "moara_event_loop_stalled_ticks_total",
            "Event-loop ticks whose work time crossed --stall-threshold-ms.",
            self.stalled_ticks,
        );

        // Flight recorder: journal volume (the history rings are served
        // through /v1/history, not scraped).
        reg.counter(
            "moara_events_recorded_total",
            "Structured events recorded into the flight-recorder journal.",
            self.recorder.journal.recorded(),
        );
        reg.counter(
            "moara_events_dropped_total",
            "Journal events evicted from the bounded ring.",
            self.recorder.journal.dropped(),
        );

        // Process / build identity (the health plane's raw inputs).
        reg.gauge_with(
            "moara_build_info",
            "Build identity; always 1, the information is in the labels.",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "profile",
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                ),
            ],
            1.0,
        );
        reg.gauge(
            "moara_uptime_seconds",
            "Seconds since this daemon booted.",
            self.started.elapsed().as_secs() as f64,
        );
        reg.gauge(
            "moara_process_resident_bytes",
            "Resident set size in bytes (/proc/self/statm).",
            health::rss_bytes() as f64,
        );
        reg.gauge(
            "moara_open_fds",
            "Open file descriptors (/proc/self/fd).",
            f64::from(health::open_fds()),
        );

        // Alert-rule state: one 0/1 gauge per rule, so a flat scrape
        // shows which rules exist as well as which fire.
        let firing = self.alert_engine.firing(Instant::now());
        for rule in self.alert_engine.rules() {
            let lit = firing.iter().any(|a| a.rule == rule.name);
            reg.gauge_with(
                "moara_alerts_firing",
                "1 while the named alert rule is firing, 0 otherwise.",
                &[("rule", &rule.name)],
                if lit { 1.0 } else { 0.0 },
            );
        }

        reg.gauge(
            "moara_up",
            "Always 1 while the daemon event loop serves scrapes.",
            1.0,
        );
        reg.render()
    }

    /// Graceful shutdown: stop accepting control and HTTP connections,
    /// cancel every active watch and SSE stream (so peers GC the standing
    /// state promptly instead of waiting out leases), and flush the
    /// cancel frames. The caller exits afterwards.
    pub fn shutdown(&mut self) {
        self.ctrl_stop.store(true, Ordering::SeqCst);
        // Wake the control acceptor blocked in accept().
        let _ = TcpStream::connect_timeout(&self.ctrl_addr, Duration::from_millis(50));
        if let Some(gw) = &self.gw_handle {
            gw.stop();
        }
        let mut wids: Vec<u64> = self
            .watch_streams
            .keys()
            .chain(self.gw_watch_streams.keys())
            .copied()
            .collect();
        // Cache-promoted standing subscriptions die with the daemon too:
        // they ride the same SubCancel flush, so peers GC their leases
        // and pinned covers now instead of waiting out CACHE_SUB_LEASE.
        if let Some(cache) = &self.query_cache {
            wids.extend(cache.tokens());
        }
        // Dropping the senders ends the per-connection streaming loops.
        self.watch_streams.clear();
        self.gw_watch_streams.clear();
        for wid in wids {
            self.unsubscribe(wid);
        }
        self.pending_queries.clear();
        self.pending_gw_queries.clear();
        self.gw_inflight.clear();
        // Give the SubCancel frames a moment to reach the trees.
        let deadline = Instant::now() + Duration::from_millis(300);
        while Instant::now() < deadline {
            self.transport.pump(Duration::from_millis(10));
        }
    }
}

/// One place gateway and control replies go out through, abstracting
/// over "a plain channel" (control connections, internal threads) and
/// "a reactor reply sink" (gateway connections). A failed send means the
/// receiving side hung up.
trait ReplyTx<R> {
    fn send_reply(&self, reply: R) -> Result<(), ()>;
}

impl<R> ReplyTx<R> for Sender<R> {
    fn send_reply(&self, reply: R) -> Result<(), ()> {
        self.send(reply).map_err(|_| ())
    }
}

impl ReplyTx<GwReply> for ReplySink {
    fn send_reply(&self, reply: GwReply) -> Result<(), ()> {
        self.send(reply).map_err(|_| ())
    }
}

/// Drains one watch-stream map: forwards pending subscription updates,
/// liveness-probes quiescent streams when `probe` is set, and returns
/// (anything-flowed, watch ids whose receiver hung up). Generic over the
/// reply transport so the control plane (channels) and the gateway
/// (reactor sinks) share one implementation of the hang-up detection.
fn pump_stream_map<R, T: ReplyTx<R>>(
    transport: &mut TcpTransport<DaemonNode>,
    me: NodeId,
    streams: &HashMap<u64, T>,
    probe: bool,
    to_reply: &dyn Fn(SubUpdate) -> R,
    keepalive: &dyn Fn() -> R,
) -> (bool, Vec<u64>) {
    let mut did = false;
    let mut gone: Vec<u64> = Vec::new();
    let wids: Vec<u64> = streams.keys().copied().collect();
    for wid in wids {
        let updates = transport.node_mut(me).moara.take_sub_updates(wid);
        for u in updates {
            did = true;
            if streams
                .get(&wid)
                .is_none_or(|tx| tx.send_reply(to_reply(u)).is_err())
            {
                gone.push(wid);
                break;
            }
        }
        if probe
            && !gone.contains(&wid)
            && streams
                .get(&wid)
                .is_none_or(|tx| tx.send_reply(keepalive()).is_err())
        {
            gone.push(wid);
        }
    }
    (did, gone)
}

/// One span as a JSON object. Span ids render as hex strings (they
/// routinely exceed JSON's 2^53 integer-exactness limit); timestamps
/// stay numeric — they are each recording node's own microsecond clock.
fn span_json(s: &SpanRecord) -> String {
    use moara_gateway::json::escape;
    format!(
        "{{\"span_id\":{},\"parent_span_id\":{},\"node\":{},\"phase\":{},\"peer\":{},\
         \"start_us\":{},\"queue_us\":{},\"service_us\":{},\"bytes\":{},\"detail\":{}}}",
        escape(&format!("{:#018x}", s.span_id)),
        escape(&format!("{:#018x}", s.parent_span_id)),
        s.node,
        escape(s.phase.as_str()),
        if s.peer == moara_trace::NO_PEER {
            "null".to_owned()
        } else {
            s.peer.to_string()
        },
        s.start_us,
        s.queue_us,
        s.service_us,
        s.bytes,
        escape(&s.detail),
    )
}

/// The `GET /v1/trace/{id}` body: the merged span set (the tree is in
/// the parent ids) plus the members the merge could not reach.
fn trace_json(trace_id: u64, spans: &[SpanRecord], missing: &[u32]) -> String {
    use moara_gateway::json::escape;
    let spans_json: Vec<String> = spans.iter().map(span_json).collect();
    let missing_json: Vec<String> = missing.iter().map(u32::to_string).collect();
    format!(
        "{{\"trace_id\":{},\"complete\":{},\"missing\":[{}],\"spans\":[{}]}}\n",
        escape(&format_trace_id(trace_id)),
        missing.is_empty(),
        missing_json.join(","),
        spans_json.join(","),
    )
}

/// The `GET /v1/traces` body: recent traces, newest first, plus the
/// latency-bucket exemplars (`"<hist>/le/<bound>" -> trace id`) that
/// link slow buckets straight to an inspectable trace.
fn traces_json(summaries: &[TraceSummary], exemplars: &[(String, String)]) -> String {
    use moara_gateway::json::escape;
    let items: Vec<String> = summaries
        .iter()
        .map(|t| {
            format!(
                "{{\"trace_id\":{},\"phase\":{},\"node\":{},\"start_us\":{},\
                 \"duration_us\":{},\"spans\":{}}}",
                escape(&format_trace_id(t.trace_id)),
                escape(t.phase.as_str()),
                t.node,
                t.start_us,
                t.duration_us,
                t.spans,
            )
        })
        .collect();
    let ex: Vec<String> = exemplars
        .iter()
        .map(|(k, v)| format!("{}:{}", escape(k), escape(v)))
        .collect();
    format!(
        "{{\"traces\":[{}],\"exemplars\":{{{}}}}}\n",
        items.join(","),
        ex.join(","),
    )
}

/// One firing alert as a JSON object (shared by `/v1/alerts` and the
/// alerts block of `/v1/cluster/health`).
fn alert_json(a: &AlertWire) -> String {
    use moara_gateway::json::escape;
    format!(
        "{{\"rule\":{},\"metric\":{},\"value\":{},\"threshold\":{},\"since_s\":{}}}",
        escape(&a.rule),
        escape(&a.metric),
        a.value,
        a.threshold,
        a.since_s,
    )
}

/// The `GET /v1/alerts` body: this daemon's currently-firing rules.
fn alerts_json(node: u32, alerts: &[AlertWire]) -> String {
    let items: Vec<String> = alerts.iter().map(alert_json).collect();
    format!("{{\"node\":{node},\"firing\":[{}]}}\n", items.join(","))
}

/// One member row of the cluster health table.
fn health_row_json(r: &PeerHealthRow) -> String {
    use moara_gateway::json::escape;
    let age = if r.age_ms == u64::MAX {
        "null".to_owned()
    } else {
        r.age_ms.to_string()
    };
    let summary = r.summary.as_ref().map_or("null".to_owned(), |h| {
        format!(
            "{{\"incarnation\":{},\"uptime_s\":{},\"tick_p99_us\":{},\"stalled_ticks\":{},\
             \"queued_jobs\":{},\"open_conns\":{},\"open_streams\":{},\"watches\":{},\
             \"sub_entries\":{},\"cache_hit_pct\":{},\"rss_bytes\":{},\"open_fds\":{},\
             \"queries_inflight\":{},\"alerts_firing\":{}}}",
            h.incarnation,
            h.uptime_s,
            h.tick_p99_us,
            h.stalled_ticks,
            h.queued_jobs,
            h.open_conns,
            h.open_streams,
            h.watches,
            h.sub_entries,
            h.cache_hit_pct()
                .map_or("null".to_owned(), |p| format!("{p:.2}")),
            h.rss_bytes,
            h.open_fds,
            h.queries_inflight,
            h.alerts_firing,
        )
    });
    format!(
        "{{\"node\":{},\"status\":{},\"age_ms\":{age},\"summary\":{summary}}}",
        r.node,
        escape(r.status.as_str()),
    )
}

/// The `GET /v1/cluster/health` body: the answering daemon's merged
/// member table (self + gossiped digests) plus its firing alerts.
fn cluster_health_json(node: u32, rows: &[PeerHealthRow], alerts: &[AlertWire]) -> String {
    let members: Vec<String> = rows.iter().map(health_row_json).collect();
    let firing: Vec<String> = alerts.iter().map(alert_json).collect();
    format!(
        "{{\"node\":{node},\"members\":[{}],\"alerts\":[{}]}}\n",
        members.join(","),
        firing.join(","),
    )
}

/// The `GET /v1/history` body: one metric's series from one daemon's
/// history rings, as `[unix_ms, value]` pairs at the tier's resolution.
fn history_json(node: u32, metric: &str, res_s: u32, points: &[(u64, f64)]) -> String {
    let mut body = JsonLine::new()
        .u64("node", u64::from(node))
        .str("metric", metric)
        .u64("res_s", u64::from(res_s))
        .raw("points", &points_json(points))
        .finish();
    body.push('\n');
    body
}

/// A series as a JSON array of `[unix_ms, value]` pairs (`NaN` samples
/// — gaps in the ring — render as `null` values).
fn points_json(points: &[(u64, f64)]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|(ts, v)| {
            if v.is_nan() {
                format!("[{ts},null]")
            } else {
                format!("[{ts},{v}]")
            }
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// The `GET /v1/cluster/history` body: every reachable member's series
/// for one metric under `instance` labels, like `/v1/cluster/metrics`.
fn cluster_history_json(
    node: u32,
    metric: &str,
    res_s: u32,
    series: &[(u32, Vec<(u64, f64)>)],
    missing: &[u32],
) -> String {
    let instances: Vec<String> = series
        .iter()
        .map(|(n, points)| {
            JsonLine::new()
                .str("instance", &format!("n{n}"))
                .raw("points", &points_json(points))
                .finish()
        })
        .collect();
    let missing_json: Vec<String> = missing.iter().map(u32::to_string).collect();
    let mut body = JsonLine::new()
        .u64("node", u64::from(node))
        .str("metric", metric)
        .u64("res_s", u64::from(res_s))
        .raw("instances", &format!("[{}]", instances.join(",")))
        .raw("missing", &format!("[{}]", missing_json.join(",")))
        .finish();
    body.push('\n');
    body
}

/// The `GET /v1/events` body: the newest matching journal entries,
/// oldest first.
fn events_json(node: u32, events: &[EventWire]) -> String {
    let items: Vec<String> = events
        .iter()
        .map(|e| {
            JsonLine::new()
                .u64("seq", e.seq)
                .u64("ts_ms", e.ts_ms)
                .u64("node", u64::from(e.node))
                .str("kind", &e.kind)
                .str("detail", &e.detail)
                .finish()
        })
        .collect();
    let mut body = JsonLine::new()
        .u64("node", u64::from(node))
        .raw("events", &format!("[{}]", items.join(",")))
        .finish();
    body.push('\n');
    body
}

/// One slow-query log line: a single JSON object on stderr, grep-able
/// and machine-parsable, carrying the trace id when the query was
/// sampled so the log links straight into `moara-cli trace`, and the
/// unix-ms stamp that correlates it with the event journal.
fn slow_query_line(
    node: u32,
    text: &str,
    duration_us: u64,
    complete: bool,
    trace_id: Option<u64>,
    ts_ms: u64,
) -> String {
    JsonLine::new()
        .bool("slow_query", true)
        .u64("ts_ms", ts_ms)
        .u64("node", u64::from(node))
        .str("q", text)
        .u64("duration_us", duration_us)
        .bool("complete", complete)
        .raw(
            "trace_id",
            &trace_id.map_or("null".to_owned(), |t| {
                moara_gateway::json::escape(&format_trace_id(t))
            }),
        )
        .finish()
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| e.to_string())?
        .next()
        .ok_or_else(|| "no address".to_owned())
}

fn spawn_ctrl_accept_loop(listener: TcpListener, tx: Sender<CtrlJob>, stop: Arc<AtomicBool>) {
    std::thread::Builder::new()
        .name("moarad-ctrl-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let tx = tx.clone();
                let _ = std::thread::Builder::new()
                    .name("moarad-ctrl-conn".into())
                    .spawn(move || ctrl_conn_loop(stream, tx));
            }
        })
        .expect("spawn ctrl accept thread");
}

/// Serves one control connection: framed request in, framed reply out,
/// repeated until the client hangs up. A `Watch` request flips the
/// connection into streaming mode: update frames flow until the client
/// disconnects (detected by a failed write) or the daemon drops the
/// stream.
fn ctrl_conn_loop(mut stream: TcpStream, tx: Sender<CtrlJob>) {
    let _ = stream.set_nodelay(true);
    loop {
        let Ok(Some(payload)) = read_frame(&mut stream) else {
            return;
        };
        let Ok(req) = CtrlRequest::from_bytes(&payload) else {
            let _ = write_msg(&mut stream, &CtrlReply::Error("bad request frame".into()));
            return;
        };
        let streaming = matches!(req, CtrlRequest::Watch { .. });
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        if tx
            .send(CtrlJob {
                req,
                reply: reply_tx,
            })
            .is_err()
        {
            return; // daemon shut down
        }
        if streaming {
            // Forward update frames as they arrive. Dropping `reply_rx`
            // on any write failure is the hang-up signal the daemon's
            // pump observes (its next send errs and it unsubscribes).
            loop {
                match reply_rx.recv_timeout(Duration::from_secs(1)) {
                    // A bare Ok on a watch stream is the daemon's
                    // keepalive probe: it tests that this thread (and
                    // therefore the client socket) is still alive, and is
                    // never forwarded.
                    Ok(CtrlReply::Ok) => {}
                    Ok(reply) => {
                        let stop = matches!(reply, CtrlReply::Error(_));
                        if write_msg(&mut stream, &reply).is_err() || stream.flush().is_err() {
                            return;
                        }
                        if stop {
                            return;
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        // A quiescent watch emits nothing for long
                        // stretches; probe the socket so a hung-up
                        // client releases the stream promptly.
                        if !moara_gateway::http::socket_alive(&mut stream) {
                            return;
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        }
        // Queries can legitimately take a while (front timeout bounds
        // them); everything else answers within one loop iteration.
        let reply = reply_rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| CtrlReply::Error("daemon did not answer in time".into()));
        if write_msg(&mut stream, &reply).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

/// Client side: one framed request/reply round trip over a fresh
/// connection (what `moara-cli` and joining daemons use).
///
/// # Errors
///
/// Connection, framing, and timeout failures, as strings.
pub fn ctrl_roundtrip(
    addr: &str,
    req: &CtrlRequest,
    timeout: Duration,
) -> Result<CtrlReply, String> {
    let sock_addr = resolve(addr)?;
    let deadline = Instant::now() + timeout;
    // The target daemon may still be booting (the smoke test starts
    // processes concurrently): retry connects until the deadline.
    let mut stream = loop {
        match TcpStream::connect_timeout(&sock_addr, Duration::from_millis(500)) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    write_msg(&mut stream, req).map_err(|e| format!("send: {e}"))?;
    let payload = read_frame(&mut stream)
        .map_err(|e| format!("recv: {e}"))?
        .ok_or("connection closed before reply")?;
    CtrlReply::from_bytes(&payload).map_err(|e| format!("decode reply: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_parse_into_typed_values() {
        let attrs = parse_attrs("ServiceX=true,CPU-Util=42,Load=0.5,OS=Linux").unwrap();
        assert_eq!(
            attrs,
            vec![
                ("ServiceX".into(), Value::Bool(true)),
                ("CPU-Util".into(), Value::Int(42)),
                ("Load".into(), Value::Float(0.5)),
                ("OS".into(), Value::str("Linux")),
            ]
        );
        assert!(parse_attrs("nope").is_err());
        assert!(parse_attrs("=v").is_err());
        assert_eq!(parse_attrs("").unwrap(), vec![]);
    }

    #[test]
    fn daemon_and_ctrl_messages_roundtrip() {
        let member = Member {
            node: 3,
            ring_id: 0xdead_beef,
            addr: "127.0.0.1:7777".into(),
            incarnation: 2,
            alive: false,
            ctrl: "127.0.0.1:7778".into(),
        };
        let msgs = vec![
            DaemonMsg::Membership(vec![member.clone(), member.clone()]),
            DaemonMsg::Moara(MoaraMsg::SizeReply {
                qid: moara_core::QueryId {
                    origin: NodeId(1),
                    n: 4,
                },
                pred_key: "A=1".into(),
                cost: 12,
                trace: None,
            }),
            DaemonMsg::Swim(SwimMsg::Ping {
                seq: 5,
                reply_to: NodeId(2),
                updates: vec![moara_membership::Update {
                    node: NodeId(1),
                    incarnation: 3,
                    state: moara_membership::PeerState::Suspect,
                }],
            }),
            DaemonMsg::SwimHealth(
                SwimMsg::Ping {
                    seq: 9,
                    reply_to: NodeId(0),
                    updates: vec![],
                },
                HealthSummary {
                    node: 7,
                    incarnation: 2,
                    uptime_s: 61,
                    tick_p99_us: 420,
                    stalled_ticks: 1,
                    queued_jobs: 3,
                    open_conns: 12,
                    open_streams: 2,
                    watches: 4,
                    sub_entries: 9,
                    cache_hit_bp: 9_912,
                    rss_bytes: 48 << 20,
                    open_fds: 37,
                    queries_inflight: 1,
                    alerts_firing: 0,
                },
            ),
        ];
        for m in msgs {
            assert_eq!(DaemonMsg::from_bytes(&m.to_bytes()).unwrap(), m);
            assert_eq!(
                m.size_bytes(),
                m.encoded_len() + moara_wire::FRAME_HDR + moara_wire::SENDER_HDR
            );
        }
        let reqs = vec![
            CtrlRequest::Join {
                addr: "127.0.0.1:1".into(),
                prev_node: None,
                ctrl: String::new(),
            },
            CtrlRequest::Join {
                addr: "127.0.0.1:1".into(),
                prev_node: Some(4),
                ctrl: "127.0.0.1:2".into(),
            },
            CtrlRequest::Query {
                text: "SELECT count(*)".into(),
            },
            CtrlRequest::SetAttr {
                attr: "A".into(),
                value: Value::Int(1),
            },
            CtrlRequest::Status,
            CtrlRequest::Watch {
                text: "SELECT count(*) WHERE ServiceX = true".into(),
                policy: DeliveryPolicy::Threshold { value: 2.5 },
                lease_us: 30_000_000,
            },
            CtrlRequest::TraceFetch {
                trace_id: 0x8000_0000_0000_0001,
            },
            CtrlRequest::TraceGet { trace_id: 42 },
            CtrlRequest::TraceList { limit: 25 },
            CtrlRequest::ClusterHealth,
            CtrlRequest::MetricsFetch,
            CtrlRequest::HistoryFetch {
                metric: "tick_p99_us".into(),
                range_s: 120,
            },
            CtrlRequest::ClusterHistory {
                metric: "watches".into(),
                range_s: 3_600,
            },
            CtrlRequest::EventsFetch {
                kind: Some("swim_confirm".into()),
                limit: 64,
            },
            CtrlRequest::EventsFetch {
                kind: None,
                limit: 256,
            },
        ];
        for r in reqs {
            assert_eq!(CtrlRequest::from_bytes(&r.to_bytes()).unwrap(), r);
        }
        let replies = vec![
            CtrlReply::Joined {
                node: 1,
                members: vec![member],
            },
            CtrlReply::Answer {
                result: "4".into(),
                complete: true,
            },
            CtrlReply::Ok,
            CtrlReply::Status {
                node: 0,
                members: 3,
                alive: 2,
                dead: vec![1],
                watches: 2,
                sub_entries: 5,
                metrics: vec![("moara_up".into(), 1.0), ("watches".into(), 2.0)],
                exemplars: vec![("gateway/le/10000".into(), "0x0000000000000007".into())],
            },
            CtrlReply::Error("nope".into()),
            CtrlReply::Update {
                result: "4".into(),
                initial: true,
                complete: false,
            },
            CtrlReply::Spans(vec![SpanRecord {
                trace_id: 7,
                span_id: (4u64 + 1) << 32 | 1,
                parent_span_id: 0,
                node: 4,
                phase: Phase::FanOut,
                peer: 2,
                start_us: 10,
                queue_us: 3,
                service_us: 20,
                bytes: 128,
                detail: "A=1".into(),
            }]),
            CtrlReply::Trace {
                spans: vec![],
                missing: vec![2, 5],
            },
            CtrlReply::Traces(vec![TraceSummary {
                trace_id: 7,
                phase: Phase::Parse,
                node: 4,
                start_us: 10,
                duration_us: 33,
                spans: 9,
            }]),
            CtrlReply::ClusterHealth {
                node: 2,
                rows: vec![
                    PeerHealthRow {
                        node: 0,
                        status: HealthStatus::Ok,
                        age_ms: 120,
                        summary: Some(HealthSummary {
                            node: 0,
                            incarnation: 1,
                            cache_hit_bp: CACHE_RATIO_NONE,
                            ..HealthSummary::default()
                        }),
                    },
                    PeerHealthRow {
                        node: 1,
                        status: HealthStatus::Dead,
                        age_ms: u64::MAX,
                        summary: None,
                    },
                ],
                alerts: vec![AlertWire {
                    rule: "dead_members".into(),
                    metric: "dead_members".into(),
                    value: 1.0,
                    threshold: 0.0,
                    since_s: 4,
                }],
            },
            CtrlReply::MetricsText("# HELP moara_up x\n".into()),
            CtrlReply::History {
                node: 2,
                res_s: 1,
                points: vec![(1_700_000_000_000, 42.5), (1_700_000_001_000, 43.0)],
            },
            CtrlReply::ClusterHistory {
                metric: "tick_p99_us".into(),
                res_s: 10,
                series: vec![
                    (0, vec![(1_700_000_000_000, 1.0)]),
                    (2, vec![(1_700_000_000_000, 2.0), (1_700_000_010_000, 3.0)]),
                ],
                missing: vec![1],
            },
            CtrlReply::Events(vec![EventWire {
                seq: 9,
                ts_ms: 1_700_000_000_123,
                node: 2,
                kind: "swim_confirm".into(),
                detail: "peer=1".into(),
            }]),
        ];
        for r in replies {
            assert_eq!(CtrlReply::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    /// The `u16::MAX` "no traffic yet" cache-ratio sentinel must never
    /// surface as a bogus percentage: the merged health table renders
    /// it as JSON `null` (and `moara-cli top` as `n/a`).
    #[test]
    fn cache_hit_sentinel_renders_as_null_not_a_percentage() {
        let row = PeerHealthRow {
            node: 4,
            status: HealthStatus::Ok,
            age_ms: 12,
            summary: Some(HealthSummary {
                node: 4,
                cache_hit_bp: CACHE_RATIO_NONE,
                ..HealthSummary::default()
            }),
        };
        let json = health_row_json(&row);
        assert!(
            json.contains("\"cache_hit_pct\":null"),
            "sentinel must render null, got: {json}"
        );
        let row_with_traffic = PeerHealthRow {
            summary: Some(HealthSummary {
                node: 4,
                cache_hit_bp: 2_500,
                ..HealthSummary::default()
            }),
            ..row
        };
        let json = health_row_json(&row_with_traffic);
        assert!(
            json.contains("\"cache_hit_pct\":25.00"),
            "real ratios still render, got: {json}"
        );
    }

    /// Slow-query lines are correlatable with the journal: unix-ms
    /// stamp present, shared-writer escaping applied.
    #[test]
    fn slow_query_line_is_exact_and_stamped() {
        let line = slow_query_line(
            3,
            "SELECT count(*) WHERE X = \"a\"",
            15_000,
            true,
            Some(7),
            1_700_000_000_123,
        );
        assert_eq!(
            line,
            "{\"slow_query\":true,\"ts_ms\":1700000000123,\"node\":3,\
             \"q\":\"SELECT count(*) WHERE X = \\\"a\\\"\",\"duration_us\":15000,\
             \"complete\":true,\"trace_id\":\"0x0000000000000007\"}"
        );
        let line = slow_query_line(0, "q", 1, false, None, 5);
        assert!(line.ends_with("\"trace_id\":null}"));
    }

    /// A full 3-daemon cluster in one test process (each daemon on its own
    /// thread, like three `moarad` processes on one host) answering the
    /// quickstart query through the control plane.
    #[test]
    fn three_daemons_answer_the_quickstart_query() {
        let free_port = || {
            TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
        };
        let seed_ctrl = free_port();

        let spawn_daemon = |listen: SocketAddr, join: Option<String>, attrs: &str| {
            let attrs = parse_attrs(attrs).unwrap();
            std::thread::spawn(move || {
                let mut d = Daemon::start(DaemonOpts {
                    join,
                    attrs,
                    ..DaemonOpts::new(listen)
                })
                .expect("daemon boots");
                loop {
                    d.step(Duration::from_millis(2));
                }
            })
        };

        let _a = spawn_daemon(seed_ctrl, None, "ServiceX=true");
        let b_ctrl = free_port();
        let c_ctrl = free_port();
        let seed_str = seed_ctrl.to_string();
        let _b = spawn_daemon(b_ctrl, Some(seed_str.clone()), "ServiceX=false");
        let _c = spawn_daemon(c_ctrl, Some(seed_str), "ServiceX=true");

        // Wait until every daemon sees all three members.
        let deadline = Instant::now() + Duration::from_secs(20);
        for ctrl in [seed_ctrl, b_ctrl, c_ctrl] {
            loop {
                assert!(Instant::now() < deadline, "cluster never converged");
                match ctrl_roundtrip(
                    &ctrl.to_string(),
                    &CtrlRequest::Status,
                    Duration::from_secs(5),
                ) {
                    Ok(CtrlReply::Status { members: 3, .. }) => break,
                    _ => std::thread::sleep(Duration::from_millis(30)),
                }
            }
        }

        // The acceptance query, fronted by the non-member daemon B.
        let reply = ctrl_roundtrip(
            &b_ctrl.to_string(),
            &CtrlRequest::Query {
                text: "SELECT count(*) WHERE ServiceX = true".into(),
            },
            Duration::from_secs(30),
        )
        .unwrap();
        match reply {
            CtrlReply::Answer { result, complete } => {
                assert!(complete, "query must complete");
                assert_eq!(result, "2");
            }
            other => panic!("unexpected reply {other:?}"),
        }

        // Group churn through the control plane: B joins the group.
        let reply = ctrl_roundtrip(
            &b_ctrl.to_string(),
            &CtrlRequest::SetAttr {
                attr: "ServiceX".into(),
                value: Value::Bool(true),
            },
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(reply, CtrlReply::Ok);
        let reply = ctrl_roundtrip(
            &c_ctrl.to_string(),
            &CtrlRequest::Query {
                text: "SELECT count(*) WHERE ServiceX = true".into(),
            },
            Duration::from_secs(30),
        )
        .unwrap();
        match reply {
            CtrlReply::Answer { result, .. } => assert_eq!(result, "3"),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}

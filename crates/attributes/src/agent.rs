//! Synthetic monitoring agents.
//!
//! The paper's Moara agent samples the machine it runs on (CPU, memory,
//! installed services). For the simulator, these generators stand in for a
//! live machine and produce the attribute *dynamics* the experiments need:
//! slowly drifting utilizations (dynamic groups such as `CPU-Util < 60`)
//! and sticky boolean flags (static groups such as `ServiceX = true`).

use rand::Rng;

use crate::store::AttrStore;
use crate::value::Value;

/// Something that refreshes attributes on each monitoring tick.
pub trait AttrSource {
    /// Applies one monitoring sample to `store` using `rng` for any
    /// randomness.
    fn tick(&mut self, store: &mut AttrStore, rng: &mut impl Rng);
}

/// A bounded random walk, e.g. CPU utilization in `[0, 100]`.
#[derive(Clone, Debug)]
pub struct RandomWalk {
    /// Attribute to maintain.
    pub attr: String,
    /// Current value.
    pub value: f64,
    /// Maximum step per tick (uniform in `[-step, step]`).
    pub step: f64,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
}

impl RandomWalk {
    /// A CPU-utilization walk starting at `start`%, stepping ±`step`.
    pub fn cpu_util(attr: impl Into<String>, start: f64, step: f64) -> RandomWalk {
        RandomWalk {
            attr: attr.into(),
            value: start,
            step,
            min: 0.0,
            max: 100.0,
        }
    }
}

impl AttrSource for RandomWalk {
    fn tick(&mut self, store: &mut AttrStore, rng: &mut impl Rng) {
        let delta = rng.gen_range(-self.step..=self.step);
        self.value = (self.value + delta).clamp(self.min, self.max);
        store.set(self.attr.as_str(), Value::Float(self.value));
    }
}

/// A boolean flag that flips with a given probability per tick (service
/// install/uninstall, process crash/restart).
#[derive(Clone, Debug)]
pub struct FlagFlipper {
    /// Attribute to maintain.
    pub attr: String,
    /// Current flag state.
    pub state: bool,
    /// Probability of flipping on each tick.
    pub flip_probability: f64,
}

impl FlagFlipper {
    /// A flag starting at `state` flipping with probability `p` per tick.
    pub fn new(attr: impl Into<String>, state: bool, p: f64) -> FlagFlipper {
        FlagFlipper {
            attr: attr.into(),
            state,
            flip_probability: p,
        }
    }
}

impl AttrSource for FlagFlipper {
    fn tick(&mut self, store: &mut AttrStore, rng: &mut impl Rng) {
        if rng.gen_bool(self.flip_probability.clamp(0.0, 1.0)) {
            self.state = !self.state;
        }
        store.set(self.attr.as_str(), Value::Bool(self.state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = AttrStore::new();
        let mut w = RandomWalk::cpu_util("CPU-Util", 50.0, 20.0);
        for _ in 0..500 {
            w.tick(&mut store, &mut rng);
            let v = store.get("CPU-Util").unwrap().as_f64().unwrap();
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn flag_flipper_eventually_flips() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = AttrStore::new();
        let mut f = FlagFlipper::new("ServiceX", false, 0.5);
        let mut saw_true = false;
        for _ in 0..100 {
            f.tick(&mut store, &mut rng);
            if store.get("ServiceX") == Some(&Value::Bool(true)) {
                saw_true = true;
            }
        }
        assert!(saw_true);
    }

    #[test]
    fn zero_probability_flag_is_static() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = AttrStore::new();
        let mut f = FlagFlipper::new("OS-Linux", true, 0.0);
        for _ in 0..50 {
            f.tick(&mut store, &mut rng);
        }
        assert_eq!(store.get("OS-Linux"), Some(&Value::Bool(true)));
        assert_eq!(store.version(), 1); // only the first set changed anything
    }
}

//! The per-node `(attribute, value)` tuple store.

use std::collections::HashMap;

use crate::name::AttrName;
use crate::value::Value;

/// A Moara node's local attribute store.
///
/// The Moara agent on each machine monitors the node and populates these
/// tuples (paper Section 3.1). A version counter advances on every visible
/// change so the protocol layer can cheaply detect "local attribute churn"
/// and re-evaluate predicate satisfaction.
#[derive(Clone, Debug, Default)]
pub struct AttrStore {
    map: HashMap<AttrName, Value>,
    version: u64,
}

impl AttrStore {
    /// An empty store.
    pub fn new() -> AttrStore {
        AttrStore::default()
    }

    /// Sets `attr` to `value`. Returns the previous value, if any. The
    /// version advances only if the stored value actually changed.
    pub fn set(&mut self, attr: impl Into<AttrName>, value: impl Into<Value>) -> Option<Value> {
        let attr = attr.into();
        let value = value.into();
        if self.map.get(&attr) == Some(&value) {
            return Some(value);
        }
        self.version += 1;
        self.map.insert(attr, value)
    }

    /// Removes `attr`. Returns the removed value, if present.
    pub fn remove(&mut self, attr: &str) -> Option<Value> {
        let old = self.map.remove(attr);
        if old.is_some() {
            self.version += 1;
        }
        old
    }

    /// The value of `attr`, if present.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.map.get(attr)
    }

    /// Whether `attr` is present.
    pub fn contains(&self, attr: &str) -> bool {
        self.map.contains_key(attr)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Monotonic change counter; bumps on every effective set/remove.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Iterates over all tuples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &Value)> {
        self.map.iter()
    }
}

impl<A: Into<AttrName>, V: Into<Value>> FromIterator<(A, V)> for AttrStore {
    fn from_iter<T: IntoIterator<Item = (A, V)>>(iter: T) -> AttrStore {
        let mut s = AttrStore::new();
        for (a, v) in iter {
            s.set(a, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove_roundtrip() {
        let mut s = AttrStore::new();
        assert!(s.is_empty());
        assert_eq!(s.set("CPU-Util", 55i64), None);
        assert_eq!(s.get("CPU-Util"), Some(&Value::Int(55)));
        assert_eq!(s.set("CPU-Util", 60i64), Some(Value::Int(55)));
        assert_eq!(s.remove("CPU-Util"), Some(Value::Int(60)));
        assert_eq!(s.get("CPU-Util"), None);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn version_advances_only_on_change() {
        let mut s = AttrStore::new();
        let v0 = s.version();
        s.set("A", true);
        let v1 = s.version();
        assert!(v1 > v0);
        s.set("A", true); // no-op
        assert_eq!(s.version(), v1);
        s.set("A", false);
        assert!(s.version() > v1);
        s.remove("missing");
        let v3 = s.version();
        s.remove("A");
        assert!(s.version() > v3);
    }

    #[test]
    fn from_iterator_collects() {
        let s: AttrStore = [("a", Value::Int(1)), ("b", Value::Bool(true))]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert!(s.contains("a") && s.contains("b"));
        assert_eq!(s.iter().count(), 2);
    }
}

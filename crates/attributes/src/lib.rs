//! # moara-attributes
//!
//! The per-node data model of Moara (paper Section 3.1): information at
//! each node is a set of `(attribute, value)` tuples, populated by a
//! monitoring agent. Any attribute can serve as a *query attribute* (the
//! thing being aggregated) or a *group attribute* (the thing a predicate
//! tests).
//!
//! * [`Value`] — the typed attribute values (bool / integer / float /
//!   string) with the cross-numeric ordering the paper's predicate
//!   operators need.
//! * [`AttrName`] — cheaply clonable interned attribute names.
//! * [`AttrStore`] — a node's tuple store, with a version counter so upper
//!   layers can detect churn.
//! * [`agent`] — synthetic monitoring agents producing realistic attribute
//!   dynamics (CPU random walks, service flags) for examples and
//!   experiments.
//!
//! # Example
//!
//! ```
//! use moara_attributes::{AttrStore, Value};
//!
//! let mut store = AttrStore::new();
//! store.set("CPU-Util", Value::Float(42.5));
//! store.set("ServiceX", Value::Bool(true));
//! assert_eq!(store.get("ServiceX"), Some(&Value::Bool(true)));
//! assert!(store.get("CPU-Util").unwrap().cmp_num(&Value::Int(50)).unwrap().is_lt());
//! ```

pub mod agent;
mod name;
mod store;
mod value;

pub use name::AttrName;
pub use store::AttrStore;
pub use value::Value;

//! Typed attribute values and the comparison semantics used by predicates.

use std::cmp::Ordering;
use std::fmt;

/// A typed attribute value.
///
/// Integers and floats compare numerically with each other (`CPU-Util <
/// 50` must work whether the agent reported `49` or `49.5`); booleans and
/// strings compare only within their own type.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A boolean flag, e.g. `(ServiceX, true)`.
    Bool(bool),
    /// A signed integer, e.g. `(CPU-Mhz, 3000)`.
    Int(i64),
    /// A float, e.g. `(Mem-Util, 42.5)`. NaN is rejected at construction
    /// by the query parser; stores treat NaN as incomparable.
    Float(f64),
    /// A string, e.g. `(OS, "Linux")`.
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// True if this is `Int` or `Float`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Compares two values under predicate semantics:
    ///
    /// * numbers compare numerically across `Int`/`Float`;
    /// * booleans compare with `false < true`;
    /// * strings compare lexicographically;
    /// * mixed non-numeric types (and NaN) are incomparable (`None`).
    pub fn cmp_num(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
            _ => None,
        }
    }

    /// Equality under predicate semantics (`Int(3) == Float(3.0)`).
    pub fn eq_num(&self, other: &Value) -> bool {
        self.cmp_num(other) == Some(Ordering::Equal)
    }

    /// A deterministic total order, used to break ties in aggregates such
    /// as top-k (incomparable pairs order by type rank: Bool < Int/Float <
    /// Str; NaN sorts last among numbers).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                x.total_cmp(&y)
            }
            (a, b) => rank(a)
                .cmp(&rank(b))
                .then_with(|| a.cmp_num(b).unwrap_or(Ordering::Equal)),
        }
    }

    /// Exact serialized size in bytes (delegates to the `moara-wire`
    /// codec, so there is a single size accounting in the tree).
    pub fn wire_size(&self) -> usize {
        moara_wire::Wire::encoded_len(self)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl moara_wire::Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Bool(b) => {
                out.push(0);
                b.encode(out);
            }
            Value::Int(i) => {
                out.push(1);
                i.encode(out);
            }
            Value::Float(f) => {
                out.push(2);
                f.encode(out);
            }
            Value::Str(s) => {
                out.push(3);
                s.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, moara_wire::WireError> {
        match u8::decode(buf)? {
            0 => Ok(Value::Bool(bool::decode(buf)?)),
            1 => Ok(Value::Int(i64::decode(buf)?)),
            2 => Ok(Value::Float(f64::decode(buf)?)),
            3 => Ok(Value::Str(String::decode(buf)?)),
            _ => Err(moara_wire::WireError::Invalid("Value tag")),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Value::Bool(b) => b.encoded_len(),
            Value::Int(i) => i.encoded_len(),
            Value::Float(f) => f.encoded_len(),
            Value::Str(s) => s.encoded_len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(3).cmp_num(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert!(Value::Int(3).eq_num(&Value::Float(3.0)));
        assert_eq!(
            Value::Float(2.5).cmp_num(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(4).cmp_num(&Value::Float(3.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn mixed_types_incomparable() {
        assert_eq!(Value::Bool(true).cmp_num(&Value::Int(1)), None);
        assert_eq!(Value::str("x").cmp_num(&Value::Int(1)), None);
        assert_eq!(Value::Float(f64::NAN).cmp_num(&Value::Int(1)), None);
    }

    #[test]
    fn bool_and_string_ordering() {
        assert_eq!(
            Value::Bool(false).cmp_num(&Value::Bool(true)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("a").cmp_num(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert!(Value::str("apache").eq_num(&Value::str("apache")));
    }

    #[test]
    fn total_cmp_is_total_and_antisymmetric() {
        let vals = [
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Float(0.5),
            Value::Int(2),
            Value::Float(f64::NAN),
            Value::str("a"),
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(Value::Int(3).to_string(), "3");
    }

    #[test]
    fn wire_sizes_match_the_codec() {
        // One byte of variant tag plus the payload encoding.
        assert_eq!(Value::Bool(true).wire_size(), 1 + 1);
        assert_eq!(Value::Int(1).wire_size(), 1 + 8);
        assert_eq!(Value::str("abc").wire_size(), 1 + 4 + 3);
        for v in [Value::Bool(false), Value::Float(1.5), Value::str("x")] {
            assert_eq!(v.wire_size(), moara_wire::Wire::encoded_len(&v));
        }
    }
}

//! Interned attribute names.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An attribute name such as `CPU-Util` or `ServiceX`.
///
/// Names are reference-counted so the protocol layers can clone them into
/// per-predicate state maps and messages without copying the string.
/// Comparison is case-sensitive, matching the paper's examples.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Creates (or clones into) an attribute name.
    pub fn new(name: impl AsRef<str>) -> AttrName {
        AttrName(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> AttrName {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> AttrName {
        AttrName(Arc::from(s))
    }
}

impl Borrow<str> for AttrName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for AttrName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl moara_wire::Wire for AttrName {
    /// Encoded like a plain string; interning is a process-local detail.
    fn encode(&self, out: &mut Vec<u8>) {
        let s = self.as_str();
        let len = u32::try_from(s.len()).expect("attribute name too long for wire");
        moara_wire::Wire::encode(&len, out);
        out.extend_from_slice(s.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, moara_wire::WireError> {
        <String as moara_wire::Wire>::decode(buf).map(AttrName::from)
    }
    fn encoded_len(&self) -> usize {
        4 + self.as_str().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_and_hash_lookup_by_str() {
        let n = AttrName::new("CPU-Util");
        assert_eq!(n, AttrName::from("CPU-Util"));
        assert_ne!(n, AttrName::from("cpu-util"));
        let mut m: HashMap<AttrName, u32> = HashMap::new();
        m.insert(n.clone(), 1);
        // Borrow<str> lets us look up with a &str key.
        assert_eq!(m.get("CPU-Util"), Some(&1));
    }

    #[test]
    fn clone_is_cheap_pointer_copy() {
        let a = AttrName::new("x");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(AttrName::new("ServiceX").to_string(), "ServiceX");
    }
}

//! # moara-bench
//!
//! Benchmark harness for the Moara reproduction: one binary per figure of
//! the paper's evaluation (Section 7), plus Criterion micro-benchmarks.
//!
//! | Binary | Paper figure | What it regenerates |
//! |---|---|---|
//! | `fig02_traces` | Fig. 2(a)/(b) | workload characterization (slice sizes, job dynamism) |
//! | `fig09_dynamic_maintenance` | Fig. 9 | msgs/node vs query:churn ratio, Moara vs Global vs Always-Update |
//! | `fig10_sensitivity` | Fig. 10 | sensitivity to (k_UPDATE, k_NO-UPDATE) |
//! | `fig11a_sqp_scaling` | Fig. 11(a) | query cost vs system size, with/without the separate query plane |
//! | `fig11b_sqp_costs` | Fig. 11(b) | SQP query/update cost vs group size |
//! | `fig12a_static_groups` | Fig. 12(a) | latency + msgs/query for static groups vs the SDIMS/global approach |
//! | `fig12b_dynamic_groups` | Fig. 12(b) | latency under group churn |
//! | `fig13a_latency_timeline` | Fig. 13(a) | latency over time under periodic churn bursts |
//! | `fig13b_composite` | Fig. 13(b) | composite-query latency (intersection/union/complex, ± size probes) |
//! | `fig14_planetlab_cdf` | Fig. 14 | wide-area response CDF per group size |
//! | `fig15_vs_central` | Fig. 15 | Moara vs centralized aggregator CDF |
//! | `fig16_bottleneck` | Fig. 16 | per-query latency vs bottleneck link |
//! | `repeated_query` | — | query-plane scheduler: probe cache on/off under repeated composite traffic (CI runs `--smoke`; writes `BENCH_query.json`) |
//! | `subscribe_bench` | — | continuous queries: standing subscription vs period-equivalent polling under sparse updates (CI runs `--smoke`; writes `BENCH_subscribe.json`) |
//! | `gateway_bench` | — | HTTP edge under concurrent clients: default walk-path profile, `--profile read-heavy` (result cache on/off), `--profile conn-sweep` (10k idle keep-alive connections on one reactor; CI runs all three `--smoke`; writes `BENCH_gateway.json`) |
//!
//! Scale: every binary runs a reduced-but-shape-preserving configuration
//! by default so the whole suite finishes in minutes; set
//! `MOARA_SCALE=full` for the paper's exact sizes (e.g. 10 000 nodes for
//! Figure 9, 16 384 for Figure 11(a)).

pub mod harness;
pub mod report;
pub mod workloads;

pub use report::{BenchReport, BenchValue};

/// True when the environment requests paper-scale experiment sizes.
pub fn full_scale() -> bool {
    std::env::var("MOARA_SCALE").is_ok_and(|v| v.eq_ignore_ascii_case("full"))
}

/// Picks the reduced or full-scale value of a parameter.
pub fn scaled(reduced: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        reduced
    }
}

//! HTTP edge benchmark: N concurrent clients hammer a live multi-daemon
//! cluster through the `moara-gateway` and the harness records req/s and
//! the latency distribution.
//!
//! This is the first workload that measures the system the way its
//! eventual users see it — end to end through HTTP, the daemon event
//! loop, the query planner, and the aggregation trees — rather than
//! through the in-process harness. The daemons are real [`Daemon`]s on
//! the TCP transport (one per thread, like `moarad` processes sharing a
//! host); the clients are raw keep-alive sockets speaking HTTP/1.1.
//!
//! ```text
//! cargo run --release -p moara-bench --bin gateway_bench            # full scale
//! cargo run --release -p moara-bench --bin gateway_bench -- --smoke # CI gate
//! ```
//!
//! Writes `BENCH_gateway.json` (p50/p95/p99 latency, req/s, error
//! count). `--smoke` additionally *gates*: every request must succeed
//! and the latency/throughput floor must hold, else the process exits
//! nonzero and CI fails.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use moara_attributes::Value;
use moara_bench::BenchReport;
use moara_daemon::{ctrl_roundtrip, CtrlReply, CtrlRequest, Daemon, DaemonOpts};

struct Scale {
    label: &'static str,
    daemons: usize,
    clients: usize,
    requests_per_client: usize,
    /// Smoke-gate floors (None = record only, never gate).
    gate: Option<Gate>,
}

struct Gate {
    min_req_per_s: f64,
    max_p99_ms: f64,
}

fn free_port() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

/// Boots one daemon on its own thread; returns (ctrl addr, http addr).
fn boot_daemon(join: Option<String>, service_x: bool) -> (SocketAddr, SocketAddr) {
    let listen = free_port();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut d = Daemon::start(DaemonOpts {
            join,
            attrs: vec![
                ("ServiceX".to_owned(), Value::Bool(service_x)),
                (
                    "CPU-Util".to_owned(),
                    Value::Int(if service_x { 30 } else { 80 }),
                ),
            ],
            http: Some("127.0.0.1:0".parse().expect("literal addr")),
            ..DaemonOpts::new(listen)
        })
        .expect("daemon boots");
        tx.send((d.ctrl_addr(), d.http_addr().expect("gateway enabled")))
            .expect("report addrs");
        loop {
            d.step(Duration::from_millis(2));
        }
    });
    rx.recv_timeout(Duration::from_secs(30)).expect("daemon up")
}

fn wait_members(ctrl: SocketAddr, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(CtrlReply::Status { members, .. }) = ctrl_roundtrip(
            &ctrl.to_string(),
            &CtrlRequest::Status,
            Duration::from_secs(5),
        ) {
            if members == want {
                return;
            }
        }
        assert!(Instant::now() < deadline, "cluster never converged");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// One HTTP request on a persistent connection; returns (status, body).
fn http_roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &str,
) -> Result<(u16, String), String> {
    writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("hdr: {e}"))?;
        if line == "\r\n" {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|e| format!("len: {e}"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale {
            label: "smoke",
            daemons: 3,
            clients: 4,
            requests_per_client: 50,
            gate: Some(Gate {
                // Deliberately generous: the gate exists to catch the
                // gateway becoming unusable (seconds-long stalls, mass
                // errors), not to benchmark CI hardware.
                min_req_per_s: 20.0,
                max_p99_ms: 2000.0,
            }),
        }
    } else {
        Scale {
            label: "full",
            daemons: 5,
            clients: 16,
            requests_per_client: 200,
            gate: None,
        }
    };

    // Boot the cluster: one seed, the rest join; every daemon carries a
    // gateway, and clients spray across all of them like an external
    // load balancer would.
    let (seed_ctrl, seed_http) = boot_daemon(None, true);
    let mut https = vec![seed_http];
    for i in 1..scale.daemons {
        let (_ctrl, http) = boot_daemon(Some(seed_ctrl.to_string()), i % 2 == 0);
        https.push(http);
    }
    wait_members(seed_ctrl, scale.daemons as u32);
    let in_group = scale.daemons.div_ceil(2);

    let request = "GET /v1/query?q=SELECT%20count(*)%20WHERE%20ServiceX%20%3D%20true \
                   HTTP/1.1\r\nHost: bench\r\n\r\n";
    let expect = format!("\"result\":\"{in_group}\"");

    // Warmup: one request per daemon primes connections, probe caches,
    // and tree state out of the measured window.
    for &addr in &https {
        let mut w = TcpStream::connect(addr).expect("warmup connect");
        let mut r = BufReader::new(w.try_clone().expect("clone"));
        let (status, body) = http_roundtrip(&mut r, &mut w, request).expect("warmup request");
        assert_eq!(status, 200, "warmup failed: {body}");
        assert!(body.contains(&expect), "warmup answered {body}");
    }

    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..scale.clients {
        let addr = https[c % https.len()];
        let expect = expect.clone();
        let n = scale.requests_per_client;
        workers.push(std::thread::spawn(move || {
            let mut latencies_us = Vec::with_capacity(n);
            let mut errors = 0u64;
            let mut writer = TcpStream::connect(addr).expect("client connect");
            writer
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut reader = BufReader::new(writer.try_clone().expect("clone"));
            for _ in 0..n {
                let t0 = Instant::now();
                match http_roundtrip(&mut reader, &mut writer, request) {
                    Ok((200, body)) if body.contains(&expect) => {
                        latencies_us.push(t0.elapsed().as_micros() as u64);
                    }
                    Ok(_) | Err(_) => errors += 1,
                }
            }
            (latencies_us, errors)
        }));
    }
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for w in workers {
        let (lat, err) = w.join().expect("client thread");
        latencies_us.extend(lat);
        errors += err;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies_us.sort_unstable();

    let total = (scale.clients * scale.requests_per_client) as u64;
    let req_per_s = latencies_us.len() as f64 / elapsed;
    let p50 = percentile(&latencies_us, 50.0);
    let p95 = percentile(&latencies_us, 95.0);
    let p99 = percentile(&latencies_us, 99.0);

    println!(
        "gateway_bench[{}]: daemons={} clients={} requests={} ok={} errors={}",
        scale.label,
        scale.daemons,
        scale.clients,
        total,
        latencies_us.len(),
        errors
    );
    println!(
        "  req/s={req_per_s:.1}  p50={p50:.2}ms  p95={p95:.2}ms  p99={p99:.2}ms  wall={elapsed:.2}s"
    );

    let gate_passed = match &scale.gate {
        None => true,
        Some(g) => errors == 0 && req_per_s >= g.min_req_per_s && p99 <= g.max_p99_ms,
    };

    BenchReport::new("gateway")
        .field("scale", scale.label)
        .field("daemons", scale.daemons)
        .field("clients", scale.clients)
        .field("requests", total)
        .field("errors", errors)
        .field("req_per_s", req_per_s)
        .field("p50_ms", p50)
        .field("p95_ms", p95)
        .field("p99_ms", p99)
        .field("wall_s", elapsed)
        .field("gate_passed", gate_passed)
        .write();

    if !gate_passed {
        eprintln!("gateway_bench: smoke gate FAILED");
        std::process::exit(1);
    }
}
